//! # Proteus: a power-proportional memory cache cluster
//!
//! A full reproduction of *"Proteus: Power Proportional Memory Cache
//! Cluster in Data Centers"* (Shen Li et al., ICDCS 2013) as a Rust
//! workspace. This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`ring`] | `proteus-ring` | Consistent hashing, **Algorithm 1** virtual-node placement, baselines, replication (Eq. 3) |
//! | [`bloom`] | `proteus-bloom` | Counting Bloom filter digests, **Eq. 10** optimal configuration, snapshots |
//! | [`cache`] | `proteus-cache` | The memcached-like engine with digest hooks |
//! | [`store`] | `proteus-store` | The sharded database tier substitute |
//! | [`workload`] | `proteus-workload` | Zipf + diurnal + session trace synthesis |
//! | [`core`] | `proteus-core` | **Algorithm 2** routing, smooth transitions, provisioning, power, the DES cluster |
//! | [`net`] | `proteus-net` | Real TCP cache servers and the cluster client |
//! | [`obs`] | `proteus-obs` | Lock-free latency histograms, transition event tracing, metric exposition |
//! | [`agg`] | `proteus-agg` | Cluster-wide scrape aggregation, wall-clock energy accounting, re-exposition |
//! | [`sim`] | `proteus-sim` | The discrete-event simulation substrate |
//!
//! ## Quickstart
//!
//! ```
//! use proteus::core::{ClusterConfig, ClusterSim, ProvisioningPlan, Scenario};
//! use proteus::workload::Trace;
//! use proteus::sim::SimDuration;
//!
//! // A small cluster, a synthetic diurnal trace, a load-proportional plan.
//! let config = ClusterConfig::small();
//! let trace = Trace::synthesize(&config.trace_config(100.0), 1);
//! let plan = ProvisioningPlan::load_proportional(
//!     &trace.requests_per_slot(config.slot, config.slots),
//!     config.cache_servers,
//!     2,
//! );
//! // Run the Proteus scenario and confirm the headline property:
//! // requests complete, servers scale, hot data migrates.
//! let report = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 7).run();
//! assert!(report.completed_requests() > 0);
//! ```
//!
//! See `examples/` for runnable end-to-end demonstrations and
//! `crates/bench` for the per-figure experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use proteus_agg as agg;
pub use proteus_bloom as bloom;
pub use proteus_cache as cache;
pub use proteus_core as core;
pub use proteus_ctl as ctl;
pub use proteus_net as net;
pub use proteus_obs as obs;
pub use proteus_ring as ring;
pub use proteus_sim as sim;
pub use proteus_store as store;
pub use proteus_workload as workload;
