//! Collection strategies (subset of `proptest::collection`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size bounds for a generated collection (inclusive on both ends).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        self.lo + rng.index(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>` with a target size drawn from `size`.
///
/// Keeps drawing elements until the set reaches the target size, with a
/// bounded number of attempts so low-entropy element strategies fail
/// loudly instead of looping forever.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target {
            set.insert(self.element.generate(rng));
            attempts += 1;
            assert!(
                attempts < target.saturating_mul(100) + 1_000,
                "hash_set strategy could not reach size {target} (element space too small?)"
            );
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let s = vec(1u8..=6, 2..10);
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&d| (1..=6).contains(&d)));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let s = vec(0u64..10, 5usize);
        let mut rng = TestRng::from_seed(7);
        assert_eq!(s.generate(&mut rng).len(), 5);
    }

    #[test]
    fn hash_set_reaches_target() {
        let s = hash_set(0u32..1000, 8..=8);
        let mut rng = TestRng::from_seed(7);
        assert_eq!(s.generate(&mut rng).len(), 8);
    }
}
