//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this local crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map` / `prop_filter`, `any::<T>()`
//! for primitive types, integer-range strategies, tuple strategies,
//! `prop::collection::{vec, hash_set}`, [`strategy::Just`], and simple
//! `"[class]{lo,hi}"` string-pattern strategies.
//!
//! Differences from upstream proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case number and seed;
//!   re-running reproduces it exactly (generation is deterministic).
//! - **Deterministic seeding.** Cases derive from a fixed seed mixed
//!   with the case index, so CI failures always reproduce locally.
//! - Only the string patterns actually used in this workspace are
//!   supported (a single bracketed character class with a repetition
//!   count); anything else panics loudly.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Module alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal item-by-item expansion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Skips the current case unless the condition holds.
///
/// Upstream proptest rejects and regenerates; this stand-in simply ends
/// the case successfully, which is equivalent for fixed case counts.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {left:?}\n right: {right:?}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {left:?}"
            )));
        }
    }};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
