//! Deterministic case runner: configuration, RNG, and failure type.

use std::fmt;

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps full-workspace test time
        // reasonable while still exploring a meaningful input space.
        ProptestConfig { cases: 96 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the deterministic seed for one case of one property.
#[must_use]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index so every
    // property and case explores a distinct, reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The generator driving strategies: xoshiro256++ (deterministic).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_per_name_and_case() {
        assert_eq!(case_seed("t", 0), case_seed("t", 0));
        assert_ne!(case_seed("t", 0), case_seed("t", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
