//! Value-generation strategies (subset of `proptest::strategy`).

use std::marker::PhantomData;

use crate::test_runner::TestRng;

/// Generates values of one type from a random stream.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying (bounded).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniformly picks among type-erased alternatives ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.index(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Full-range strategy for a primitive type: `any::<T>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws a uniform value over the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform `u128` in `[0, bound)`.
fn below_u128(rng: &mut TestRng, bound: u128) -> u128 {
    assert!(bound > 0, "below_u128(0) is meaningless");
    if let Ok(b) = u64::try_from(bound) {
        return u128::from(rng.below(b));
    }
    let zone = u128::MAX - (u128::MAX % bound);
    loop {
        let v = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_strategy_128 {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u128;
                self.start.wrapping_add(below_u128(rng, span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                match self.end().wrapping_sub(*self.start()).checked_add(1) {
                    Some(span) => self.start().wrapping_add(below_u128(rng, span as u128) as $t),
                    // Full-width range: every bit pattern is valid.
                    None => (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t,
                }
            }
        }
    )*};
}

impl_range_strategy_128!(u128, i128);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// String-pattern strategies: a single bracketed character class with a
/// repetition count, e.g. `"[ -~]{0,120}"` or `"[a-zA-Z0-9._-]{1,16}"`.
///
/// Upstream proptest accepts arbitrary regexes here; this stand-in
/// supports exactly the shape the workspace uses and panics on anything
/// else, so unsupported patterns fail loudly rather than silently.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (stub proptest supports only \"[class]{{lo,hi}}\")"));
        let len = lo + rng.index(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.index(alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.parse().ok()?;
    let hi: usize = counts.1.parse().ok()?;
    if lo > hi {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` that is first or last is a literal).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (start, end) = (class[i], class[i + 2]);
            if start > end {
                return None;
            }
            for c in start..=end {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (33u8..=126).generate(&mut r);
            assert!((33..=126).contains(&w));
        }
    }

    #[test]
    fn map_filter_compose() {
        let s = (0u64..100)
            .prop_map(|v| v * 2)
            .prop_filter("even>50", |v| *v > 50);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v > 50 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_patterns_generate_in_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut r);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "[a-zA-Z0-9._-]{1,16}".generate(&mut r);
            assert!((1..=16).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn unsupported_pattern_panics() {
        let _ = "(a|b)+".generate(&mut rng());
    }
}
