//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates-io access, so this local crate
//! supplies the subset of `parking_lot` the workspace uses: [`Mutex`]
//! and [`RwLock`] with the poison-free `lock()` / `read()` / `write()`
//! API, implemented over `std::sync`. A panicked holder does not poison
//! the lock (matching `parking_lot` semantics): poisoned guards are
//! recovered with `into_inner`.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_concurrent() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock is usable after a holder panicked");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
