//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-io access, so this local crate
//! supplies the subset of criterion the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`
//! / `finish`, [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from upstream, by design:
//!
//! - Measurement is a simple wall-clock loop (median of N samples), with
//!   no statistical analysis, plots, or baseline storage.
//! - `cargo bench -- --test` runs each benchmark body exactly once and
//!   reports `ok`, matching criterion's smoke-test mode (this is what CI
//!   relies on).
//! - Unrecognized CLI flags and name filters are accepted and ignored.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Holds the run mode parsed from the command line.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--test` enables run-once mode;
    /// everything else, including cargo's `--bench`, is ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration throughput (recorded but unused by
    /// this stand-in's reporting).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            result: None,
        };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream finalizes reports here; no-op).
    pub fn finish(&mut self) {}
}

/// Times a closure over many iterations.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Benchmarks `routine`, timing batches and keeping the median
    /// per-iteration duration. In `--test` mode runs it exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = None;
            return;
        }
        // Warm up and size the batch so each sample takes ~1ms.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let batch = (1_000_000 / per_iter).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() / u128::from(batch));
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        self.result = Some(Duration::from_nanos(median.min(u128::from(u64::MAX)) as u64));
    }

    /// Benchmarks a routine that does its own timing: `routine` receives
    /// an iteration count and returns the elapsed time for that many
    /// iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine(1));
            self.result = None;
            return;
        }
        let iters = 1_000u64;
        let total = routine(iters);
        self.result = Some(total / u32::try_from(iters).unwrap_or(u32::MAX));
    }

    fn report(&self, label: &str) {
        match self.result {
            Some(median) => println!("{label:<50} median {median:>12.2?}/iter"),
            None => println!("{label:<50} ok (test mode)"),
        }
    }
}

/// Identifies a benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut ran = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn timed_mode_produces_result() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 5,
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
