//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no crates-io access,
//! so external dependencies are replaced by minimal, API-compatible
//! local implementations (see `stubs/` in the workspace root). This
//! crate provides exactly the surface `proteus-sim`'s [`SimRng`]
//! wrapper consumes: [`SeedableRng::seed_from_u64`], [`Rng::random`]
//! for `u64`/`f64`, and [`Rng::random_range`] over integer ranges.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — not the ChaCha12 of the real `StdRng`, so absolute
//! random streams differ from upstream `rand`, but every consumer in
//! this workspace only relies on determinism-per-seed and statistical
//! uniformity, both of which hold.
//!
//! [`SimRng`]: https://docs.rs/proteus-sim

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling surface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`u64` over its full range, `f64` in `[0, 1)`).
    fn random<T: Uniform>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform sample within `range` (Lemire-style rejection for lack of bias).
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "cannot sample an empty range");
        let span = hi - lo;
        // Rejection sampling: draw until the value falls in the largest
        // multiple of `span`, guaranteeing an unbiased result.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::from_u64(lo + v % span);
            }
        }
    }
}

/// Types `Rng::random` can produce.
pub trait Uniform {
    /// Maps 64 uniform bits to a uniform `Self`.
    fn sample(bits: u64) -> Self;
}

impl Uniform for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Uniform for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `Rng::random_range` can produce.
pub trait UniformInt: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (caller guarantees the value fits).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_respected_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
