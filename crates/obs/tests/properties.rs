//! Correctness properties of the striped log-linear histogram.
//!
//! Two claims carry the telemetry layer's whole value:
//!
//! 1. **Striping is invisible.** Samples recorded concurrently across
//!    many stripes (and snapshots merged across many histograms)
//!    produce *exactly* the snapshot a single-threaded, single-stripe
//!    oracle produces — bucket for bucket, plus count, sum, min, max.
//! 2. **Quantiles are honestly bounded.** Every reported quantile is
//!    within one bucket's relative error ([`relative_error_bound`],
//!    1/64) of the true order statistic of the recorded samples.
//!
//! Both are driven by proptest over adversarial sample sets: tiny
//! values in the exact region, huge values deep in the octave region,
//! duplicates, and heavy-tailed mixtures.

use proptest::prelude::*;
use proteus_obs::{relative_error_bound, HistogramSnapshot, LatencyHistogram};

/// Sample sets that exercise every bucket regime: exact small values,
/// mid-range, and deep-octave tail values. Individual samples are
/// capped at ~17 minutes so a 400-sample set cannot overflow the
/// histogram's `u64` nanosecond sum accumulator (which would need
/// ~584 years of accumulated latency — out of scope by design).
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,                   // exact region
            64u64..100_000,             // a few octaves up
            100_000u64..10_000_000_000, // µs to seconds
            Just(1_000_000_000_000u64), // 1000 s spike, deep octave
        ],
        1..400,
    )
}

/// The oracle: one stripe, one thread, samples recorded in order.
fn oracle_snapshot(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::with_stripes(1);
    for &v in values {
        h.record_nanos(v);
    }
    h.snapshot()
}

/// True order statistic under the same rank rule the histogram uses:
/// rank = ⌊q·n⌋ + 1 (1-based), clamped to n.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    if q >= 1.0 {
        return *sorted.last().expect("non-empty");
    }
    let rank = ((q * sorted.len() as f64).floor() as usize + 1).min(sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Concurrently-striped recording is indistinguishable from the
    /// single-threaded oracle: the merged snapshot is *identical*,
    /// not merely statistically close.
    #[test]
    fn striped_concurrent_recording_equals_oracle(values in samples()) {
        let striped = std::sync::Arc::new(LatencyHistogram::with_stripes(4));
        let threads = 4;
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|s| {
            for part in values.chunks(chunk.max(1)) {
                let striped = std::sync::Arc::clone(&striped);
                s.spawn(move || {
                    for &v in part {
                        striped.record_nanos(v);
                    }
                });
            }
        });
        prop_assert_eq!(striped.snapshot(), oracle_snapshot(&values));
    }

    /// Merging per-shard snapshots equals recording everything into
    /// one histogram: `merge` is associative aggregation, losslessly.
    #[test]
    fn merged_snapshots_equal_oracle(values in samples(), parts in 1usize..6) {
        let mut merged = HistogramSnapshot::empty();
        let chunk = values.len().div_ceil(parts);
        for part in values.chunks(chunk.max(1)) {
            merged.merge(&oracle_snapshot(part));
        }
        prop_assert_eq!(merged, oracle_snapshot(&values));
    }

    /// Every reported quantile lands within one bucket's relative
    /// error of the true order statistic.
    #[test]
    fn quantiles_are_within_one_bucket_of_truth(values in samples()) {
        let snap = oracle_snapshot(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = snap.quantile(q).expect("non-empty").as_nanos() as f64;
            let truth = true_quantile(&sorted, q) as f64;
            let err = (est - truth).abs();
            prop_assert!(
                err <= truth * relative_error_bound() + 1.0,
                "q={} est={} truth={} err={} bound={}",
                q, est, truth, err, truth * relative_error_bound()
            );
        }
    }

    /// Count, sum, min, and max are exact (not approximated by the
    /// bucketing) for any sample set.
    #[test]
    fn scalar_stats_are_exact(values in samples()) {
        let snap = oracle_snapshot(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(
            snap.sum_nanos(),
            values.iter().map(|&v| u128::from(v)).sum::<u128>()
        );
        prop_assert_eq!(
            snap.min().map(|d| d.as_nanos() as u64),
            values.iter().copied().min()
        );
        prop_assert_eq!(
            snap.max().map(|d| d.as_nanos() as u64),
            values.iter().copied().max()
        );
    }
}
