//! Live telemetry for the Proteus cluster.
//!
//! The paper's whole evaluation (Section VI) rests on per-class
//! latency and hit-ratio measurements taken *during* provisioning
//! transitions. This crate is the measurement substrate that makes
//! those observations cheap enough to leave on in production:
//!
//! - [`LatencyHistogram`] — a striped log-linear histogram whose
//!   record path is lock-free and allocation-free (a handful of
//!   relaxed atomics), with mergeable [`HistogramSnapshot`]s and
//!   p50/p90/p99/p999 extraction at ~1.6% relative error.
//! - [`Counter`] / [`Gauge`] and the typed class enums [`OpClass`]
//!   (wire commands) and [`FetchClassKind`] (how a cluster fetch was
//!   satisfied: NewHit / Migrated / Database / Degraded /
//!   FalsePositive) with their fixed histogram families
//!   [`OpLatencies`] and [`FetchLatencies`].
//! - [`EventTracer`] — a bounded ring buffer of transition lifecycle
//!   events ([`TraceKind`]: begin, digest broadcast, per-key
//!   migration, drain, power-off, breaker transitions) stamped with a
//!   global sequence number and monotonic timestamps.
//! - [`Metric`] exposition: Prometheus text ([`to_prometheus`]), JSON
//!   ([`to_json`]), memcached `STAT` pairs ([`to_stat_pairs`]), and a
//!   minimal scrape endpoint ([`MetricsServer`]).
//! - Trace export: seq-stamped JSONL encoding of tracer events
//!   ([`trace_to_jsonl`]) served at `/trace.jsonl?since_seq=` by a
//!   traced [`MetricsServer`], an append-only [`TraceFileSink`], and
//!   drop-count metrics ([`trace_metrics`]) so ring overflow is
//!   detectable rather than silent.
//!
//! The producers (server, cluster client, benches) own their atomics;
//! exposition is pull-based via closures, so the hot paths never see a
//! format string.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod export;
mod histogram;
mod tracer;

pub use counters::{Counter, FetchClassKind, FetchLatencies, Gauge, OpClass, OpLatencies};
pub use export::{
    to_json, to_prometheus, to_stat_pairs, trace_event_json, trace_metrics, trace_to_jsonl, Metric,
    MetricSource, MetricValue, MetricsServer, ScrapeLimits, ScrapeStats, TraceFileSink,
};
pub use histogram::{relative_error_bound, HistogramSnapshot, LatencyHistogram, Percentiles};
pub use tracer::{EventTracer, TraceEvent, TraceKind};
