//! Lock-free striped log-linear latency histogram.
//!
//! The record path is wait-free per stripe: a thread-sticky stripe is
//! picked once per thread, then every [`LatencyHistogram::record`] is a
//! handful of relaxed atomic RMW operations — no locks, no allocation,
//! no fences beyond the atomics themselves. Readers pay instead:
//! [`LatencyHistogram::snapshot`] sums all stripes into an owned
//! [`HistogramSnapshot`] which supports quantile queries and merging.
//!
//! The bucket scheme is the same log-linear layout as the offline
//! simulator's `proteus_sim::Histogram`: values below 64 ns are exact,
//! larger values land in logarithmic octaves split into 64 sub-buckets,
//! bounding relative quantile error to about 1/64 (~1.6%).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of sub-buckets per octave; bounds relative quantile error to
/// about `1/SUB` (~1.6%).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count for the full `u64` nanosecond range.
const MAX_BUCKETS: usize = ((64 - SUB_BITS as usize + 1) << SUB_BITS as usize) + SUB as usize;

/// Default stripe count (power of two). Eight stripes keep the hottest
/// bucket words off each other's cache lines for typical server thread
/// counts without bloating snapshot cost.
const DEFAULT_STRIPES: usize = 8;

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let k = msb - (SUB_BITS as u64 - 1); // octave shift >= 1
        ((k << SUB_BITS) + (v >> k)) as usize
    }
}

fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    let k = idx >> SUB_BITS;
    let low = idx & (SUB - 1);
    if k == 0 {
        low
    } else {
        // Midpoint of the bucket [low << k, (low + 1) << k).
        (low << k) + (1 << (k - 1))
    }
}

/// Smallest value that lands in bucket `idx` (the bucket's lower edge).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    let k = idx >> SUB_BITS;
    let low = idx & (SUB - 1);
    if k == 0 {
        low
    } else {
        low << k
    }
}

/// One stripe of atomic buckets. Stripes are written by disjoint sets
/// of threads (thread-sticky assignment), so cross-thread cache-line
/// bouncing only happens when more threads than stripes record at once.
#[derive(Debug)]
struct Stripe {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: (0..MAX_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Process-wide round-robin assignment of threads to stripes.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe ticket, assigned on first record.
    /// `usize::MAX` means "not yet assigned".
    static STRIPE_TICKET: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Returns this thread's sticky stripe ticket, assigning one
/// round-robin on first use. Allocation-free (const-initialised TLS).
fn stripe_ticket() -> usize {
    STRIPE_TICKET.with(|c| {
        let t = c.get();
        if t != usize::MAX {
            t
        } else {
            let t = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
            c.set(t);
            t
        }
    })
}

/// A concurrent latency histogram with a lock-free, allocation-free
/// record path and bounded relative error (~1.6%).
///
/// Writers record into a thread-sticky stripe; readers call
/// [`snapshot`](LatencyHistogram::snapshot) to merge all stripes into
/// an owned [`HistogramSnapshot`] for quantile queries.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use proteus_obs::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(Duration::from_millis(ms));
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 100);
/// let p50 = snap.quantile(0.5).unwrap();
/// assert!((p50.as_secs_f64() - 0.050).abs() / 0.050 < 0.05);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    stripes: Box<[Stripe]>,
    /// `stripes.len() - 1`; stripe count is a power of two.
    mask: usize,
}

impl LatencyHistogram {
    /// Creates a histogram with the default stripe count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// Creates a histogram with at least `stripes` stripes (rounded up
    /// to a power of two, minimum 1).
    #[must_use]
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        LatencyHistogram {
            stripes: (0..n).map(|_| Stripe::new()).collect(),
            mask: n - 1,
        }
    }

    /// Number of stripes backing this histogram.
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Records one duration sample. Lock-free and allocation-free:
    /// five relaxed atomic operations on this thread's stripe.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample expressed in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, v: u64) {
        let stripe = &self.stripes[stripe_ticket() & self.mask];
        stripe.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.sum_nanos.fetch_add(v, Ordering::Relaxed);
        stripe.min.fetch_min(v, Ordering::Relaxed);
        stripe.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges every stripe into an owned snapshot.
    ///
    /// Concurrent recorders keep running while the snapshot is taken,
    /// so the result is a consistent-enough point-in-time view: each
    /// stripe is read bucket-by-bucket with relaxed loads, and a sample
    /// racing the scan may or may not be included. Counters in the
    /// snapshot never exceed what has been recorded when the snapshot
    /// returns, and successive snapshots are monotonically
    /// non-decreasing per bucket.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; MAX_BUCKETS];
        let mut count = 0u64;
        let mut sum_nanos = 0u128;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for stripe in self.stripes.iter() {
            // Bucket totals are authoritative: `count`/`sum` are
            // derived from the same relaxed adds and may lag the
            // buckets mid-record, so recompute count from buckets.
            let mut stripe_count = 0u64;
            for (acc, bucket) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                let c = bucket.load(Ordering::Relaxed);
                *acc += c;
                stripe_count += c;
            }
            count += stripe_count;
            sum_nanos += u128::from(stripe.sum_nanos.load(Ordering::Relaxed));
            min = min.min(stripe.min.load(Ordering::Relaxed));
            max = max.max(stripe.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_nanos,
            min,
            max,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Latency percentiles extracted from a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
}

/// An owned, mergeable point-in-time view of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; MAX_BUCKETS],
            count: 0,
            sum_nanos: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest recorded sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.min))
    }

    /// The largest recorded sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.max))
    }

    /// The exact mean of all recorded samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0)
            .then(|| Duration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64))
    }

    /// Sum of all recorded samples in nanoseconds.
    #[must_use]
    pub fn sum_nanos(&self) -> u128 {
        self.sum_nanos
    }

    /// The `q`-quantile (e.g. `0.999` for the 99.9th percentile), with
    /// ≤ ~1.6% relative error, or `None` if the snapshot is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(Duration::from_nanos(self.max));
        }
        let rank = (q * self.count as f64).floor() as u64 + 1;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let v = bucket_value(idx).clamp(self.min, self.max);
                return Some(Duration::from_nanos(v));
            }
        }
        Some(Duration::from_nanos(self.max))
    }

    /// The standard report quartet (p50/p90/p99/p999), or `None` if
    /// the snapshot is empty.
    #[must_use]
    pub fn percentiles(&self) -> Option<Percentiles> {
        (self.count > 0).then(|| Percentiles {
            p50: self.quantile(0.50).unwrap_or_default(),
            p90: self.quantile(0.90).unwrap_or_default(),
            p99: self.quantile(0.99).unwrap_or_default(),
            p999: self.quantile(0.999).unwrap_or_default(),
        })
    }

    /// Merges another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The samples recorded since `earlier`: per-bucket saturating
    /// subtraction, for computing *windowed* quantiles from two reads
    /// of a cumulative histogram (the power controller's per-tick p99
    /// signal — a cumulative p99 stops reflecting the present once
    /// enough history accumulates).
    ///
    /// The window's exact min/max are unknowable from cumulative
    /// bucket counts, so they are re-derived from the window's own
    /// occupied buckets (the quantile clamp then works bucket-
    /// accurately, within the histogram's usual 1/64 relative error).
    /// `sum_nanos` subtracts saturating likewise. If `earlier` is not
    /// actually an earlier read of the same histogram the result is
    /// still well-formed, just meaningless.
    #[must_use]
    pub fn saturating_delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut delta = HistogramSnapshot::empty();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for (idx, (&a, &b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            let d = a.saturating_sub(b);
            delta.buckets[idx] = d;
            delta.count += d;
            if d > 0 {
                lo = lo.min(bucket_floor(idx));
                hi = hi.max(bucket_value(idx));
            }
        }
        if delta.count > 0 {
            delta.sum_nanos = self.sum_nanos.saturating_sub(earlier.sum_nanos);
            // The true window extremes are bounded by both the bucket
            // geometry and the cumulative extremes.
            delta.min = lo.max(self.min.min(earlier.min));
            delta.max = hi.min(self.max);
            if delta.min > delta.max {
                delta.min = delta.max;
            }
        }
        delta
    }

    /// Per-bucket sample counts (log-linear layout; mostly useful for
    /// exact comparison in tests).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse
    /// wire encoding used by the JSON exposition. A snapshot rebuilt
    /// from these pairs (plus `sum_nanos`, `min`, `max`) via
    /// [`from_sparse`](Self::from_sparse) compares equal to the
    /// original, which is what lets a remote aggregator merge
    /// per-server scrapes into true cluster-wide quantiles.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a snapshot from its sparse wire parts (see
    /// [`nonzero_buckets`](Self::nonzero_buckets)). The sample count is
    /// recomputed from the buckets, preserving the snapshot invariant
    /// that `count()` equals the bucket total. Returns `None` if any
    /// bucket index is outside the log-linear layout, or if the pairs
    /// are non-empty but `min > max` (a corrupt or hand-rolled
    /// exposition).
    #[must_use]
    pub fn from_sparse(
        pairs: &[(usize, u64)],
        sum_nanos: u128,
        min: u64,
        max: u64,
    ) -> Option<Self> {
        let mut snap = HistogramSnapshot::empty();
        for &(idx, count) in pairs {
            if idx >= MAX_BUCKETS {
                return None;
            }
            snap.buckets[idx] += count;
            snap.count += count;
        }
        if snap.count == 0 {
            return Some(snap);
        }
        if min > max {
            return None;
        }
        snap.sum_nanos = sum_nanos;
        snap.min = min;
        snap.max = max;
        Some(snap)
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// Worst-case relative quantile error of the bucket scheme (`1/64`).
#[must_use]
pub fn relative_error_bound() -> f64 {
    1.0 / SUB as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v * 2 - 1] {
                let rebuilt = bucket_value(bucket_index(probe));
                let err = (rebuilt as f64 - probe as f64).abs() / probe as f64;
                assert!(
                    err <= 1.0 / SUB as f64 + 1e-12,
                    "v={probe} rebuilt={rebuilt}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_floor_bounds_every_bucket() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v * 2 - 1] {
                let idx = bucket_index(probe);
                assert!(bucket_floor(idx) <= probe, "floor above member {probe}");
                assert!(bucket_floor(idx) <= bucket_value(idx));
            }
            v *= 2;
        }
    }

    #[test]
    fn saturating_delta_isolates_the_window() {
        let h = LatencyHistogram::new();
        for ns in [1_000u64, 2_000, 3_000] {
            h.record_nanos(ns);
        }
        let early = h.snapshot();
        for ns in [50_000u64, 60_000, 70_000, 80_000] {
            h.record_nanos(ns);
        }
        let late = h.snapshot();
        let window = late.saturating_delta(&early);
        assert_eq!(window.count(), 4, "only the new samples");
        // The window's quantiles reflect the recent samples, not the
        // cumulative mix: its median sits near 60–70 µs, far above the
        // cumulative median.
        let wp50 = window.quantile(0.5).unwrap().as_nanos();
        assert!(
            (45_000..=85_000).contains(&wp50),
            "window p50 {wp50} should be in the new cohort"
        );
        assert!(window.min().unwrap().as_nanos() >= 45_000);
        assert!(window.max().unwrap() <= late.max().unwrap());
        assert_eq!(
            window.sum_nanos(),
            late.sum_nanos() - early.sum_nanos(),
            "window sum is the cumulative difference"
        );
    }

    #[test]
    fn saturating_delta_of_identical_reads_is_empty() {
        let h = LatencyHistogram::new();
        h.record_nanos(123);
        let a = h.snapshot();
        let delta = a.saturating_delta(&a);
        assert!(delta.is_empty());
        assert_eq!(delta.quantile(0.99), None);
        // And an empty-vs-empty delta stays well-formed.
        let e = HistogramSnapshot::empty();
        assert!(e.saturating_delta(&e).is_empty());
    }

    #[test]
    fn empty_snapshot_has_no_stats() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap.percentiles(), None);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        let snap = h.snapshot();
        for (q, expect_ms) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (0.999, 999.0)] {
            let got = snap.quantile(q).unwrap().as_secs_f64() * 1e3;
            let err = (got - expect_ms).abs() / expect_ms;
            assert!(err < 0.03, "q={q} got={got} want~{expect_ms}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(LatencyHistogram::with_stripes(4));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_nanos(1 + (i ^ t) % 1_000_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 80_000);
        assert_eq!(snap.buckets().iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn snapshots_are_monotone_under_load() {
        let h = Arc::new(LatencyHistogram::new());
        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    h.record_nanos(i % 10_000);
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..50 {
            let c = h.snapshot().count();
            assert!(c >= last, "snapshot count went backwards: {c} < {last}");
            last = c;
        }
        writer.join().unwrap();
        assert_eq!(h.snapshot().count(), 200_000);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(100));
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min().unwrap(), Duration::from_millis(1));
        assert_eq!(snap.max().unwrap(), Duration::from_millis(100));
    }

    #[test]
    fn extreme_quantiles_hit_min_max() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(3));
        h.record(Duration::from_millis(7));
        let snap = h.snapshot();
        assert_eq!(snap.quantile(1.0).unwrap(), Duration::from_millis(7));
        assert_eq!(snap.max().unwrap(), Duration::from_millis(7));
        assert_eq!(snap.min().unwrap(), Duration::from_millis(3));
    }

    #[test]
    fn mean_is_exact() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(10));
        h.record(Duration::from_millis(30));
        assert_eq!(h.snapshot().mean().unwrap(), Duration::from_millis(20));
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(LatencyHistogram::with_stripes(0).stripes(), 1);
        assert_eq!(LatencyHistogram::with_stripes(3).stripes(), 4);
        assert_eq!(LatencyHistogram::with_stripes(8).stripes(), 8);
    }

    #[test]
    fn heavy_tail_p999_detects_spike() {
        let h = LatencyHistogram::new();
        for _ in 0..9980 {
            h.record(Duration::from_millis(2));
        }
        for _ in 0..20 {
            h.record(Duration::from_secs(2));
        }
        let snap = h.snapshot();
        assert!(snap.quantile(0.5).unwrap() < Duration::from_millis(3));
        assert!(snap.quantile(0.999).unwrap() > Duration::from_millis(1900));
    }
}
