//! Metric exposition: a flat registry snapshot plus renderers for
//! Prometheus text format, JSON, and memcached-style `STAT` pairs,
//! and a minimal HTTP server that serves them.
//!
//! The registry is pull-based: producers keep their own atomics and
//! histograms, and a collector closure materialises a `Vec<Metric>` on
//! demand. That keeps the hot paths ignorant of exposition formats.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::histogram::HistogramSnapshot;
use crate::tracer::{EventTracer, TraceEvent, TraceKind};

/// The value carried by one [`Metric`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// An instantaneous level.
    Gauge(i64),
    /// An instantaneous ratio or other fractional level (e.g. a
    /// fragmentation fraction). Rendered with six decimal places.
    FloatGauge(f64),
    /// A full latency distribution.
    Histogram(HistogramSnapshot),
}

/// One named, optionally labelled, metric sample.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name (`snake_case`, no spaces).
    pub name: String,
    /// Label pairs, e.g. `[("op", "get")]`.
    pub labels: Vec<(String, String)>,
    /// The sample.
    pub value: MetricValue,
}

impl Metric {
    /// A counter sample without labels.
    #[must_use]
    pub fn counter(name: impl Into<String>, v: u64) -> Self {
        Metric {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::Counter(v),
        }
    }

    /// A gauge sample without labels.
    #[must_use]
    pub fn gauge(name: impl Into<String>, v: i64) -> Self {
        Metric {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::Gauge(v),
        }
    }

    /// A fractional gauge sample without labels.
    #[must_use]
    pub fn float_gauge(name: impl Into<String>, v: f64) -> Self {
        Metric {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::FloatGauge(v),
        }
    }

    /// A histogram sample without labels.
    #[must_use]
    pub fn histogram(name: impl Into<String>, snap: HistogramSnapshot) -> Self {
        Metric {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::Histogram(snap),
        }
    }

    /// Adds a label pair (builder style).
    #[must_use]
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}_{v}"))
            .collect();
        format!("_{}", inner.join("_"))
    }

    fn prometheus_labels(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{v}\""));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The quantiles every histogram metric is expanded into:
/// `(quantile, prometheus label value, stat-pair key stem)`.
const QUANTILES: [(f64, &str, &str); 4] = [
    (0.50, "0.5", "p50"),
    (0.90, "0.9", "p90"),
    (0.99, "0.99", "p99"),
    (0.999, "0.999", "p999"),
];

/// Renders metrics in Prometheus text exposition format. Histograms
/// are rendered summary-style: `<name>{quantile="..."}` gauges in
/// seconds plus `<name>_count` and `<name>_sum`.
#[must_use]
pub fn to_prometheus(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n", m.name));
                out.push_str(&format!("{}{} {v}\n", m.name, m.prometheus_labels(None)));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n", m.name));
                out.push_str(&format!("{}{} {v}\n", m.name, m.prometheus_labels(None)));
            }
            MetricValue::FloatGauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n", m.name));
                out.push_str(&format!("{}{} {v:.6}\n", m.name, m.prometheus_labels(None)));
            }
            MetricValue::Histogram(snap) => {
                out.push_str(&format!("# TYPE {} summary\n", m.name));
                for (q, qname, _) in QUANTILES {
                    let v = snap.quantile(q).unwrap_or_default().as_secs_f64();
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        m.prometheus_labels(Some(("quantile", qname)))
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    m.name,
                    m.prometheus_labels(None),
                    snap.sum_nanos() as f64 / 1e9
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    m.name,
                    m.prometheus_labels(None),
                    snap.count()
                ));
            }
        }
    }
    out
}

/// Renders metrics as a JSON array. Histograms become objects with
/// `count`, `sum_ns`, `min_ns`/`max_ns`/`mean_ns` and a `quantiles_ns`
/// object.
#[must_use]
pub fn to_json(metrics: &[Metric]) -> String {
    let mut items = Vec::with_capacity(metrics.len());
    for m in metrics {
        let labels: Vec<String> = m
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
            .collect();
        let labels = format!("{{{}}}", labels.join(","));
        let body = match &m.value {
            MetricValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            MetricValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            MetricValue::FloatGauge(v) => format!("\"type\":\"gauge\",\"value\":{v:.6}"),
            MetricValue::Histogram(snap) => {
                let quantiles: Vec<String> = QUANTILES
                    .iter()
                    .map(|(q, qname, _)| {
                        format!(
                            "\"{qname}\":{}",
                            snap.quantile(*q).unwrap_or_default().as_nanos()
                        )
                    })
                    .collect();
                // The sparse buckets make the exposition lossless: a
                // remote aggregator rebuilds the exact snapshot with
                // `HistogramSnapshot::from_sparse` and merges across
                // servers for true cluster-wide quantiles, instead of
                // averaging pre-computed per-server percentiles.
                let buckets: Vec<String> = snap
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(i, c)| format!("[{i},{c}]"))
                    .collect();
                format!(
                    "\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"quantiles_ns\":{{{}}},\"buckets\":[{}]",
                    snap.count(),
                    snap.sum_nanos(),
                    snap.min().unwrap_or_default().as_nanos(),
                    snap.max().unwrap_or_default().as_nanos(),
                    snap.mean().unwrap_or_default().as_nanos(),
                    quantiles.join(","),
                    buckets.join(",")
                )
            }
        };
        items.push(format!(
            "{{\"name\":\"{}\",\"labels\":{labels},{body}}}",
            escape_json(&m.name)
        ));
    }
    format!("[{}]", items.join(","))
}

/// Flattens metrics into memcached-style `(key, value)` STAT pairs.
/// Labels are folded into the key (`latency_op_get_p99_us`), histogram
/// quantiles are reported in integer microseconds, and empty
/// histograms are skipped.
#[must_use]
pub fn to_stat_pairs(metrics: &[Metric]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for m in metrics {
        let key = format!("{}{}", m.name, m.label_suffix());
        match &m.value {
            MetricValue::Counter(v) => out.push((key, v.to_string())),
            MetricValue::Gauge(v) => out.push((key, v.to_string())),
            MetricValue::FloatGauge(v) => out.push((key, format!("{v:.6}"))),
            MetricValue::Histogram(snap) => {
                out.push((format!("{key}_count"), snap.count().to_string()));
                if snap.is_empty() {
                    continue;
                }
                for (q, _, qkey) in QUANTILES {
                    let micros = snap.quantile(q).unwrap_or_default().as_micros();
                    out.push((format!("{key}_{qkey}_us"), micros.to_string()));
                }
                out.push((
                    format!("{key}_mean_us"),
                    snap.mean().unwrap_or_default().as_micros().to_string(),
                ));
                out.push((
                    format!("{key}_max_us"),
                    snap.max().unwrap_or_default().as_micros().to_string(),
                ));
            }
        }
    }
    out
}

/// Renders one trace event as a single JSON line (no trailing
/// newline): the machine-readable trace schema.
///
/// The schema is stable: every line carries `seq` (global record
/// order, gap-free except for counted ring drops), `at_ns` (monotonic
/// nanoseconds since tracer creation), and `kind` (the snake_case
/// [`TraceKind::name`]), plus the kind-specific fields — `from`/`to`
/// for transitions and migrations, `server` for per-server events,
/// `ok` for digest broadcasts.
#[must_use]
pub fn trace_event_json(event: &TraceEvent) -> String {
    let fields = match event.kind {
        TraceKind::TransitionBegin { from, to } | TraceKind::TransitionDrain { from, to } => {
            format!(",\"from\":{from},\"to\":{to}")
        }
        TraceKind::DigestBroadcast { server, ok } => {
            format!(",\"server\":{server},\"ok\":{ok}")
        }
        TraceKind::KeyMigrated { from, to } => format!(",\"from\":{from},\"to\":{to}"),
        TraceKind::ControllerDecision {
            from,
            to,
            p99_us,
            ops,
        } => format!(",\"from\":{from},\"to\":{to},\"p99_us\":{p99_us},\"ops\":{ops}"),
        TraceKind::MigrationSkipped { server }
        | TraceKind::Degraded { server }
        | TraceKind::PowerOff { server }
        | TraceKind::BreakerOpen { server }
        | TraceKind::BreakerProbe { server }
        | TraceKind::BreakerClose { server } => format!(",\"server\":{server}"),
        TraceKind::DigestSnapshot => String::new(),
    };
    format!(
        "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\"{fields}}}",
        event.seq,
        event.at.as_nanos(),
        event.kind.name()
    )
}

/// Renders events as JSONL: one [`trace_event_json`] line per event,
/// each newline-terminated (so the output is valid even when
/// concatenated across incremental cursor reads).
#[must_use]
pub fn trace_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&trace_event_json(e));
        out.push('\n');
    }
    out
}

/// The tracer's own health as registry metrics:
/// `proteus_trace_recorded_total`, `proteus_trace_dropped_total`
/// (events the bounded ring overwrote before they were exported —
/// non-zero means the trace has holes and the ring needs to be larger
/// or drained more often), and the `proteus_trace_retained` gauge.
#[must_use]
pub fn trace_metrics(tracer: &EventTracer) -> Vec<Metric> {
    vec![
        Metric::counter("proteus_trace_recorded_total", tracer.recorded()),
        Metric::counter("proteus_trace_dropped_total", tracer.dropped()),
        Metric::gauge("proteus_trace_retained", tracer.len() as i64),
    ]
}

/// Appends newly recorded trace events to a file as JSONL, remembering
/// its cursor between drains so each event is written exactly once.
///
/// The sink is pull-based like the rest of the exposition layer: call
/// [`drain`](Self::drain) periodically (or after interesting phases);
/// recording stays a few atomics and never touches the filesystem.
/// Ring overflow between drains is detected, not hidden: events that
/// were overwritten before the sink caught up are counted in
/// [`missed`](Self::missed).
#[derive(Debug)]
pub struct TraceFileSink {
    file: std::io::BufWriter<std::fs::File>,
    /// Last sequence number written, or `None` before the first event.
    cursor: Option<u64>,
    written: u64,
    missed: u64,
}

impl TraceFileSink {
    /// Creates (truncating) `path` as the sink target.
    ///
    /// # Errors
    ///
    /// Returns any file-creation error.
    pub fn create<P: AsRef<std::path::Path>>(path: P) -> io::Result<TraceFileSink> {
        Ok(TraceFileSink {
            file: std::io::BufWriter::new(std::fs::File::create(path)?),
            cursor: None,
            written: 0,
            missed: 0,
        })
    }

    /// Writes every retained event newer than the cursor, flushes, and
    /// returns how many lines were appended.
    ///
    /// # Errors
    ///
    /// Returns any write or flush error (the cursor only advances past
    /// events that were fully written).
    pub fn drain(&mut self, tracer: &EventTracer) -> io::Result<usize> {
        let events = tracer.events_since(self.cursor);
        if let (Some(first), expected) = (events.first(), self.cursor.map_or(0, |c| c + 1)) {
            // The ring evicted events the sink never saw.
            self.missed += first.seq.saturating_sub(expected);
        }
        let mut appended = 0usize;
        for e in &events {
            self.file.write_all(trace_event_json(e).as_bytes())?;
            self.file.write_all(b"\n")?;
            self.cursor = Some(e.seq);
            self.written += 1;
            appended += 1;
        }
        self.file.flush()?;
        Ok(appended)
    }

    /// Events written to the file so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events that fell out of the ring before a drain saw them.
    #[must_use]
    pub fn missed(&self) -> u64 {
        self.missed
    }
}

/// A closure that materialises the current registry.
pub type MetricSource = Arc<dyn Fn() -> Vec<Metric> + Send + Sync>;

/// Admission limits for the scrape endpoint (see
/// [`MetricsServer::spawn_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrapeLimits {
    /// Scrapes served concurrently; further connections are answered
    /// `503 Service Unavailable` inline and counted as rejected. A
    /// stalled or malicious scraper can therefore pin at most this many
    /// threads, never one per connection.
    pub max_concurrent: usize,
    /// Per-scrape socket read timeout (bounds how long a stalled
    /// request head can hold a serving slot).
    pub read_timeout: Duration,
    /// Per-scrape socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ScrapeLimits {
    fn default() -> Self {
        ScrapeLimits {
            max_concurrent: 4,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// Cumulative scrape-admission counters (see
/// [`MetricsServer::scrape_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrapeStats {
    /// Scrapes accepted and handed to a serving thread.
    pub served: u64,
    /// Connections refused with `503` because
    /// [`ScrapeLimits::max_concurrent`] scrapes were already in flight.
    pub rejected: u64,
    /// Scrapes in flight right now.
    pub active: u64,
}

#[derive(Debug, Default)]
struct AtomicScrapeStats {
    served: AtomicU64,
    rejected: AtomicU64,
    active: AtomicU64,
}

/// A minimal HTTP/1.1 server exposing `/metrics` (Prometheus text)
/// and `/metrics.json` (JSON array).
///
/// Scrapes are served by short-lived worker threads, capped at
/// [`ScrapeLimits::max_concurrent`] in flight: connections beyond the
/// cap get an inline `503` instead of a thread, so a misbehaving
/// scraper cannot exhaust the process. The server stops when dropped
/// or on [`MetricsServer::stop`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<AtomicScrapeStats>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving metrics
    /// produced by `source`, with default [`ScrapeLimits`].
    ///
    /// # Errors
    ///
    /// Returns any socket bind error.
    pub fn spawn(addr: &str, source: MetricSource) -> io::Result<MetricsServer> {
        MetricsServer::spawn_with(addr, source, ScrapeLimits::default())
    }

    /// [`spawn`](Self::spawn) with explicit admission limits.
    ///
    /// # Errors
    ///
    /// Returns any socket bind error.
    pub fn spawn_with(
        addr: &str,
        source: MetricSource,
        limits: ScrapeLimits,
    ) -> io::Result<MetricsServer> {
        MetricsServer::spawn_inner(addr, source, None, limits)
    }

    /// [`spawn_with`](Self::spawn_with) plus a trace ring: the
    /// endpoint additionally serves `/trace.jsonl` — the retained
    /// [`EventTracer`] events as one JSON object per line (see
    /// [`trace_event_json`] for the schema) — with cursor-based
    /// incremental reads via `?since_seq=N` (events with `seq > N`
    /// only, so a poller passes the last seq it consumed and receives
    /// each event exactly once, ring overflow aside).
    ///
    /// # Errors
    ///
    /// Returns any socket bind error.
    pub fn spawn_traced(
        addr: &str,
        source: MetricSource,
        tracer: Arc<EventTracer>,
        limits: ScrapeLimits,
    ) -> io::Result<MetricsServer> {
        MetricsServer::spawn_inner(addr, source, Some(tracer), limits)
    }

    fn spawn_inner(
        addr: &str,
        source: MetricSource,
        tracer: Option<Arc<EventTracer>>,
        limits: ScrapeLimits,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(AtomicScrapeStats::default());
        let stop = Arc::clone(&shutdown);
        let loop_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("proteus-metrics".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Reap finished workers before admitting.
                            workers.retain(|w| !w.is_finished());
                            if loop_stats.active.load(Ordering::Relaxed)
                                >= limits.max_concurrent as u64
                            {
                                loop_stats.rejected.fetch_add(1, Ordering::Relaxed);
                                let _ = reject_scrape(stream, &limits);
                                continue;
                            }
                            loop_stats.active.fetch_add(1, Ordering::Relaxed);
                            let source = Arc::clone(&source);
                            let tracer = tracer.clone();
                            let stats = Arc::clone(&loop_stats);
                            let worker = std::thread::Builder::new()
                                .name("proteus-scrape".into())
                                .spawn(move || {
                                    // Serve errors (client hangup etc.)
                                    // only affect that one scrape.
                                    let _ =
                                        serve_scrape(stream, &source, tracer.as_deref(), &limits);
                                    stats.served.fetch_add(1, Ordering::Relaxed);
                                    stats.active.fetch_sub(1, Ordering::Relaxed);
                                });
                            match worker {
                                Ok(w) => workers.push(w),
                                Err(_) => {
                                    // Spawn failure: release the slot;
                                    // the dropped stream reads as a
                                    // failed scrape at the client.
                                    loop_stats.active.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
                // Let in-flight scrapes finish (each is bounded by the
                // socket timeouts) before the server reports stopped.
                for w in workers {
                    let _ = w.join();
                }
            })
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            shutdown,
            stats,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the scrape-admission counters: how many scrapes were
    /// served, how many were refused at the cap, and how many are in
    /// flight right now.
    #[must_use]
    pub fn scrape_stats(&self) -> ScrapeStats {
        ScrapeStats {
            served: self.stats.served.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            active: self.stats.active.load(Ordering::Relaxed),
        }
    }

    /// Stops the accept loop and joins the server thread (which in turn
    /// joins any in-flight scrape workers).
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Refuses a connection over the concurrency cap with an inline `503`
/// (best effort: a scraper that cannot even take the refusal is simply
/// dropped).
fn reject_scrape(mut stream: TcpStream, limits: &ScrapeLimits) -> io::Result<()> {
    stream.set_write_timeout(Some(limits.write_timeout))?;
    let body = "too many concurrent scrapes\n";
    let response = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads one HTTP request head and writes the matching exposition.
fn serve_scrape(
    mut stream: TcpStream,
    source: &MetricSource,
    tracer: Option<&EventTracer>,
    limits: &ScrapeLimits,
) -> io::Result<()> {
    stream.set_read_timeout(Some(limits.read_timeout))?;
    stream.set_write_timeout(Some(limits.write_timeout))?;
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read until the blank line ending the request head (or EOF).
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&head);
    let target = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };

    let (status, content_type, body) = match path {
        "/metrics" | "/" => {
            let body = to_prometheus(&source());
            ("200 OK", "text/plain; version=0.0.4", body)
        }
        "/metrics.json" => {
            let body = to_json(&source());
            ("200 OK", "application/json", body)
        }
        "/trace.jsonl" => match tracer {
            Some(tracer) => {
                let since_seq = query.and_then(parse_since_seq);
                let body = trace_to_jsonl(&tracer.events_since(since_seq));
                ("200 OK", "application/x-ndjson", body)
            }
            None => (
                "404 Not Found",
                "text/plain",
                "no tracer attached\n".to_string(),
            ),
        },
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Extracts the `since_seq` cursor from a query string
/// (`since_seq=42`, possibly among other `&`-separated pairs). A
/// malformed value reads as "no cursor" — the full retained ring —
/// rather than an error, since over-serving is always safe.
fn parse_since_seq(query: &str) -> Option<u64> {
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("since_seq="))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;

    fn sample_metrics() -> Vec<Metric> {
        let h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        vec![
            Metric::counter("proteus_requests_total", 42).with_label("op", "get"),
            Metric::gauge("proteus_connections", 3),
            Metric::float_gauge("proteus_fragmentation_ratio", 0.25),
            Metric::histogram("proteus_latency_seconds", h.snapshot()).with_label("op", "get"),
        ]
    }

    #[test]
    fn prometheus_text_has_types_labels_and_quantiles() {
        let text = to_prometheus(&sample_metrics());
        assert!(text.contains("# TYPE proteus_requests_total counter"));
        assert!(text.contains("proteus_requests_total{op=\"get\"} 42"));
        assert!(text.contains("# TYPE proteus_connections gauge"));
        assert!(text.contains("proteus_connections 3"));
        assert!(text.contains("# TYPE proteus_fragmentation_ratio gauge"));
        assert!(text.contains("proteus_fragmentation_ratio 0.250000"));
        assert!(text.contains("proteus_latency_seconds{op=\"get\",quantile=\"0.99\"}"));
        assert!(text.contains("proteus_latency_seconds_count{op=\"get\"} 100"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let json = to_json(&sample_metrics());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\":\"proteus_requests_total\""));
        assert!(json.contains("\"labels\":{\"op\":\"get\"}"));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"quantiles_ns\""));
    }

    #[test]
    fn stat_pairs_flatten_labels_and_quantiles() {
        let pairs = to_stat_pairs(&sample_metrics());
        let get = |k: &str| {
            pairs
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("proteus_requests_total_op_get").unwrap(), "42");
        assert_eq!(get("proteus_connections").unwrap(), "3");
        assert_eq!(get("proteus_fragmentation_ratio").unwrap(), "0.250000");
        assert_eq!(get("proteus_latency_seconds_op_get_count").unwrap(), "100");
        let p99: u64 = get("proteus_latency_seconds_op_get_p99_us")
            .unwrap()
            .parse()
            .unwrap();
        assert!((90_000..=110_000).contains(&p99), "p99_us={p99}");
    }

    #[test]
    fn empty_histograms_expose_only_count_zero() {
        let pairs = to_stat_pairs(&[Metric::histogram("empty_hist", HistogramSnapshot::empty())]);
        assert_eq!(pairs, vec![("empty_hist_count".into(), "0".into())]);
    }

    #[test]
    fn scrape_cap_rejects_excess_connections_and_recovers() {
        let source: MetricSource = Arc::new(sample_metrics);
        let limits = ScrapeLimits {
            max_concurrent: 2,
            // Long enough that a stalled scrape holds its slot for the
            // whole test, short enough that teardown stays quick.
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(2),
        };
        let mut server = MetricsServer::spawn_with("127.0.0.1:0", source, limits).unwrap();
        let addr = server.local_addr();

        // Two scrapers connect and stall without sending a request:
        // each pins one serving slot until its read timeout.
        let stalled: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.scrape_stats().active < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "stalled scrapes never occupied the slots: {:?}",
                server.scrape_stats()
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // The rejecting side closes without reading the request, which
        // can reset the connection before the 503 arrives — so reads
        // tolerate errors and callers retry on an empty reply.
        let try_fetch = || -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        };

        // The next scrape is refused inline, not queued behind the
        // stalled ones.
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        let reply = loop {
            let out = try_fetch();
            if !out.is_empty() {
                break out;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never got a reply while the slots were pinned"
            );
        };
        assert!(
            reply.starts_with("HTTP/1.1 503"),
            "expected 503, got {reply:?}"
        );
        let stats = server.scrape_stats();
        assert!(stats.rejected >= 1, "stats {stats:?}");

        // Releasing the stalled connections frees the slots and normal
        // service resumes.
        drop(stalled);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let out = try_fetch();
            if out.starts_with("HTTP/1.1 200 OK") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "scrapes never recovered after the stalled clients left: {out:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(server.scrape_stats().served >= 1);
        server.stop();
    }

    #[test]
    fn trace_jsonl_schema_is_stable() {
        let t = EventTracer::new();
        t.record(TraceKind::TransitionBegin { from: 4, to: 3 });
        t.record(TraceKind::DigestBroadcast {
            server: 2,
            ok: false,
        });
        t.record(TraceKind::KeyMigrated { from: 3, to: 1 });
        t.record(TraceKind::DigestSnapshot);
        t.record(TraceKind::PowerOff { server: 3 });
        t.record(TraceKind::ControllerDecision {
            from: 4,
            to: 3,
            p99_us: 1200,
            ops: 5000,
        });
        let jsonl = trace_to_jsonl(&t.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"seq\":0,\"at_ns\":"));
        assert!(lines[0].ends_with("\"kind\":\"transition_begin\",\"from\":4,\"to\":3}"));
        assert!(lines[1].ends_with("\"kind\":\"digest_broadcast\",\"server\":2,\"ok\":false}"));
        assert!(lines[2].ends_with("\"kind\":\"key_migrated\",\"from\":3,\"to\":1}"));
        assert!(lines[3].ends_with("\"kind\":\"digest_snapshot\"}"));
        assert!(lines[4].ends_with("\"kind\":\"power_off\",\"server\":3}"));
        assert!(lines[5].ends_with(
            "\"kind\":\"controller_decision\",\"from\":4,\"to\":3,\"p99_us\":1200,\"ops\":5000}"
        ));
        // Every line is self-contained JSON (no trailing commas, all
        // braces balanced) so a reader can parse line-by-line.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced: {line}"
            );
        }
    }

    #[test]
    fn sparse_buckets_round_trip_exactly() {
        let h = LatencyHistogram::new();
        for ns in [0u64, 5, 63, 64, 1_000, 123_456_789, 7_000_000_000] {
            h.record_nanos(ns);
        }
        let snap = h.snapshot();
        let rebuilt = HistogramSnapshot::from_sparse(
            &snap.nonzero_buckets(),
            snap.sum_nanos(),
            snap.min().unwrap().as_nanos() as u64,
            snap.max().unwrap().as_nanos() as u64,
        )
        .unwrap();
        assert_eq!(rebuilt, snap);
        // Empty snapshots round-trip too (min/max are ignored).
        let empty = HistogramSnapshot::empty();
        assert_eq!(HistogramSnapshot::from_sparse(&[], 0, 0, 0).unwrap(), empty);
        // Out-of-range bucket indices are rejected, not mis-binned.
        assert!(HistogramSnapshot::from_sparse(&[(usize::MAX, 1)], 0, 1, 1).is_none());
    }

    #[test]
    fn trace_file_sink_writes_each_event_once_and_counts_misses() {
        let t = EventTracer::with_capacity(4);
        let dir = std::env::temp_dir().join(format!(
            "proteus-trace-sink-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut sink = TraceFileSink::create(&dir).unwrap();
        t.record(TraceKind::TransitionBegin { from: 2, to: 1 });
        t.record(TraceKind::PowerOff { server: 1 });
        assert_eq!(sink.drain(&t).unwrap(), 2);
        assert_eq!(sink.drain(&t).unwrap(), 0, "no double writes");
        // Overflow the ring past the sink's cursor: six more events
        // (seq 2..=7) through a capacity-4 ring evict seq 2 and 3
        // before the next drain can see them.
        for s in 0..6u32 {
            t.record(TraceKind::Degraded { server: s });
        }
        let appended = sink.drain(&t).unwrap();
        assert_eq!(appended, 4, "only the retained tail can be written");
        assert_eq!(sink.missed(), 2, "evicted-before-drain events counted");
        assert_eq!(sink.written(), 6);
        let contents = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(contents.lines().count(), 6);
        let seqs: Vec<u64> = contents
            .lines()
            .map(|l| {
                l.split("\"seq\":")
                    .nth(1)
                    .unwrap()
                    .split(',')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 4, 5, 6, 7]);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn trace_metrics_expose_drop_counter() {
        let t = EventTracer::with_capacity(2);
        for s in 0..5u32 {
            t.record(TraceKind::Degraded { server: s });
        }
        let metrics = trace_metrics(&t);
        let get = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert!(
            matches!(
                get("proteus_trace_recorded_total").value,
                MetricValue::Counter(5)
            ),
            "recorded"
        );
        assert!(
            matches!(
                get("proteus_trace_dropped_total").value,
                MetricValue::Counter(3)
            ),
            "dropped"
        );
        assert!(
            matches!(get("proteus_trace_retained").value, MetricValue::Gauge(2)),
            "retained"
        );
    }

    #[test]
    fn traced_server_serves_trace_jsonl_with_cursor() {
        let source: MetricSource = Arc::new(sample_metrics);
        let tracer = Arc::new(EventTracer::new());
        tracer.record(TraceKind::TransitionBegin { from: 3, to: 2 });
        tracer.record(TraceKind::TransitionDrain { from: 3, to: 2 });
        tracer.record(TraceKind::PowerOff { server: 2 });
        let mut server = MetricsServer::spawn_traced(
            "127.0.0.1:0",
            source,
            Arc::clone(&tracer),
            ScrapeLimits::default(),
        )
        .unwrap();
        let addr = server.local_addr();

        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        let full = fetch("/trace.jsonl");
        assert!(full.starts_with("HTTP/1.1 200 OK"), "{full}");
        assert!(full.contains("application/x-ndjson"), "{full}");
        let body = full.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.lines().next().unwrap().contains("\"seq\":0"));

        // Cursor read: everything after seq 1.
        let tail = fetch("/trace.jsonl?since_seq=1");
        let body = tail.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"kind\":\"power_off\""));

        // Caught-up cursor: empty body, still 200.
        let empty = fetch("/trace.jsonl?since_seq=2");
        assert!(empty.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(empty.split("\r\n\r\n").nth(1).unwrap(), "");

        // An untraced server 404s the trace path.
        server.stop();
        let source: MetricSource = Arc::new(sample_metrics);
        let mut plain = MetricsServer::spawn("127.0.0.1:0", source).unwrap();
        let addr = plain.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /trace.jsonl HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        plain.stop();
    }

    #[test]
    fn metrics_server_serves_both_formats() {
        let source: MetricSource = Arc::new(sample_metrics);
        let mut server = MetricsServer::spawn("127.0.0.1:0", source).unwrap();
        let addr = server.local_addr();

        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        let text = fetch("/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("proteus_requests_total{op=\"get\"} 42"));

        let json = fetch("/metrics.json");
        assert!(json.starts_with("HTTP/1.1 200 OK"));
        assert!(json.contains("application/json"));
        assert!(json.contains("\"type\":\"counter\""));

        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.stop();
    }
}
