//! Bounded ring-buffer tracer for transition lifecycle events.
//!
//! Provisioning transitions are rare (minutes apart in the paper's
//! traces) but their internal ordering matters: a correct run is
//! begin → digest broadcast → per-key migrations → drain. The tracer
//! captures that ordering with a global sequence number and a
//! monotonic timestamp relative to tracer creation, in a fixed-size
//! ring that drops the oldest events when full — tracing can stay on
//! forever without growing.
//!
//! Unlike the latency histograms, event recording takes a short mutex:
//! events are orders of magnitude rarer than cache operations, so a
//! ring behind a lock is simpler and still far off any hot path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Default ring capacity: enough for several full transitions of a
/// large cluster.
const DEFAULT_CAPACITY: usize = 4096;

/// What happened. Server indices match the provisioning ring's
/// server numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A provisioning transition from `from` active servers to `to`
    /// was accepted.
    TransitionBegin {
        /// Active servers before the transition.
        from: u32,
        /// Active servers after the transition.
        to: u32,
    },
    /// The old owner's digest was pushed to (or pulled for) `server`.
    DigestBroadcast {
        /// Server whose digest was exchanged.
        server: u32,
        /// Whether the exchange succeeded.
        ok: bool,
    },
    /// A key was found on its old owner and re-set on its new owner.
    KeyMigrated {
        /// Old owner.
        from: u32,
        /// New owner.
        to: u32,
    },
    /// A migration probe was skipped because the old owner is
    /// considered dead.
    MigrationSkipped {
        /// The unreachable old owner.
        server: u32,
    },
    /// A fetch fell back to the database because `server` was
    /// unreachable.
    Degraded {
        /// The unreachable server.
        server: u32,
    },
    /// The transition window closed: old-owner digests dropped,
    /// remaining misses go straight to the database.
    TransitionDrain {
        /// Active servers before the transition.
        from: u32,
        /// Active servers after the transition.
        to: u32,
    },
    /// A server was (logically) powered off after its drain.
    PowerOff {
        /// The retired server.
        server: u32,
    },
    /// The server took a counting-Bloom-filter digest snapshot (the
    /// `get SET_BLOOM_FILTER` half of a digest broadcast, observed on
    /// the server side of the wire).
    DigestSnapshot,
    /// The power controller decided to resize the cluster from `from`
    /// to `to` active servers, driven by the measured high-percentile
    /// delay (microseconds, saturating) and the observed aggregate
    /// load (ops/s, saturating). Recorded *before* the transition it
    /// actuates, so a decision with no matching `transition_begin`
    /// reads as an actuation failure.
    ControllerDecision {
        /// Active servers when the decision was taken.
        from: u32,
        /// The decided target count.
        to: u32,
        /// Measured delay driving the decision, in microseconds
        /// (saturated at `u32::MAX`; 0 when no signal was available).
        p99_us: u32,
        /// Observed aggregate load in ops/s (saturated at `u32::MAX`).
        ops: u32,
    },
    /// The circuit breaker for `server` opened (fast-fail engaged).
    BreakerOpen {
        /// Server the breaker guards.
        server: u32,
    },
    /// The breaker let a half-open probe through.
    BreakerProbe {
        /// Server the breaker guards.
        server: u32,
    },
    /// The breaker closed again after a successful probe.
    BreakerClose {
        /// Server the breaker guards.
        server: u32,
    },
}

impl TraceKind {
    /// Stable snake_case name for display and filtering.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::TransitionBegin { .. } => "transition_begin",
            TraceKind::DigestBroadcast { .. } => "digest_broadcast",
            TraceKind::KeyMigrated { .. } => "key_migrated",
            TraceKind::MigrationSkipped { .. } => "migration_skipped",
            TraceKind::Degraded { .. } => "degraded",
            TraceKind::TransitionDrain { .. } => "transition_drain",
            TraceKind::PowerOff { .. } => "power_off",
            TraceKind::DigestSnapshot => "digest_snapshot",
            TraceKind::ControllerDecision { .. } => "controller_decision",
            TraceKind::BreakerOpen { .. } => "breaker_open",
            TraceKind::BreakerProbe { .. } => "breaker_probe",
            TraceKind::BreakerClose { .. } => "breaker_close",
        }
    }
}

/// One recorded event: a globally ordered sequence number, a monotonic
/// offset from tracer creation, and the event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (0-based, never reused; gaps never occur
    /// even when the ring drops old events).
    pub seq: u64,
    /// Monotonic time since the tracer was created.
    pub at: Duration,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded, concurrency-safe event ring.
#[derive(Debug)]
pub struct EventTracer {
    start: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl EventTracer {
    /// Creates a tracer with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a tracer holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTracer {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Records one event, stamping it with the next sequence number
    /// and the monotonic offset from tracer creation. Drops the oldest
    /// event if the ring is full.
    pub fn record(&self, kind: TraceKind) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at: self.start.elapsed(),
            kind,
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// All retained events, oldest first. Sequence numbers within the
    /// result are strictly increasing.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        let mut v: Vec<TraceEvent> = ring.iter().copied().collect();
        // Writers stamp seq before taking the ring lock, so two racing
        // records can land slightly out of order; present them sorted.
        v.sort_by_key(|e| e.seq);
        v
    }

    /// The retained events with a sequence number strictly greater
    /// than `since_seq`, oldest first — the cursor read behind the
    /// `/trace.jsonl?since_seq=` endpoint and the file sink. Pass the
    /// last sequence number already consumed; `None` returns
    /// everything retained. Events that fell out of the ring before
    /// the cursor caught up are gone (and counted by
    /// [`dropped`](Self::dropped)); the caller detects the gap by
    /// comparing the first returned seq with its cursor + 1.
    #[must_use]
    pub fn events_since(&self, since_seq: Option<u64>) -> Vec<TraceEvent> {
        let mut events = self.events();
        if let Some(cursor) = since_seq {
            events.retain(|e| e.seq > cursor);
        }
        events
    }

    /// The sequence number of the oldest retained event, or `None` if
    /// the ring is empty. When events are only ever evicted by ring
    /// overflow (no [`clear`](Self::clear)), this equals
    /// [`dropped`](Self::dropped) — the tail-contiguity invariant the
    /// trace export tests pin down.
    #[must_use]
    pub fn first_retained_seq(&self) -> Option<u64> {
        self.events().first().map(|e| e.seq)
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including dropped ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

impl Default for EventTracer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_come_back_in_order_with_monotone_stamps() {
        let t = EventTracer::new();
        t.record(TraceKind::TransitionBegin { from: 8, to: 6 });
        t.record(TraceKind::DigestBroadcast {
            server: 7,
            ok: true,
        });
        t.record(TraceKind::KeyMigrated { from: 7, to: 3 });
        t.record(TraceKind::TransitionDrain { from: 8, to: 6 });
        let events = t.events();
        assert_eq!(events.len(), 4);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert_eq!(events[0].kind.name(), "transition_begin");
        assert_eq!(events[3].kind.name(), "transition_drain");
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let t = EventTracer::with_capacity(3);
        for s in 0..5u32 {
            t.record(TraceKind::PowerOff { server: s });
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        assert_eq!(events[0].seq, 2, "oldest two must have been evicted");
        assert_eq!(events[2].kind, TraceKind::PowerOff { server: 4 });
    }

    #[test]
    fn concurrent_records_keep_unique_seq() {
        let t = Arc::new(EventTracer::new());
        let threads: Vec<_> = (0..4)
            .map(|s| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record(TraceKind::Degraded { server: s });
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let events = t.events();
        assert_eq!(events.len(), 400);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers must be unique");
    }

    #[test]
    fn overflow_counts_drops_and_keeps_the_tail_contiguous() {
        let t = EventTracer::with_capacity(8);
        for s in 0..20u32 {
            t.record(TraceKind::Degraded { server: s });
        }
        // Exactly the overwritten prefix is counted as dropped...
        assert_eq!(t.dropped(), 12);
        assert_eq!(t.recorded(), 20);
        // ...and the survivors are seq-contiguous from the tail: the
        // oldest retained seq equals the drop count, and every later
        // seq follows without a gap.
        let events = t.events();
        assert_eq!(events.len(), 8);
        assert_eq!(t.first_retained_seq(), Some(12));
        for (offset, e) in events.iter().enumerate() {
            assert_eq!(e.seq, 12 + offset as u64, "gap in retained seqs");
        }
        // Cursor reads see the same tail: a reader that consumed up to
        // seq 14 gets exactly 15..20, and a fully caught-up reader
        // gets nothing.
        let rest = t.events_since(Some(14));
        assert_eq!(rest.first().map(|e| e.seq), Some(15));
        assert_eq!(rest.len(), 5);
        assert!(t.events_since(Some(19)).is_empty());
    }

    #[test]
    fn clear_keeps_counting() {
        let t = EventTracer::new();
        t.record(TraceKind::BreakerOpen { server: 1 });
        t.clear();
        assert!(t.is_empty());
        t.record(TraceKind::BreakerClose { server: 1 });
        assert_eq!(t.events()[0].seq, 1);
    }
}
