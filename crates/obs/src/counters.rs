//! Typed counters, gauges, and per-class latency families.
//!
//! These are the building blocks of the telemetry registry: a
//! [`Counter`] is a monotone relaxed `AtomicU64`, a [`Gauge`] an
//! `AtomicI64` that may move both ways, and the two class enums
//! ([`OpClass`], [`FetchClassKind`]) index fixed arrays of
//! [`LatencyHistogram`]s so the record path stays allocation-free.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (e.g. open
/// connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Wire-operation classes the server distinguishes when recording
/// per-command latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Single-key `get`.
    Get,
    /// Multi-key `get` (one wire round-trip, many keys).
    MultiGet,
    /// `set`.
    Set,
    /// `add`.
    Add,
    /// `replace`.
    Replace,
    /// `delete`.
    Delete,
    /// `touch`.
    Touch,
    /// `incr`.
    Incr,
    /// `decr`.
    Decr,
    /// `stats` (either form).
    Stats,
    /// Digest traffic on the reserved `SET_BLOOM_FILTER` /
    /// `BLOOM_FILTER` keys.
    Digest,
    /// Anything else (`version`, `quit`, future verbs).
    Other,
}

impl OpClass {
    /// Every class, in display order.
    pub const ALL: [OpClass; 12] = [
        OpClass::Get,
        OpClass::MultiGet,
        OpClass::Set,
        OpClass::Add,
        OpClass::Replace,
        OpClass::Delete,
        OpClass::Touch,
        OpClass::Incr,
        OpClass::Decr,
        OpClass::Stats,
        OpClass::Digest,
        OpClass::Other,
    ];

    /// Stable snake_case name used in metric labels and STAT keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::MultiGet => "multi_get",
            OpClass::Set => "set",
            OpClass::Add => "add",
            OpClass::Replace => "replace",
            OpClass::Delete => "delete",
            OpClass::Touch => "touch",
            OpClass::Incr => "incr",
            OpClass::Decr => "decr",
            OpClass::Stats => "stats",
            OpClass::Digest => "digest",
            OpClass::Other => "other",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// A fixed family of per-[`OpClass`] latency histograms.
///
/// `record` is as cheap as a bare histogram record: one array index
/// plus the atomic bumps — no map lookup, no allocation.
#[derive(Debug)]
pub struct OpLatencies {
    hists: [LatencyHistogram; OpClass::ALL.len()],
}

impl OpLatencies {
    /// Creates one histogram per op class.
    #[must_use]
    pub fn new() -> Self {
        OpLatencies {
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Records one latency sample for `class`.
    #[inline]
    pub fn record(&self, class: OpClass, d: Duration) {
        self.hists[class.index()].record(d);
    }

    /// The live histogram for `class`.
    #[must_use]
    pub fn histogram(&self, class: OpClass) -> &LatencyHistogram {
        &self.hists[class.index()]
    }

    /// Snapshots one class.
    #[must_use]
    pub fn snapshot(&self, class: OpClass) -> HistogramSnapshot {
        self.hists[class.index()].snapshot()
    }

    /// Snapshots every class in [`OpClass::ALL`] order.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<(OpClass, HistogramSnapshot)> {
        OpClass::ALL
            .iter()
            .map(|&c| (c, self.snapshot(c)))
            .collect()
    }

    /// Merges every class into one combined snapshot.
    #[must_use]
    pub fn snapshot_merged(&self) -> HistogramSnapshot {
        let mut acc = HistogramSnapshot::empty();
        for h in &self.hists {
            acc.merge(&h.snapshot());
        }
        acc
    }
}

impl Default for OpLatencies {
    fn default() -> Self {
        Self::new()
    }
}

/// How a cluster fetch was ultimately satisfied, as observed by the
/// client. Mirrors `ClusterFetch` in proteus-net plus the
/// false-positive refinement from the simulator's `FetchClass`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FetchClassKind {
    /// Served by the key's current owner.
    NewHit,
    /// Found on the old owner mid-transition and migrated.
    Migrated,
    /// Fell through to the database (true miss).
    Database,
    /// A cache server was unreachable; served from the database.
    Degraded,
    /// The digest claimed the old server had the key but it did not
    /// (Bloom-filter false positive); served from the database.
    FalsePositive,
    /// Served by a non-home replica of a hot key (power-of-two-choices
    /// routing picked, or failover fell through to, a server other
    /// than the key's ring-0 owner).
    ReplicaHit,
}

impl FetchClassKind {
    /// Every class, in display order.
    pub const ALL: [FetchClassKind; 6] = [
        FetchClassKind::NewHit,
        FetchClassKind::Migrated,
        FetchClassKind::Database,
        FetchClassKind::Degraded,
        FetchClassKind::FalsePositive,
        FetchClassKind::ReplicaHit,
    ];

    /// Stable snake_case name used in metric labels and STAT keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FetchClassKind::NewHit => "new_hit",
            FetchClassKind::Migrated => "migrated",
            FetchClassKind::Database => "database",
            FetchClassKind::Degraded => "degraded",
            FetchClassKind::FalsePositive => "false_positive",
            FetchClassKind::ReplicaHit => "replica_hit",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Per-[`FetchClassKind`] counters and latency histograms for the
/// client side of the cluster.
#[derive(Debug)]
pub struct FetchLatencies {
    counts: [Counter; FetchClassKind::ALL.len()],
    hists: [LatencyHistogram; FetchClassKind::ALL.len()],
}

impl FetchLatencies {
    /// Creates one counter + histogram per fetch class.
    #[must_use]
    pub fn new() -> Self {
        FetchLatencies {
            counts: std::array::from_fn(|_| Counter::new()),
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Records one classified fetch with its end-to-end latency.
    #[inline]
    pub fn record(&self, class: FetchClassKind, d: Duration) {
        self.counts[class.index()].inc();
        self.hists[class.index()].record(d);
    }

    /// Counts one classified fetch without a latency sample (used for
    /// batched multi-key phases where per-key timing is meaningless).
    #[inline]
    pub fn count_only(&self, class: FetchClassKind) {
        self.counts[class.index()].inc();
    }

    /// Total fetches counted for `class`.
    #[must_use]
    pub fn count(&self, class: FetchClassKind) -> u64 {
        self.counts[class.index()].get()
    }

    /// Snapshots the latency histogram for `class`.
    #[must_use]
    pub fn snapshot(&self, class: FetchClassKind) -> HistogramSnapshot {
        self.hists[class.index()].snapshot()
    }

    /// Snapshots every class in [`FetchClassKind::ALL`] order.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<(FetchClassKind, u64, HistogramSnapshot)> {
        FetchClassKind::ALL
            .iter()
            .map(|&c| (c, self.count(c), self.snapshot(c)))
            .collect()
    }
}

impl Default for FetchLatencies {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn op_class_indices_are_dense_and_names_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
    }

    #[test]
    fn fetch_class_indices_are_dense_and_names_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, c) in FetchClassKind::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
    }

    #[test]
    fn op_latencies_route_to_the_right_class() {
        let ops = OpLatencies::new();
        ops.record(OpClass::Get, Duration::from_micros(10));
        ops.record(OpClass::Get, Duration::from_micros(20));
        ops.record(OpClass::Set, Duration::from_micros(30));
        assert_eq!(ops.snapshot(OpClass::Get).count(), 2);
        assert_eq!(ops.snapshot(OpClass::Set).count(), 1);
        assert_eq!(ops.snapshot(OpClass::Delete).count(), 0);
        assert_eq!(ops.snapshot_merged().count(), 3);
    }

    #[test]
    fn fetch_latencies_count_and_time() {
        let f = FetchLatencies::new();
        f.record(FetchClassKind::NewHit, Duration::from_micros(5));
        f.count_only(FetchClassKind::NewHit);
        f.record(FetchClassKind::Degraded, Duration::from_millis(2));
        assert_eq!(f.count(FetchClassKind::NewHit), 2);
        assert_eq!(f.snapshot(FetchClassKind::NewHit).count(), 1);
        assert_eq!(f.count(FetchClassKind::Degraded), 1);
        assert_eq!(f.count(FetchClassKind::Database), 0);
    }
}
