//! The aggregation identity the whole cluster-observability plane
//! rests on: decoding N servers' `/metrics.json` expositions and
//! merging them remotely produces *exactly* the snapshot a single
//! process would get by merging the same histograms in memory. Not
//! statistically close — bucket-for-bucket identical, because the JSON
//! wire carries sparse buckets losslessly.

use proptest::prelude::*;
use proteus_agg::{merge_metrics, parse_metrics};
use proteus_obs::{to_json, HistogramSnapshot, LatencyHistogram, Metric, MetricValue};

/// Per-server sample sets spanning every bucket regime: the exact
/// region, a few octaves up, and deep-octave tail spikes.
fn server_samples() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                0u64..64,
                64u64..100_000,
                100_000u64..10_000_000_000,
                Just(1_000_000_000_000u64),
            ],
            0..120,
        ),
        1..6,
    )
}

fn record(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record_nanos(v);
    }
    h.snapshot()
}

proptest! {
    /// scrape → parse → merge equals the in-process merge oracle,
    /// exactly, including quantiles (which are a pure function of the
    /// snapshot).
    #[test]
    fn remote_merge_equals_in_process_merge(per_server in server_samples()) {
        let snapshots: Vec<HistogramSnapshot> =
            per_server.iter().map(|v| record(v)).collect();

        // Each server's exposition travels through the real wire
        // format and the aggregator's real decoder.
        let decoded_per_server: Vec<Vec<Metric>> = snapshots
            .iter()
            .enumerate()
            .map(|(i, snap)| {
                let body = to_json(&[
                    Metric::counter("proteus_get_hits_total", (i as u64 + 1) * 10),
                    Metric::histogram("proteus_command_latency_seconds", snap.clone())
                        .with_label("op", "get"),
                ]);
                parse_metrics(&body).expect("exposition must decode")
            })
            .collect();
        let sources: Vec<&[Metric]> =
            decoded_per_server.iter().map(Vec::as_slice).collect();
        let merged = merge_metrics(&sources);

        // Oracle: merge the very same snapshots without any wire.
        let mut oracle = HistogramSnapshot::empty();
        for snap in &snapshots {
            oracle.merge(snap);
        }

        let cluster_hist = merged
            .iter()
            .find(|m| m.name == "proteus_command_latency_seconds")
            .expect("merged exposition keeps the histogram");
        match &cluster_hist.value {
            MetricValue::Histogram(h) => prop_assert_eq!(h, &oracle),
            other => prop_assert!(false, "expected histogram, got {:?}", other),
        }

        let cluster_hits = merged
            .iter()
            .find(|m| m.name == "proteus_get_hits_total")
            .expect("merged exposition keeps the counter");
        let n = per_server.len() as u64;
        match cluster_hits.value {
            MetricValue::Counter(v) => prop_assert_eq!(v, 10 * n * (n + 1) / 2),
            ref other => prop_assert!(false, "expected counter, got {:?}", other),
        }
    }
}
