//! Scrape-client hardening under injected network faults: a blackholed
//! server must cost one bounded timeout per tick — never a stalled
//! aggregator — and must re-enter the merged view when it heals.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proteus_agg::{ClusterObserver, ObserverConfig};
use proteus_net::{FaultMode, FaultProxy};
use proteus_obs::{Metric, MetricSource, MetricValue, MetricsServer};

fn metrics_endpoint(hits: u64) -> MetricsServer {
    let source: MetricSource = Arc::new(move || {
        vec![
            Metric::counter("proteus_get_hits_total", hits),
            Metric::counter("proteus_get_misses_total", 1),
        ]
    });
    MetricsServer::spawn("127.0.0.1:0", source).expect("bind metrics endpoint")
}

#[test]
fn blackholed_server_fails_bounded_and_recovers() {
    let mut healthy_a = metrics_endpoint(100);
    let mut healthy_b = metrics_endpoint(200);
    let mut flaky = metrics_endpoint(300);
    let proxy = FaultProxy::spawn(flaky.local_addr()).expect("spawn fault proxy");

    let config = ObserverConfig {
        connect_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(400),
        stale_after: 1,
        ..ObserverConfig::default()
    };
    let observer = ClusterObserver::new(config);
    observer.add_server(healthy_a.local_addr());
    observer.add_server(healthy_b.local_addr());
    observer.add_server(proxy.addr());

    // Healthy round first: everyone is fresh through the proxy too.
    let snap = observer.tick();
    assert_eq!(snap.servers.iter().filter(|s| s.fresh).count(), 3);

    // Blackhole the proxied server: accepts, then silence. Two ticks
    // must each complete within the scrape deadline budget (scrapes
    // run concurrently, so the bound is per-tick, not per-server) and
    // count consecutive failures without disturbing the healthy pair.
    proxy.set_mode(FaultMode::Blackhole);
    for expected_failures in 1..=2 {
        let started = Instant::now();
        let snap = observer.tick();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "tick must be deadline-bounded, took {:?}",
            started.elapsed()
        );
        let flaky_status = snap
            .servers
            .iter()
            .find(|s| s.addr == proxy.addr())
            .expect("flaky server stays registered");
        assert_eq!(flaky_status.consecutive_failures, expected_failures);
        assert!(!flaky_status.fresh, "stale_after=1 drops it immediately");
        assert_eq!(
            snap.servers.iter().filter(|s| s.fresh).count(),
            2,
            "healthy servers keep reporting"
        );
        // The stale server's last-known counters must not leak into
        // the merged view: 100 + 200 hits, not 600.
        let merged_hits = snap
            .merged
            .iter()
            .find(|m| m.name == "proteus_get_hits_total")
            .map(|m| match m.value {
                MetricValue::Counter(v) => v,
                _ => panic!("hits must stay a counter"),
            })
            .expect("healthy servers expose hits");
        assert_eq!(merged_hits, 300);
    }
    let (scrapes, failures) = observer.scrape_totals();
    assert_eq!(scrapes, 9, "three ticks over three servers");
    assert_eq!(failures, 2, "one per blackholed tick");

    // Heal the link: the very next tick readmits the server.
    proxy.set_mode(FaultMode::Forward);
    let snap = observer.tick();
    let flaky_status = snap
        .servers
        .iter()
        .find(|s| s.addr == proxy.addr())
        .expect("flaky server still registered");
    assert_eq!(flaky_status.consecutive_failures, 0);
    assert!(flaky_status.fresh);
    assert_eq!(snap.servers.iter().filter(|s| s.fresh).count(), 3);

    proxy.stop();
    healthy_a.stop();
    healthy_b.stop();
    flaky.stop();
}
