//! The cluster observer: periodic concurrent scrapes of every server's
//! metrics endpoint, merged into one cluster-wide view.
//!
//! Each tick connects to all known servers in parallel (each scrape
//! individually deadline-bounded, so one blackholed server delays a
//! tick by at most `connect_timeout + read_timeout`), decodes their
//! `/metrics.json` expositions, and merges them by `(name, labels)`:
//! counters and integer gauges sum, fractional gauges average, and
//! histograms merge bucket-by-bucket — so the cluster p99 is computed
//! from the union of every server's samples, not an average of
//! per-server percentiles. On top of the merge it derives the health
//! series the paper's evaluation watches: aggregate ops/s, hit ratio,
//! per-server load imbalance (max/mean, the DistCache metric), and the
//! active-server count, and it feeds observed utilization into a
//! [`WallEnergyMeter`] for live joules and proportionality.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_core::{PowerModel, PowerState};
use proteus_obs::{HistogramSnapshot, Metric, MetricSource, MetricValue};

use crate::energy::WallEnergyMeter;
use crate::scrape::{build_request, http_get_into, parse_metrics, ScrapeError};

/// The endpoint the observer scrapes on every server.
pub const METRICS_PATH: &str = "/metrics.json";

/// Tuning for a [`ClusterObserver`].
#[derive(Debug, Clone, Copy)]
pub struct ObserverConfig {
    /// Scrape period for the background loop ([`ClusterObserver::spawn`]).
    pub interval: Duration,
    /// TCP connect timeout per scrape.
    pub connect_timeout: Duration,
    /// Overall response deadline per scrape.
    pub read_timeout: Duration,
    /// Consecutive scrape failures after which a server's last-known
    /// metrics stop contributing to the merged view.
    pub stale_after: u32,
    /// One server's serving capacity in ops/s: the denominator for
    /// utilization and the oracle's sizing unit.
    pub server_capacity_ops: f64,
    /// Per-server power model for energy accounting.
    pub power: PowerModel,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            interval: Duration::from_secs(1),
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            stale_after: 3,
            server_capacity_ops: 50_000.0,
            power: PowerModel::default(),
        }
    }
}

/// One server's standing in the latest cluster snapshot.
#[derive(Debug, Clone)]
pub struct ServerStatus {
    /// The server's metrics endpoint address.
    pub addr: SocketAddr,
    /// Whether the server's data is current (scraped successfully
    /// within the staleness budget).
    pub fresh: bool,
    /// Scrape failures since the last success.
    pub consecutive_failures: u32,
    /// Observed request rate over the last successful scrape interval.
    pub ops_per_sec: f64,
    /// `ops_per_sec / server_capacity_ops`, clamped to `[0, 1]`.
    pub utilization: f64,
    /// Power state as told to the observer (servers cannot report
    /// their own offness).
    pub power_state: PowerState,
}

/// One merged view of the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// When the tick that produced this snapshot ran.
    pub at: Instant,
    /// All fresh servers' metrics merged by `(name, labels)`, original
    /// per-server names preserved.
    pub merged: Vec<Metric>,
    /// Aggregate request rate across fresh servers.
    pub ops_per_sec: f64,
    /// Cluster hit ratio over this tick's counter deltas, if any
    /// lookups happened.
    pub hit_ratio: Option<f64>,
    /// Max/mean per-server request rate across fresh active servers
    /// (1.0 = perfectly balanced), if any load was observed.
    pub imbalance: Option<f64>,
    /// Servers currently powered on (including booting/draining).
    pub active_servers: usize,
    /// Per-server detail, in registration order.
    pub servers: Vec<ServerStatus>,
    /// Cluster command latency over **this window only**: the delta of
    /// successive cumulative merged `proteus_command_latency_seconds`
    /// reads, unioned across every fresh server and op. Cumulative
    /// histograms stop reflecting the present once millions of old
    /// samples dominate; a feedback controller needs the p99 of the
    /// last tick, so this is the series it steers by.
    pub window_latency: HistogramSnapshot,
}

/// The per-tick summary a feedback controller steers by.
#[derive(Debug, Clone, Copy)]
pub struct ControlSignal {
    /// Aggregate request rate across fresh servers.
    pub ops_per_sec: f64,
    /// Windowed cluster p99 command latency, or `None` when no
    /// commands landed this window (an idle cluster has no delay).
    pub p99: Option<Duration>,
    /// Samples inside the window (how trustworthy `p99` is).
    pub window_samples: u64,
    /// Servers currently powered on (including booting/draining).
    pub active_servers: usize,
    /// Servers whose data is current.
    pub fresh_servers: usize,
}

impl ClusterSnapshot {
    /// Collapses this snapshot to the [`ControlSignal`] a provisioning
    /// loop consumes.
    #[must_use]
    pub fn control_signal(&self) -> ControlSignal {
        ControlSignal {
            ops_per_sec: self.ops_per_sec,
            p99: self.window_latency.quantile(0.99),
            window_samples: self.window_latency.count(),
            active_servers: self.active_servers,
            fresh_servers: self.servers.iter().filter(|s| s.fresh).count(),
        }
    }
}

/// Cumulative counters a server carries between ticks, for rates.
#[derive(Debug, Clone, Copy, Default)]
struct OpCounters {
    ops: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct ServerEntry {
    addr: SocketAddr,
    consecutive_failures: u32,
    power_state: PowerState,
    /// Metrics from the most recent successful scrape.
    last_metrics: Option<Vec<Metric>>,
    /// `(when, counters)` at the most recent successful scrape.
    prev: Option<(Instant, OpCounters)>,
    /// Rates computed from the last two successful scrapes.
    ops_per_sec: f64,
    hit_delta: u64,
    lookup_delta: u64,
    /// Response buffer recycled across this server's scrapes: taken
    /// out for the tick's scoped scrape thread, handed back after.
    /// Once grown to the exposition size, steady-state scrapes stop
    /// allocating for I/O entirely.
    scrape_buf: Vec<u8>,
}

#[derive(Debug)]
struct Inner {
    entries: Vec<ServerEntry>,
    meter: WallEnergyMeter,
    latest: Option<ClusterSnapshot>,
    scrapes_total: u64,
    scrape_failures_total: u64,
    /// Cumulative merged command-latency histogram as of the previous
    /// tick, the subtrahend for the windowed latency delta.
    prev_latency: Option<HistogramSnapshot>,
}

/// Scrapes every registered server on demand ([`tick`](Self::tick)) or
/// on a timer ([`spawn`](Self::spawn)), maintaining the merged
/// [`ClusterSnapshot`] and the cluster energy account.
///
/// All methods take `&self`; share the observer with `Arc` between the
/// scrape loop and the re-exposition endpoint.
#[derive(Debug)]
pub struct ClusterObserver {
    config: ObserverConfig,
    /// Prebuilt `GET /metrics.json` request bytes, rendered once: the
    /// request never varies, so per-tick formatting is pure churn.
    request: Vec<u8>,
    inner: Mutex<Inner>,
}

impl ClusterObserver {
    /// An observer with no servers yet.
    #[must_use]
    pub fn new(config: ObserverConfig) -> Self {
        ClusterObserver {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                meter: WallEnergyMeter::new(config.power, 0, config.server_capacity_ops),
                latest: None,
                scrapes_total: 0,
                scrape_failures_total: 0,
                prev_latency: None,
            }),
            request: build_request(METRICS_PATH),
            config,
        }
    }

    /// The configuration this observer runs with.
    #[must_use]
    pub fn config(&self) -> ObserverConfig {
        self.config
    }

    /// Registers a server's metrics endpoint. Idempotent: re-adding a
    /// known address is a no-op. New servers join as
    /// [`PowerState::On`] and are scraped from the next tick.
    pub fn add_server(&self, addr: SocketAddr) {
        let mut inner = self.inner.lock();
        if inner.entries.iter().any(|e| e.addr == addr) {
            return;
        }
        inner.entries.push(ServerEntry {
            addr,
            consecutive_failures: 0,
            power_state: PowerState::On,
            last_metrics: None,
            prev: None,
            ops_per_sec: 0.0,
            hit_delta: 0,
            lookup_delta: 0,
            scrape_buf: Vec::new(),
        });
        inner.meter.push_server(PowerState::On);
    }

    /// Deregisters a server. Its already-integrated energy remains in
    /// the account. Returns whether the address was known.
    pub fn remove_server(&self, addr: SocketAddr) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.iter().position(|e| e.addr == addr) {
            Some(idx) => {
                inner.entries.remove(idx);
                inner.meter.remove_server(idx);
                true
            }
            None => false,
        }
    }

    /// Registered server addresses, in registration order.
    #[must_use]
    pub fn servers(&self) -> Vec<SocketAddr> {
        self.inner.lock().entries.iter().map(|e| e.addr).collect()
    }

    /// Tells the observer about a server's power state (the cluster
    /// controller knows; an off server cannot say so itself). Returns
    /// whether the address was known.
    pub fn set_power_state(&self, addr: SocketAddr, state: PowerState) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.iter().position(|e| e.addr == addr) {
            Some(idx) => {
                inner.entries[idx].power_state = state;
                inner.meter.set_state(idx, state);
                true
            }
            None => false,
        }
    }

    /// The most recent merged snapshot, if a tick has completed.
    #[must_use]
    pub fn latest(&self) -> Option<ClusterSnapshot> {
        self.inner.lock().latest.clone()
    }

    /// A copy of the energy account as of the latest tick.
    #[must_use]
    pub fn energy(&self) -> WallEnergyMeter {
        self.inner.lock().meter.clone()
    }

    /// Total scrape attempts and failures since construction.
    #[must_use]
    pub fn scrape_totals(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.scrapes_total, inner.scrape_failures_total)
    }

    /// Runs one aggregation round: scrape every server concurrently,
    /// fold results into the merged snapshot, and advance the energy
    /// integral. Returns the snapshot it produced.
    ///
    /// Wall-clock cost is bounded by the slowest single scrape
    /// (`connect_timeout + read_timeout`), not the sum over servers.
    pub fn tick(&self) -> ClusterSnapshot {
        // Snapshot the membership without holding the lock across
        // network I/O; results re-match by address afterwards so
        // servers removed mid-scrape are simply dropped. Each server's
        // recycled response buffer travels with its scrape job and is
        // handed back below, so steady-state ticks reuse the same
        // heap blocks tick after tick.
        let jobs: Vec<(SocketAddr, Vec<u8>)> = {
            let mut inner = self.inner.lock();
            inner
                .entries
                .iter_mut()
                .map(|e| (e.addr, std::mem::take(&mut e.scrape_buf)))
                .collect()
        };
        let addrs: Vec<SocketAddr> = jobs.iter().map(|&(addr, _)| addr).collect();
        let connect = self.config.connect_timeout;
        let read = self.config.read_timeout;
        let request = self.request.as_slice();
        type ScrapeResult = (SocketAddr, Vec<u8>, Result<Vec<Metric>, ScrapeError>);
        let mut results: Vec<ScrapeResult> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(addr, mut buf)| {
                    scope.spawn(move || {
                        let result = http_get_into(addr, request, connect, read, &mut buf)
                            .and_then(|body| {
                                let text = std::str::from_utf8(&buf[body..]).map_err(|_| {
                                    ScrapeError::Parse("body is not valid UTF-8".into())
                                })?;
                                parse_metrics(text)
                            });
                        (addr, buf, result)
                    })
                })
                .collect();
            for (&addr, handle) in addrs.iter().zip(handles) {
                results.push(handle.join().unwrap_or_else(|_| {
                    (
                        addr,
                        Vec::new(),
                        Err(ScrapeError::Parse("scrape thread panicked".into())),
                    )
                }));
            }
        });
        let now = Instant::now();

        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        for (addr, buf, result) in results {
            let Some(entry) = inner.entries.iter_mut().find(|e| e.addr == addr) else {
                continue; // removed while the scrape was in flight
            };
            entry.scrape_buf = buf;
            inner.scrapes_total += 1;
            match result {
                Ok(metrics) => {
                    let counters = extract_counters(&metrics);
                    if let Some((prev_at, prev_counters)) = entry.prev {
                        let dt = now
                            .checked_duration_since(prev_at)
                            .unwrap_or(Duration::ZERO)
                            .as_secs_f64();
                        // saturating_sub tolerates a server restart
                        // (counters reset to zero) without producing a
                        // huge negative spike.
                        let d_ops = counters.ops.saturating_sub(prev_counters.ops);
                        entry.ops_per_sec = if dt > 0.0 { d_ops as f64 / dt } else { 0.0 };
                        entry.hit_delta = counters.hits.saturating_sub(prev_counters.hits);
                        entry.lookup_delta = d_ops.min(
                            entry.hit_delta + counters.misses.saturating_sub(prev_counters.misses),
                        );
                    }
                    entry.prev = Some((now, counters));
                    entry.last_metrics = Some(metrics);
                    entry.consecutive_failures = 0;
                }
                Err(_) => {
                    inner.scrape_failures_total += 1;
                    entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
                    entry.ops_per_sec = 0.0;
                    entry.hit_delta = 0;
                    entry.lookup_delta = 0;
                }
            }
        }

        let stale_after = self.config.stale_after;
        let capacity = self.config.server_capacity_ops;
        let mut statuses = Vec::with_capacity(inner.entries.len());
        let mut utilizations = Vec::with_capacity(inner.entries.len());
        let mut merged_sources: Vec<&[Metric]> = Vec::new();
        let mut ops_per_sec = 0.0;
        let mut hit_delta = 0;
        let mut lookup_delta = 0;
        let mut active = 0;
        let mut balance_rates = Vec::new();
        for entry in &inner.entries {
            let fresh = entry.last_metrics.is_some() && entry.consecutive_failures < stale_after;
            let is_active = entry.power_state != PowerState::Off;
            if is_active {
                active += 1;
            }
            if fresh {
                merged_sources.push(entry.last_metrics.as_deref().unwrap_or(&[]));
                ops_per_sec += entry.ops_per_sec;
                hit_delta += entry.hit_delta;
                lookup_delta += entry.lookup_delta;
                if is_active {
                    balance_rates.push(entry.ops_per_sec);
                }
            }
            utilizations.push((entry.ops_per_sec / capacity).clamp(0.0, 1.0));
            statuses.push(ServerStatus {
                addr: entry.addr,
                fresh,
                consecutive_failures: entry.consecutive_failures,
                ops_per_sec: entry.ops_per_sec,
                utilization: (entry.ops_per_sec / capacity).clamp(0.0, 1.0),
                power_state: entry.power_state,
            });
        }
        inner.meter.sample_at(now, &utilizations);

        let mean_rate = if balance_rates.is_empty() {
            0.0
        } else {
            balance_rates.iter().sum::<f64>() / balance_rates.len() as f64
        };
        let imbalance = (mean_rate > 0.0)
            .then(|| balance_rates.iter().copied().fold(0.0_f64, f64::max) / mean_rate);
        let hit_ratio =
            (lookup_delta > 0).then(|| hit_delta.min(lookup_delta) as f64 / lookup_delta as f64);

        let merged = merge_metrics(&merged_sources);
        // Union the cumulative command-latency histograms across every
        // op label, then subtract the previous tick's union: the result
        // is the latency distribution of *this window's* commands only,
        // which is what a delay-bound controller must react to.
        let mut cumulative = HistogramSnapshot::empty();
        for metric in &merged {
            if metric.name == "proteus_command_latency_seconds" {
                if let MetricValue::Histogram(h) = &metric.value {
                    cumulative.merge(h);
                }
            }
        }
        let window_latency = match &inner.prev_latency {
            Some(prev) => cumulative.saturating_delta(prev),
            None => cumulative.clone(),
        };
        inner.prev_latency = Some(cumulative);

        let snapshot = ClusterSnapshot {
            at: now,
            merged,
            ops_per_sec,
            hit_ratio,
            imbalance,
            active_servers: active,
            servers: statuses,
            window_latency,
        };
        inner.latest = Some(snapshot.clone());
        snapshot
    }

    /// A [`MetricSource`] re-exposing the merged cluster view under
    /// `proteus_cluster_*` names, for serving through a
    /// [`proteus_obs::MetricsServer`] of the aggregator's own.
    #[must_use]
    pub fn metric_source(self: &Arc<Self>) -> MetricSource {
        let observer = Arc::clone(self);
        Arc::new(move || observer.cluster_registry())
    }

    /// The aggregator's own exposition (see
    /// [`metric_source`](Self::metric_source)).
    #[must_use]
    pub fn cluster_registry(&self) -> Vec<Metric> {
        let (scrapes, failures) = self.scrape_totals();
        let meter = self.energy();
        let mut out = vec![Metric::gauge("proteus_cluster_build_info", 1)
            .with_label("version", env!("CARGO_PKG_VERSION"))];
        out.push(Metric::counter("proteus_cluster_scrapes_total", scrapes));
        out.push(Metric::counter(
            "proteus_cluster_scrape_failures_total",
            failures,
        ));
        out.push(Metric::float_gauge(
            "proteus_cluster_joules_total",
            meter.joules(),
        ));
        out.push(Metric::float_gauge(
            "proteus_cluster_oracle_joules_total",
            meter.oracle_joules(),
        ));
        out.push(Metric::float_gauge(
            "proteus_cluster_server_seconds_total",
            meter.server_seconds(),
        ));
        if let Some(w) = meter.watts() {
            out.push(Metric::float_gauge("proteus_cluster_watts", w));
        }
        if let Some(p) = meter.proportionality() {
            out.push(Metric::float_gauge("proteus_cluster_proportionality", p));
        }
        let Some(snap) = self.latest() else {
            return out;
        };
        out.push(Metric::gauge(
            "proteus_cluster_servers",
            snap.servers.len() as i64,
        ));
        out.push(Metric::gauge(
            "proteus_cluster_active_servers",
            snap.active_servers as i64,
        ));
        out.push(Metric::gauge(
            "proteus_cluster_fresh_servers",
            snap.servers.iter().filter(|s| s.fresh).count() as i64,
        ));
        out.push(Metric::float_gauge(
            "proteus_cluster_ops_per_sec",
            snap.ops_per_sec,
        ));
        if let Some(h) = snap.hit_ratio {
            out.push(Metric::float_gauge("proteus_cluster_hit_ratio", h));
        }
        if let Some(p99) = snap.window_latency.quantile(0.99) {
            out.push(Metric::float_gauge(
                "proteus_cluster_window_p99_seconds",
                p99.as_secs_f64(),
            ));
        }
        if let Some(i) = snap.imbalance {
            out.push(Metric::float_gauge("proteus_cluster_load_imbalance", i));
        }
        for status in &snap.servers {
            let addr = status.addr.to_string();
            out.push(
                Metric::gauge("proteus_cluster_server_up", i64::from(status.fresh))
                    .with_label("server", addr.clone()),
            );
            out.push(
                Metric::counter(
                    "proteus_cluster_server_consecutive_failures",
                    u64::from(status.consecutive_failures),
                )
                .with_label("server", addr.clone()),
            );
            out.push(
                Metric::float_gauge("proteus_cluster_server_ops_per_sec", status.ops_per_sec)
                    .with_label("server", addr),
            );
        }
        for metric in &snap.merged {
            // Per-server identity series do not aggregate; everything
            // else is re-exposed under the cluster namespace.
            if matches!(
                metric.name.as_str(),
                "proteus_build_info" | "proteus_uptime_seconds"
            ) {
                continue;
            }
            let renamed = metric.name.strip_prefix("proteus_").map_or_else(
                || format!("proteus_cluster_{}", metric.name),
                |rest| format!("proteus_cluster_{rest}"),
            );
            let mut m = metric.clone();
            m.name = renamed;
            out.push(m);
        }
        out
    }

    /// Starts a background loop that ticks every `config.interval`
    /// against `seeds`, returning the shared observer and its loop
    /// handle.
    #[must_use]
    pub fn spawn(config: ObserverConfig, seeds: &[SocketAddr]) -> ObserverLoop {
        let observer = Arc::new(ClusterObserver::new(config));
        for &addr in seeds {
            observer.add_server(addr);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let loop_observer = Arc::clone(&observer);
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("proteus-agg-observer".into())
            .spawn(move || {
                while !loop_stop.load(Ordering::Acquire) {
                    loop_observer.tick();
                    // Sleep in short slices so stop() returns promptly
                    // even with multi-second intervals.
                    let deadline = Instant::now() + loop_observer.config.interval;
                    while Instant::now() < deadline {
                        if loop_stop.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
            .expect("spawn observer thread");
        ObserverLoop {
            observer,
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to a running observer loop; stops the loop when dropped.
#[derive(Debug)]
pub struct ObserverLoop {
    observer: Arc<ClusterObserver>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObserverLoop {
    /// The observer the loop drives (shareable with an exposition
    /// endpoint).
    #[must_use]
    pub fn observer(&self) -> Arc<ClusterObserver> {
        Arc::clone(&self.observer)
    }

    /// Stops the loop and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObserverLoop {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Pulls the rate-bearing cumulative counters out of one server's
/// exposition. "Ops" is the request total the paper's load metric
/// tracks: lookups plus writes.
fn extract_counters(metrics: &[Metric]) -> OpCounters {
    let get = |name: &str| {
        metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    };
    let hits = get("proteus_get_hits_total");
    let misses = get("proteus_get_misses_total");
    OpCounters {
        ops: hits + misses + get("proteus_sets_total") + get("proteus_deletes_total"),
        hits,
        misses,
    }
}

/// Merges any number of expositions by `(name, labels)`: counters and
/// integer gauges sum, fractional gauges average, histograms merge.
/// Mixed-type collisions keep the first-seen value.
#[must_use]
pub fn merge_metrics(sources: &[&[Metric]]) -> Vec<Metric> {
    // Key on name + sorted labels so label order never splits a series.
    type Key = (String, Vec<(String, String)>);
    let mut merged: BTreeMap<Key, (Metric, u64)> = BTreeMap::new();
    for source in sources {
        for metric in *source {
            let mut labels = metric.labels.clone();
            labels.sort();
            let key = (metric.name.clone(), labels);
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, (metric.clone(), 1));
                }
                Some((acc, n)) => {
                    *n += 1;
                    match (&mut acc.value, &metric.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (MetricValue::FloatGauge(a), MetricValue::FloatGauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => {}
                    }
                }
            }
        }
    }
    merged
        .into_values()
        .map(|(mut metric, n)| {
            if let MetricValue::FloatGauge(v) = &mut metric.value {
                *v /= n as f64;
            }
            metric
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_obs::LatencyHistogram;

    fn snap(durations_us: &[u64]) -> proteus_obs::HistogramSnapshot {
        let h = LatencyHistogram::new();
        for &us in durations_us {
            h.record(Duration::from_micros(us));
        }
        h.snapshot()
    }

    #[test]
    fn merge_sums_counts_and_merges_histograms() {
        let a = vec![
            Metric::counter("hits", 10),
            Metric::gauge("items", 5),
            Metric::float_gauge("frag", 0.2),
            Metric::histogram("lat", snap(&[10, 20])),
        ];
        let b = vec![
            Metric::counter("hits", 32),
            Metric::gauge("items", 7),
            Metric::float_gauge("frag", 0.4),
            Metric::histogram("lat", snap(&[30, 40])),
        ];
        let merged = merge_metrics(&[&a, &b]);
        let by_name = |name: &str| merged.iter().find(|m| m.name == name).unwrap();
        assert!(matches!(by_name("hits").value, MetricValue::Counter(42)));
        assert!(matches!(by_name("items").value, MetricValue::Gauge(12)));
        match by_name("frag").value {
            MetricValue::FloatGauge(f) => assert!((f - 0.3).abs() < 1e-9, "averaged"),
            ref other => panic!("expected float gauge, got {other:?}"),
        }
        match &by_name("lat").value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count(), 4);
                let mut oracle = snap(&[10, 20]);
                oracle.merge(&snap(&[30, 40]));
                assert_eq!(h, &oracle, "merge must equal in-process merge");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_keys_on_labels_regardless_of_order() {
        let a = vec![Metric::counter("c", 1)
            .with_label("x", "1")
            .with_label("y", "2")];
        let b = vec![Metric::counter("c", 2)
            .with_label("y", "2")
            .with_label("x", "1")];
        let c = vec![Metric::counter("c", 100).with_label("x", "other")];
        let merged = merge_metrics(&[&a, &b, &c]);
        assert_eq!(merged.len(), 2, "same labels fold, different stay apart");
        let total: u64 = merged
            .iter()
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum();
        assert_eq!(total, 103);
    }

    #[test]
    fn membership_and_power_state_bookkeeping() {
        let observer = ClusterObserver::new(ObserverConfig::default());
        let a: SocketAddr = "127.0.0.1:11511".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:11512".parse().unwrap();
        observer.add_server(a);
        observer.add_server(a); // idempotent
        observer.add_server(b);
        assert_eq!(observer.servers(), vec![a, b]);
        assert_eq!(observer.energy().servers(), 2);
        assert!(observer.set_power_state(b, PowerState::Draining));
        assert!(!observer.set_power_state("127.0.0.1:1".parse().unwrap(), PowerState::Off));
        assert!(observer.remove_server(a));
        assert!(!observer.remove_server(a));
        assert_eq!(observer.servers(), vec![b]);
        assert_eq!(observer.energy().servers(), 1);
    }

    #[test]
    fn tick_against_no_servers_yields_empty_snapshot() {
        let observer = ClusterObserver::new(ObserverConfig::default());
        let snap = observer.tick();
        assert!(snap.merged.is_empty());
        assert_eq!(snap.active_servers, 0);
        assert_eq!(snap.ops_per_sec, 0.0);
        assert_eq!(snap.hit_ratio, None);
        assert_eq!(snap.imbalance, None);
        assert!(observer.latest().is_some());
    }

    #[test]
    fn windowed_latency_isolates_each_ticks_samples() {
        use proteus_obs::MetricsServer;
        let hist = std::sync::Arc::new(LatencyHistogram::new());
        let source_hist = std::sync::Arc::clone(&hist);
        let source: proteus_obs::MetricSource = std::sync::Arc::new(move || {
            vec![
                Metric::histogram("proteus_command_latency_seconds", source_hist.snapshot())
                    .with_label("op", "get"),
            ]
        });
        let server = MetricsServer::spawn("127.0.0.1:0", source).unwrap();
        let observer = ClusterObserver::new(ObserverConfig::default());
        observer.add_server(server.local_addr());

        for _ in 0..100 {
            hist.record(Duration::from_micros(500));
        }
        let first = observer.tick();
        assert_eq!(first.window_latency.count(), 100);
        let signal = first.control_signal();
        assert_eq!(signal.window_samples, 100);
        assert!(signal.p99.unwrap() < Duration::from_millis(5));

        // The next window's samples are two orders of magnitude slower;
        // a cumulative p99 would still be dominated by the fast cohort,
        // the windowed one must see only the slow samples.
        for _ in 0..50 {
            hist.record(Duration::from_millis(80));
        }
        let second = observer.tick();
        assert_eq!(second.window_latency.count(), 50);
        let p99 = second.control_signal().p99.unwrap();
        assert!(
            p99 >= Duration::from_millis(60),
            "windowed p99 {p99:?} must reflect the slow cohort"
        );

        // An idle window has no delay signal at all.
        let third = observer.tick();
        assert_eq!(third.window_latency.count(), 0);
        assert_eq!(third.control_signal().p99, None);
        drop(server);
    }

    #[test]
    fn unreachable_server_counts_failures_and_goes_stale() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead = listener.local_addr().unwrap();
        drop(listener);
        let config = ObserverConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(200),
            stale_after: 2,
            ..ObserverConfig::default()
        };
        let observer = ClusterObserver::new(config);
        observer.add_server(dead);
        for expected_failures in 1..=3 {
            let snap = observer.tick();
            let status = &snap.servers[0];
            assert_eq!(status.consecutive_failures, expected_failures);
            assert!(!status.fresh, "no successful scrape ever");
        }
        let (scrapes, failures) = observer.scrape_totals();
        assert_eq!(scrapes, 3);
        assert_eq!(failures, 3);
    }
}
