//! Bounded HTTP/1.0 scrape client and metrics-wire decoding.
//!
//! The client is deliberately tiny: one GET, `Connection: close`,
//! read-to-EOF with a hard wall-clock deadline. A slow or blackholed
//! server must never stall an aggregation tick past
//! `connect_timeout + read_timeout`, because ticks over N servers run
//! concurrently but the tick barrier waits for the slowest scrape.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use proteus_obs::{HistogramSnapshot, Metric, MetricValue};

use crate::json::{self, Json};

/// Upper bound on a scrape body. A full server exposition is a few KiB;
/// 4 MiB leaves three orders of magnitude of headroom while keeping a
/// misbehaving endpoint from exhausting aggregator memory.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Why a scrape failed.
#[derive(Debug)]
pub enum ScrapeError {
    /// Connect, read, or write failed (includes timeouts).
    Io(std::io::Error),
    /// The overall deadline elapsed before the response completed.
    DeadlineExceeded,
    /// The server answered with a non-200 status line.
    HttpStatus(String),
    /// The response had no header/body separator.
    MalformedResponse,
    /// The body exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The body was not valid metrics JSON.
    Parse(String),
}

impl std::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeError::Io(e) => write!(f, "scrape i/o error: {e}"),
            ScrapeError::DeadlineExceeded => write!(f, "scrape deadline exceeded"),
            ScrapeError::HttpStatus(line) => write!(f, "scrape got non-200 status: {line}"),
            ScrapeError::MalformedResponse => write!(f, "scrape response had no header terminator"),
            ScrapeError::BodyTooLarge => write!(f, "scrape body exceeded size cap"),
            ScrapeError::Parse(msg) => write!(f, "scrape body did not parse: {msg}"),
        }
    }
}

impl std::error::Error for ScrapeError {}

impl From<std::io::Error> for ScrapeError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ScrapeError::DeadlineExceeded
        } else {
            ScrapeError::Io(e)
        }
    }
}

/// Issues `GET <path>` against `addr` and returns the response body.
///
/// `connect_timeout` bounds the TCP handshake; `read_timeout` is the
/// overall response deadline — each socket read gets only the time
/// remaining, so a server that trickles one byte per second cannot
/// extend the scrape indefinitely.
///
/// # Errors
///
/// Returns a [`ScrapeError`] on connect/read failure, deadline
/// exhaustion, non-200 status, or an oversized/malformed response.
pub fn http_get(
    addr: SocketAddr,
    path: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<String, ScrapeError> {
    let request = build_request(path);
    let mut raw = Vec::new();
    let body = http_get_into(addr, &request, connect_timeout, read_timeout, &mut raw)?;
    Ok(String::from_utf8_lossy(&raw[body..]).into_owned())
}

/// Renders the request bytes [`http_get_into`] sends for `path`.
/// Build once per endpoint and reuse across scrapes — the request
/// never changes, so re-rendering it every tick is pure allocation
/// churn.
#[must_use]
pub fn build_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.0\r\nHost: proteus\r\nConnection: close\r\n\r\n").into_bytes()
}

/// Allocation-reusing core of [`http_get`]: sends prebuilt `request`
/// bytes, reads the full response into `raw` (cleared first, capacity
/// kept), and returns the byte offset where the body starts. On the
/// steady-state path — same endpoint, similar body size every tick —
/// this performs **zero** heap allocations once `raw` has grown to the
/// response size.
///
/// # Errors
///
/// Returns a [`ScrapeError`] on connect/read failure, deadline
/// exhaustion, non-200 status, or an oversized/malformed response.
/// `raw` holds whatever was read so far; its capacity survives either
/// way.
pub fn http_get_into(
    addr: SocketAddr,
    request: &[u8],
    connect_timeout: Duration,
    read_timeout: Duration,
    raw: &mut Vec<u8>,
) -> Result<usize, ScrapeError> {
    raw.clear();
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    let deadline = Instant::now() + read_timeout;
    stream.set_write_timeout(Some(read_timeout)).ok();
    stream.write_all(request)?;

    let mut buf = [0u8; 16 * 1024];
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(ScrapeError::DeadlineExceeded)?;
        stream.set_read_timeout(Some(remaining)).ok();
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if raw.len() > MAX_BODY_BYTES {
                    return Err(ScrapeError::BodyTooLarge);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }

    // Header/status checks run on the raw bytes: no lossy UTF-8 copy
    // of a multi-KiB body just to find "\r\n\r\n".
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(ScrapeError::MalformedResponse)?;
    let status_line = &raw[..raw.iter().position(|&b| b == b'\r').unwrap_or(header_end)];
    if !status_line.windows(5).any(|w| w == b" 200 ") {
        return Err(ScrapeError::HttpStatus(
            String::from_utf8_lossy(status_line).into_owned(),
        ));
    }
    Ok(header_end + 4)
}

/// Decodes a `/metrics.json` body back into [`Metric`] samples.
///
/// Histograms are rebuilt losslessly from their sparse buckets via
/// [`HistogramSnapshot::from_sparse`], so merging decoded snapshots
/// across servers is bit-identical to merging in-process. Entries that
/// do not decode (unknown type, corrupt buckets) are skipped rather
/// than failing the whole scrape — one bad sample should not blind the
/// aggregator to a server's remaining series.
///
/// # Errors
///
/// Returns [`ScrapeError::Parse`] when the body is not a JSON array of
/// objects at all.
pub fn parse_metrics(body: &str) -> Result<Vec<Metric>, ScrapeError> {
    let doc = json::parse(body).map_err(|e| ScrapeError::Parse(e.to_string()))?;
    let items = doc
        .as_array()
        .ok_or_else(|| ScrapeError::Parse("top level is not an array".into()))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        if let Some(metric) = decode_metric(item) {
            out.push(metric);
        }
    }
    Ok(out)
}

fn decode_metric(item: &Json) -> Option<Metric> {
    let name = item.get("name")?.as_str()?.to_string();
    let mut labels = Vec::new();
    if let Some(Json::Object(map)) = item.get("labels") {
        for (k, v) in map {
            labels.push((k.clone(), v.as_str()?.to_string()));
        }
    }
    let value = match item.get("type")?.as_str()? {
        "counter" => MetricValue::Counter(item.get("value")?.as_u64()?),
        // Both integer and fractional gauges expose `"type":"gauge"`;
        // a fractional rendering (`0.250000`) decodes as Float.
        "gauge" => match item.get("value")? {
            Json::Int(_) => MetricValue::Gauge(item.get("value")?.as_i64()?),
            Json::Float(f) => MetricValue::FloatGauge(*f),
            _ => return None,
        },
        "histogram" => MetricValue::Histogram(decode_histogram(item)?),
        _ => return None,
    };
    Some(Metric {
        name,
        labels,
        value,
    })
}

fn decode_histogram(item: &Json) -> Option<HistogramSnapshot> {
    let sum_ns = item.get("sum_ns")?.as_u128()?;
    let min_ns = item.get("min_ns")?.as_u64()?;
    let max_ns = item.get("max_ns")?.as_u64()?;
    let mut pairs = Vec::new();
    for entry in item.get("buckets")?.as_array()? {
        let pair = entry.as_array()?;
        if pair.len() != 2 {
            return None;
        }
        let idx = usize::try_from(pair[0].as_u64()?).ok()?;
        pairs.push((idx, pair[1].as_u64()?));
    }
    HistogramSnapshot::from_sparse(&pairs, sum_ns, min_ns, max_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_obs::{to_json, LatencyHistogram};

    #[test]
    fn decodes_every_metric_kind_round_trip() {
        let hist = LatencyHistogram::new();
        for us in [3_u64, 90, 90, 4000] {
            hist.record(Duration::from_micros(us));
        }
        let snap = hist.snapshot();
        let body = to_json(&[
            Metric::counter("hits", 41).with_label("op", "get"),
            Metric::gauge("conns", -2),
            Metric::float_gauge("frag", 0.125),
            Metric::histogram("lat", snap.clone()),
        ]);
        let decoded = parse_metrics(&body).unwrap();
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded[0].name, "hits");
        assert_eq!(
            decoded[0].labels,
            vec![("op".to_string(), "get".to_string())]
        );
        assert!(matches!(decoded[0].value, MetricValue::Counter(41)));
        assert!(matches!(decoded[1].value, MetricValue::Gauge(-2)));
        match decoded[2].value {
            MetricValue::FloatGauge(f) => assert!((f - 0.125).abs() < 1e-9),
            ref other => panic!("expected float gauge, got {other:?}"),
        }
        match &decoded[3].value {
            MetricValue::Histogram(rebuilt) => assert_eq!(rebuilt, &snap, "lossless transport"),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn skips_undecodable_entries_without_failing() {
        let body = r#"[
            {"name":"ok","labels":{},"type":"counter","value":1},
            {"name":"weird","labels":{},"type":"summary","value":2},
            {"name":"bad_hist","labels":{},"type":"histogram","count":1,"sum_ns":5,"min_ns":9,"max_ns":2,"quantiles_ns":{},"buckets":[[1,1]]}
        ]"#;
        let decoded = parse_metrics(body).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].name, "ok");
    }

    #[test]
    fn rejects_non_array_bodies() {
        assert!(matches!(
            parse_metrics("{\"oops\":1}"),
            Err(ScrapeError::Parse(_))
        ));
        assert!(matches!(
            parse_metrics("not json"),
            Err(ScrapeError::Parse(_))
        ));
    }

    #[test]
    fn http_get_times_out_against_a_silent_server() {
        // A bound listener that never accepts: connect succeeds (the
        // backlog takes it) but no bytes ever arrive.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let started = Instant::now();
        let result = http_get(
            addr,
            "/metrics.json",
            Duration::from_millis(500),
            Duration::from_millis(200),
        );
        assert!(matches!(result, Err(ScrapeError::DeadlineExceeded)));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline must bound the scrape"
        );
        drop(listener);
    }

    #[test]
    fn http_get_fails_fast_on_closed_port() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let result = http_get(
            addr,
            "/metrics.json",
            Duration::from_millis(500),
            Duration::from_millis(500),
        );
        assert!(result.is_err());
    }
}
