//! A minimal recursive-descent JSON parser for the metrics wire.
//!
//! The build environment has no serde, and the aggregator only ever
//! parses one producer's output — `proteus_obs::to_json` — so a small
//! hand-rolled parser is the honest dependency-free choice. Integers
//! are kept as `i128` (not folded into `f64`), because histogram
//! `sum_ns` values exceed 2^53 on long runs and the merge identity
//! (satellite: aggregator merge == in-process merge, *exactly*) would
//! silently break at the first rounding.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. BTreeMap keeps iteration deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `u128`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Int(i) => u128::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen; exact only below 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup, if the value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Why a parse failed. The position is a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth cap: the metrics exposition is at most 4 levels deep,
/// so anything past this is garbage (or an attack on the stack).
const MAX_DEPTH: usize = 32;

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace aside).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never occur in the
                            // metrics exposition (names and labels are
                            // ASCII); reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str and the cursor only ever advances by whole
                    // characters or ASCII bytes, so `pos` is always on
                    // a character boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse()
                .map(Json::Float)
                .map_err(|_| self.err("bad float"))
        } else {
            text.parse()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = parse(r#"{"a":[1,-2,3.5],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[1], Json::Int(-2));
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2],
            Json::Float(3.5)
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
    }

    #[test]
    fn big_integers_stay_exact() {
        // 2^64 + 5 would round in an f64 and overflow a u64; it must
        // survive intact as a u128 (histogram sums are u128 on the wire).
        let doc = parse("{\"sum_ns\":18446744073709551621}").unwrap();
        assert_eq!(
            doc.get("sum_ns").unwrap().as_u128(),
            Some(18_446_744_073_709_551_621)
        );
        assert_eq!(doc.get("sum_ns").unwrap().as_u64(), None, "out of u64");
    }

    #[test]
    fn rejects_garbage_with_positions() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse(&deep).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn round_trips_the_obs_exposition() {
        use proteus_obs::{to_json, Metric};
        let json = to_json(&[
            Metric::counter("c", 7).with_label("op", "get"),
            Metric::float_gauge("g", 0.25),
        ]);
        let doc = parse(&json).unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items[0].get("name").unwrap().as_str(), Some("c"));
        assert_eq!(
            items[0].get("labels").unwrap().get("op").unwrap().as_str(),
            Some("get")
        );
        assert_eq!(items[0].get("value").unwrap().as_u64(), Some(7));
        assert_eq!(items[1].get("value").unwrap().as_f64(), Some(0.25));
    }
}
