//! The cluster observability aggregator.
//!
//! ```text
//! proteus-cluster-obs --servers ADDR[,ADDR...] [--bind ADDR]
//!                     [--interval-ms N] [--connect-timeout-ms N]
//!                     [--read-timeout-ms N] [--stale-after N]
//!                     [--capacity-ops N]
//! ```
//!
//! Scrapes every listed server's `/metrics.json` endpoint on the
//! interval, merges the expositions into cluster-wide series (true
//! merged-histogram percentiles, aggregate ops/s, hit ratio, load
//! imbalance, live energy accounting), and re-exposes the result under
//! `proteus_cluster_*` names on its own HTTP listener: `GET /metrics`
//! for Prometheus text, `GET /metrics.json` for JSON.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use proteus_agg::{ClusterObserver, ObserverConfig};
use proteus_obs::MetricsServer;

struct Options {
    servers: Vec<SocketAddr>,
    bind: String,
    config: ObserverConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        servers: Vec::new(),
        bind: "127.0.0.1:9901".to_string(),
        config: ObserverConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let millis = |name: &str, v: String| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| format!("{name} must be a number of milliseconds"))
        };
        match flag.as_str() {
            "--servers" => {
                for part in value("--servers")?.split(',') {
                    let addr = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad server address `{part}`"))?;
                    opts.servers.push(addr);
                }
            }
            "--bind" => opts.bind = value("--bind")?,
            "--interval-ms" => {
                opts.config.interval = millis("--interval-ms", value("--interval-ms")?)?;
            }
            "--connect-timeout-ms" => {
                opts.config.connect_timeout =
                    millis("--connect-timeout-ms", value("--connect-timeout-ms")?)?;
            }
            "--read-timeout-ms" => {
                opts.config.read_timeout =
                    millis("--read-timeout-ms", value("--read-timeout-ms")?)?;
            }
            "--stale-after" => {
                opts.config.stale_after = value("--stale-after")?
                    .parse()
                    .map_err(|_| "--stale-after must be a number".to_string())?;
            }
            "--capacity-ops" => {
                opts.config.server_capacity_ops = value("--capacity-ops")?
                    .parse()
                    .map_err(|_| "--capacity-ops must be a number".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: proteus-cluster-obs --servers ADDR[,ADDR...] \
                            [--bind ADDR] [--interval-ms N] \
                            [--connect-timeout-ms N] [--read-timeout-ms N] \
                            [--stale-after N] [--capacity-ops N]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.servers.is_empty() {
        return Err("--servers requires at least one metrics endpoint".to_string());
    }
    if opts.config.server_capacity_ops <= 0.0 {
        return Err("--capacity-ops must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let observer_loop = ClusterObserver::spawn(opts.config, &opts.servers);
    let observer = observer_loop.observer();
    // The aggregator's own exposition: one scrape answers for the
    // whole cluster.
    let _metrics = match MetricsServer::spawn(&opts.bind, observer.metric_source()) {
        Ok(m) => {
            println!(
                "proteus-cluster-obs aggregating {} server(s), serving http://{}/metrics \
                 (Prometheus) and /metrics.json",
                opts.servers.len(),
                m.local_addr()
            );
            m
        }
        Err(e) => {
            eprintln!("failed to bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    println!("press Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}
