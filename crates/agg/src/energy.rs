//! Wall-clock energy accounting for a live cluster.
//!
//! [`proteus_core::EnergyMeter`] integrates power over simulated time;
//! this module ports the same left-Riemann PDU-style accounting to
//! `std::time::Instant` so the aggregator can meter a real running
//! cluster. Alongside the measured draw it integrates an *oracle*
//! cluster — the fewest servers that could carry the observed demand,
//! perfectly balanced, everything else powered off — giving the
//! power-proportionality ratio the paper normalizes against.

use std::time::{Duration, Instant};

use proteus_core::{PowerModel, PowerState};

/// One integration step's worth of per-server observations.
#[derive(Debug, Clone, Copy)]
struct Reading {
    at: Instant,
    cluster_w: f64,
    oracle_w: f64,
    active: usize,
}

/// Integrates modeled per-server watts into cluster joules over wall
/// time, with a parallel oracle integral for proportionality.
///
/// # Example
///
/// ```
/// use std::time::{Duration, Instant};
/// use proteus_agg::WallEnergyMeter;
/// use proteus_core::{PowerModel, PowerState};
///
/// let mut meter = WallEnergyMeter::new(PowerModel::default(), 2, 10_000.0);
/// let t0 = Instant::now();
/// meter.sample_at(t0, &[0.5, 0.5]);
/// meter.sample_at(t0 + Duration::from_secs(10), &[0.5, 0.5]);
/// // Two servers at 50%: 2 × (60 + 35·0.5) W for 10 s.
/// assert!((meter.joules() - 1550.0).abs() < 1e-6);
/// assert!(meter.proportionality().unwrap() > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct WallEnergyMeter {
    model: PowerModel,
    capacity_ops: f64,
    states: Vec<PowerState>,
    joules: f64,
    oracle_joules: f64,
    server_seconds: f64,
    start: Option<Instant>,
    last: Option<Reading>,
}

impl WallEnergyMeter {
    /// A meter over `servers` servers (all initially [`PowerState::On`])
    /// whose individual serving capacity is `capacity_ops` ops/s — the
    /// denominator the oracle uses to decide how few servers the
    /// observed demand actually needs.
    #[must_use]
    pub fn new(model: PowerModel, servers: usize, capacity_ops: f64) -> Self {
        WallEnergyMeter {
            model,
            capacity_ops: capacity_ops.max(f64::MIN_POSITIVE),
            states: vec![PowerState::On; servers],
            joules: 0.0,
            oracle_joules: 0.0,
            server_seconds: 0.0,
            start: None,
            last: None,
        }
    }

    /// Number of servers being metered.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.states.len()
    }

    /// Adds a server in `state` to the metered set. Like
    /// [`set_state`](Self::set_state), it participates from the next
    /// sample; the in-flight interval keeps the draw it started with.
    pub fn push_server(&mut self, state: PowerState) {
        self.states.push(state);
    }

    /// Removes server `idx` from the metered set (energy it already
    /// burned stays integrated). Later servers shift down by one.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_server(&mut self, idx: usize) {
        self.states.remove(idx);
    }

    /// Sets server `idx`'s power state. Takes effect from the *next*
    /// sample: the in-flight interval still integrates at the draw
    /// observed when it began (left Riemann), exactly like the
    /// sim-time meter.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_state(&mut self, idx: usize, state: PowerState) {
        self.states[idx] = state;
    }

    /// Current power state of server `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn state(&self, idx: usize) -> PowerState {
        self.states[idx]
    }

    /// Records a sample now. `utilizations[i]` is server `i`'s observed
    /// utilization in `[0, 1]`; missing entries read as idle.
    pub fn sample(&mut self, utilizations: &[f64]) {
        self.sample_at(Instant::now(), utilizations);
    }

    /// [`sample`](Self::sample) at an explicit instant — the seam that
    /// makes energy tests deterministic (`t0 + Duration::from_secs(n)`
    /// arithmetic instead of real sleeps). Out-of-order instants are
    /// treated as zero-length intervals rather than panicking, since
    /// `Instant` is monotonic in production and only tests synthesize
    /// timelines.
    pub fn sample_at(&mut self, now: Instant, utilizations: &[f64]) {
        if let Some(prev) = self.last {
            let dt = now
                .checked_duration_since(prev.at)
                .unwrap_or(Duration::ZERO)
                .as_secs_f64();
            self.joules += prev.cluster_w * dt;
            self.oracle_joules += prev.oracle_w * dt;
            self.server_seconds += prev.active as f64 * dt;
        }
        self.start.get_or_insert(now);

        let mut cluster_w = 0.0;
        let mut demand_ops = 0.0;
        let mut active = 0;
        for (i, &state) in self.states.iter().enumerate() {
            let u = utilizations.get(i).copied().unwrap_or(0.0);
            cluster_w += self.model.draw(state, u);
            if state != PowerState::Off {
                active += 1;
            }
            if matches!(state, PowerState::On | PowerState::Draining) {
                demand_ops += u.clamp(0.0, 1.0) * self.capacity_ops;
            }
        }
        self.last = Some(Reading {
            at: now,
            cluster_w,
            oracle_w: self.oracle_watts(demand_ops),
            active,
        });
    }

    /// The oracle cluster's draw for `demand_ops` total ops/s: the
    /// fewest servers that can carry it, each at the balanced
    /// utilization, every other server off.
    fn oracle_watts(&self, demand_ops: f64) -> f64 {
        let n = self.states.len();
        if n == 0 {
            return 0.0;
        }
        let needed = if demand_ops <= 0.0 {
            0
        } else {
            ((demand_ops / self.capacity_ops).ceil() as usize).clamp(1, n)
        };
        let balanced_u = if needed == 0 {
            0.0
        } else {
            demand_ops / (needed as f64 * self.capacity_ops)
        };
        needed as f64 * self.model.draw(PowerState::On, balanced_u)
            + (n - needed) as f64 * self.model.draw(PowerState::Off, 0.0)
    }

    /// Accumulated measured energy in joules.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Accumulated oracle (ideal power-proportional) energy in joules.
    #[must_use]
    pub fn oracle_joules(&self) -> f64 {
        self.oracle_joules
    }

    /// Power-proportionality ratio: measured joules ÷ oracle joules.
    /// `1.0` is perfect proportionality; commodity clusters with big
    /// idle floors land well above it. `None` before any energy has
    /// accumulated.
    #[must_use]
    pub fn proportionality(&self) -> Option<f64> {
        (self.oracle_joules > 0.0).then(|| self.joules / self.oracle_joules)
    }

    /// Accumulated non-off server-seconds (the paper's provisioning
    /// cost unit: how much machine-time the cluster actually burned).
    #[must_use]
    pub fn server_seconds(&self) -> f64 {
        self.server_seconds
    }

    /// The most recent instantaneous cluster draw in watts, or `None`
    /// before the first sample.
    #[must_use]
    pub fn watts(&self) -> Option<f64> {
        self.last.map(|r| r.cluster_w)
    }

    /// Mean measured watts over the sampled span, or `None` before two
    /// samples.
    #[must_use]
    pub fn mean_watts(&self) -> Option<f64> {
        let span = self.elapsed()?.as_secs_f64();
        (span > 0.0).then(|| self.joules / span)
    }

    /// Wall time between the first and latest sample.
    #[must_use]
    pub fn elapsed(&self) -> Option<Duration> {
        let start = self.start?;
        self.last?.at.checked_duration_since(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::default()
    }

    #[test]
    fn integrates_left_riemann_over_wall_time() {
        let mut m = WallEnergyMeter::new(model(), 1, 1000.0);
        let t0 = Instant::now();
        m.sample_at(t0, &[1.0]); // 95 W
        m.sample_at(t0 + Duration::from_secs(10), &[0.0]); // was 95 W for 10 s
        m.sample_at(t0 + Duration::from_secs(30), &[0.0]); // was 60 W for 20 s
        assert!((m.joules() - (950.0 + 1200.0)).abs() < 1e-6);
        assert!((m.mean_watts().unwrap() - 2150.0 / 30.0).abs() < 1e-6);
        assert_eq!(m.elapsed(), Some(Duration::from_secs(30)));
        assert!((m.server_seconds() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn powering_a_server_off_cuts_energy_versus_all_on() {
        let run = |power_down: bool| {
            let mut m = WallEnergyMeter::new(model(), 4, 1000.0);
            let t0 = Instant::now();
            m.sample_at(t0, &[0.2; 4]);
            m.sample_at(t0 + Duration::from_secs(60), &[0.2; 4]);
            if power_down {
                m.set_state(3, PowerState::Off);
            }
            m.sample_at(t0 + Duration::from_secs(61), &[0.25, 0.25, 0.25, 0.0]);
            m.sample_at(t0 + Duration::from_secs(121), &[0.25, 0.25, 0.25, 0.0]);
            m
        };
        let baseline = run(false);
        let scaled = run(true);
        assert!(
            scaled.joules() < baseline.joules(),
            "n-1 window must cost less: {} vs {}",
            scaled.joules(),
            baseline.joules()
        );
        assert!(scaled.server_seconds() < baseline.server_seconds());
    }

    #[test]
    fn oracle_uses_fewest_balanced_servers() {
        // 4 servers at 30% of 1000 ops each → 1200 ops demand → the
        // oracle needs 2 servers at 60%, the other two off.
        let mut m = WallEnergyMeter::new(model(), 4, 1000.0);
        let t0 = Instant::now();
        m.sample_at(t0, &[0.3; 4]);
        m.sample_at(t0 + Duration::from_secs(10), &[0.3; 4]);
        let expected_oracle_w =
            2.0 * model().draw(PowerState::On, 0.6) + 2.0 * model().draw(PowerState::Off, 0.0);
        assert!((m.oracle_joules() - expected_oracle_w * 10.0).abs() < 1e-6);
        let ratio = m.proportionality().unwrap();
        let measured_w = 4.0 * model().draw(PowerState::On, 0.3);
        assert!((ratio - measured_w / expected_oracle_w).abs() < 1e-9);
        assert!(
            ratio > 1.0,
            "idle floors make real clusters non-proportional"
        );
    }

    #[test]
    fn zero_demand_oracle_is_all_off() {
        let mut m = WallEnergyMeter::new(model(), 3, 1000.0);
        let t0 = Instant::now();
        m.sample_at(t0, &[0.0; 3]);
        m.sample_at(t0 + Duration::from_secs(5), &[0.0; 3]);
        assert!(
            (m.oracle_joules() - 3.0 * 5.0 * 5.0).abs() < 1e-6,
            "3 × off_w × 5 s"
        );
    }

    #[test]
    fn booting_draws_boot_watts_and_counts_as_active() {
        let mut m = WallEnergyMeter::new(model(), 2, 1000.0);
        m.set_state(0, PowerState::Booting);
        m.set_state(1, PowerState::Off);
        let t0 = Instant::now();
        m.sample_at(t0, &[1.0, 1.0]); // boot ignores utilization
        m.sample_at(t0 + Duration::from_secs(10), &[0.0, 0.0]);
        assert!((m.joules() - (80.0 + 5.0) * 10.0).abs() < 1e-6);
        assert!(
            (m.server_seconds() - 10.0).abs() < 1e-6,
            "only the booting one"
        );
    }

    #[test]
    fn out_of_order_instants_do_not_panic_or_subtract() {
        let mut m = WallEnergyMeter::new(model(), 1, 1000.0);
        let t0 = Instant::now();
        m.sample_at(t0 + Duration::from_secs(10), &[0.0]);
        m.sample_at(t0, &[0.0]); // earlier: zero-length interval
        assert_eq!(m.joules(), 0.0);
    }

    #[test]
    fn empty_meter_reports_none() {
        let m = WallEnergyMeter::new(model(), 0, 1000.0);
        assert_eq!(m.watts(), None);
        assert_eq!(m.mean_watts(), None);
        assert_eq!(m.proportionality(), None);
        assert_eq!(m.elapsed(), None);
    }
}
