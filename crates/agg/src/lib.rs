//! Cluster-wide observability for the Proteus cache tier.
//!
//! `proteus-obs` gives each server its own metrics endpoint; this crate
//! is the plane above it — the piece the paper's evaluation implies but
//! a single-server exporter cannot provide:
//!
//! - [`ClusterObserver`] — concurrently scrapes every server's
//!   `/metrics.json` on an interval (each scrape deadline-bounded,
//!   servers free to join and leave mid-run), merges per-server
//!   histogram snapshots into *true* cluster-wide p50/p99/p999 via the
//!   mergeable-snapshot machinery (not averages of per-server
//!   percentiles), and derives the health series the paper watches:
//!   aggregate ops/s, hit ratio, per-server load imbalance (max/mean),
//!   active-server count.
//! - [`WallEnergyMeter`] — the sim-time
//!   [`EnergyMeter`](proteus_core::EnergyMeter) ported to wall-clock
//!   `Instant`s: integrates modeled per-server watts from observed
//!   utilization and power state into live joules and server-seconds,
//!   with a parallel oracle integral for the power-proportionality
//!   ratio.
//! - Re-exposition — the aggregator serves its own merged
//!   `proteus_cluster_*` endpoint through a
//!   [`proteus_obs::MetricsServer`], so one scrape answers for the
//!   whole cluster; the `proteus-cluster-obs` binary runs it against a
//!   live deployment.
//!
//! Supporting modules: a dependency-free JSON decoder ([`json`]) that
//! keeps 128-bit histogram sums exact, and the bounded scrape client
//! ([`scrape`]) whose hard per-scrape deadline keeps one blackholed
//! server from stalling a tick.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod scrape;

mod energy;
mod observer;

pub use energy::WallEnergyMeter;
pub use observer::{
    merge_metrics, ClusterObserver, ClusterSnapshot, ControlSignal, ObserverConfig, ObserverLoop,
    ServerStatus, METRICS_PATH,
};
pub use scrape::{build_request, http_get, http_get_into, parse_metrics, ScrapeError};
