//! The shared, immutable value buffer handed across the cache tier.

use std::fmt;
use std::sync::Arc;

/// A reference-counted, immutable view of value bytes.
///
/// Until the slab store existed this was a plain `Arc<[u8]>`: one
/// heap allocation per value, shared by refcount. Slab storage packs
/// many values into one 1 MiB page, so a value is now a *window* into
/// a shared backing buffer: the buffer is either a whole-value heap
/// allocation (heap backend, `off == 0`, `len == buf.len()`) or a
/// refcounted slab page (slab backend, `off`/`len` select the value's
/// chunk region). Either way the zero-copy contract of DESIGN.md §9 is
/// unchanged: cloning is a refcount bump, a cache hit never copies
/// bytes, and the bytes live for as long as any holder keeps the view.
///
/// # Example
///
/// ```
/// use proteus_cache::SharedBytes;
///
/// let a = SharedBytes::from(vec![1u8, 2, 3]);
/// let b = SharedBytes::clone(&a);
/// assert_eq!(&a[..], &[1, 2, 3]);
/// assert!(SharedBytes::ptr_eq(&a, &b), "clones alias one buffer");
/// ```
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<[u8]>,
    off: u32,
    len: u32,
}

impl SharedBytes {
    /// A view of `buf[off..off + len]`. Used by the slab store to hand
    /// out page-backed values; plain conversions go through `From`.
    ///
    /// # Panics
    ///
    /// Panics if the window falls outside `buf` or exceeds 4 GiB
    /// (values on the wire are capped far below either limit).
    #[must_use]
    pub fn view(buf: Arc<[u8]>, off: usize, len: usize) -> SharedBytes {
        assert!(off.checked_add(len).is_some_and(|end| end <= buf.len()));
        SharedBytes {
            buf,
            off: u32::try_from(off).expect("buffer offset exceeds u32"),
            len: u32::try_from(len).expect("value length exceeds u32"),
        }
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off as usize..self.off as usize + self.len as usize]
    }

    /// Length of the view in bytes.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether two views alias the same bytes of the same backing
    /// buffer — the zero-copy assertion (`Arc::ptr_eq` before the
    /// window existed). Two hits on one cached value are `ptr_eq`;
    /// equal bytes in different buffers are not.
    #[must_use]
    pub fn ptr_eq(a: &SharedBytes, b: &SharedBytes) -> bool {
        Arc::ptr_eq(&a.buf, &b.buf) && a.off == b.off && a.len == b.len
    }

    /// Number of live references to the backing buffer (diagnostics;
    /// the slab store uses this to prove pages quiesced).
    #[must_use]
    pub fn ref_count(this: &SharedBytes) -> usize {
        Arc::strong_count(&this.buf)
    }
}

impl std::ops::Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        SharedBytes::from(&[][..])
    }
}

impl From<Arc<[u8]>> for SharedBytes {
    fn from(buf: Arc<[u8]>) -> Self {
        let len = u32::try_from(buf.len()).expect("value length exceeds u32");
        SharedBytes { buf, off: 0, len }
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        SharedBytes::from(Arc::<[u8]>::from(v))
    }
}

impl From<Box<[u8]>> for SharedBytes {
    fn from(v: Box<[u8]>) -> Self {
        SharedBytes::from(Arc::<[u8]>::from(v))
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(v: &[u8]) -> Self {
        SharedBytes::from(Arc::<[u8]>::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for SharedBytes {
    fn from(v: &[u8; N]) -> Self {
        SharedBytes::from(&v[..])
    }
}

/// Content equality: two views are equal when their bytes are equal,
/// matching the old `Arc<[u8]>` semantics. Identity is [`ptr_eq`].
///
/// [`ptr_eq`]: SharedBytes::ptr_eq
impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl std::hash::Hash for SharedBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_views_roundtrip() {
        let whole = SharedBytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&whole[..], &[1, 2, 3, 4]);
        assert_eq!(whole.len(), 4);
        assert!(!whole.is_empty());

        let page: Arc<[u8]> = vec![0u8, 9, 9, 9, 0, 0].into();
        let window = SharedBytes::view(Arc::clone(&page), 1, 3);
        assert_eq!(&window[..], &[9, 9, 9]);
        assert_eq!(window.len(), 3);

        let empty = SharedBytes::default();
        assert!(empty.is_empty());
    }

    #[test]
    fn clone_is_aliasing_not_copying() {
        let a = SharedBytes::from(&b"shared"[..]);
        let b = SharedBytes::clone(&a);
        assert!(SharedBytes::ptr_eq(&a, &b));
        assert_eq!(SharedBytes::ref_count(&a), 2);
        // Equal bytes in a different buffer are == but not ptr_eq.
        let c = SharedBytes::from(&b"shared"[..]);
        assert_eq!(a, c);
        assert!(!SharedBytes::ptr_eq(&a, &c));
    }

    #[test]
    fn distinct_windows_of_one_page_are_not_ptr_eq() {
        let page: Arc<[u8]> = vec![7u8; 64].into();
        let a = SharedBytes::view(Arc::clone(&page), 0, 8);
        let b = SharedBytes::view(Arc::clone(&page), 8, 8);
        let a2 = SharedBytes::view(Arc::clone(&page), 0, 8);
        assert!(!SharedBytes::ptr_eq(&a, &b));
        assert!(SharedBytes::ptr_eq(&a, &a2));
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn out_of_bounds_view_panics() {
        let page: Arc<[u8]> = vec![0u8; 8].into();
        let _ = SharedBytes::view(page, 4, 8);
    }
}
