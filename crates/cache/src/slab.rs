//! Slab/size-class storage: memcached-style page allocator for items.
//!
//! The heap backend allocates one buffer per value. At 10M+ small
//! resident items that means 10M allocator headers, unpredictable
//! fragmentation, and an allocator-bound eviction path. The slab store
//! instead carves fixed-size **pages** (1 MiB by default) into chunks
//! of geometric size classes (~1.25 growth factor) and places each
//! item's `[key][value]` bytes into the smallest chunk that fits.
//! Worst-case internal waste is bounded by the growth factor; pages
//! are the only allocation unit the system allocator ever sees.
//!
//! # Safety model (no `unsafe`)
//!
//! Pages are `Arc<[u8]>`. A cache hit hands out a
//! [`SharedBytes`](crate::SharedBytes) window into the page — a
//! refcount bump, no copy — and that window may outlive the item (a
//! response still in flight after an eviction). The store therefore
//! **never** writes to a page that has outstanding views: every write
//! goes through [`Arc::get_mut`], which succeeds only while the store
//! holds the sole reference. A page with in-flight views simply cannot
//! accept new items for that moment; the write moves to another page
//! of the class (or a fresh one), and the busy page becomes writable
//! again the instant the last view drops. This trades a little
//! placement flexibility for memory safety that the compiler checks.
//!
//! # Page reassignment
//!
//! Pages belong to a class only while they hold live items. A page
//! whose last item is freed is remembered; when some other class is
//! starved (no free chunk, page budget exhausted), the store reclaims
//! an empty page from a rich class and reassigns it — the
//! memcached "slab rebalance" move, done eagerly at the moment of
//! starvation.

use std::sync::Arc;

use crate::SharedBytes;

/// Smallest chunk size. Items smaller than this still occupy one
/// minimum chunk (48-byte memcached floor rounded to 64).
const MIN_CHUNK: u32 = 64;

/// Size-class growth factor: 1.25, expressed as a ratio.
const GROWTH_NUM: u64 = 5;
const GROWTH_DEN: u64 = 4;

/// How many candidate pages a single insert probes before concluding
/// the class needs a fresh page. Bounds worst-case insert cost when
/// many pages of a class are pinned by in-flight views.
const WRITE_PROBE_LIMIT: usize = 8;

/// Where an item's bytes live: size class, page within the class, and
/// chunk within the page. The item's key/value lengths are stored by
/// the owner (the engine slot), not in the page, so chunks carry no
/// headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLoc {
    pub(crate) class: u16,
    pub(crate) page: u32,
    pub(crate) chunk: u32,
}

/// Why an insert could not be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabError {
    /// The item exceeds the largest size class (one whole page); the
    /// caller stores it on the heap instead.
    Oversize,
    /// No free chunk, no reassignable page, and the page budget is
    /// exhausted: the caller should evict and retry (or fall back).
    Full,
}

#[derive(Debug)]
struct Page {
    buf: Arc<[u8]>,
    /// Free chunk indices within this page.
    free: Vec<u32>,
    /// Live items in this page.
    live: u32,
    /// Whether the page is queued in its class's candidate ring.
    queued: bool,
}

#[derive(Debug)]
struct SizeClass {
    chunk_size: u32,
    chunks_per_page: u32,
    /// Stable page table: `ChunkLoc::page` indexes here, so reclaimed
    /// entries become `None` rather than shifting their neighbours.
    pages: Vec<Option<Page>>,
    /// Indices of `None` entries in `pages`, reusable for new pages.
    vacant: Vec<u32>,
    /// Pages that may have free chunks, probed round-robin on insert.
    candidates: std::collections::VecDeque<u32>,
    live_items: u64,
    /// Exact key+value bytes of live items (≤ live_items × chunk_size).
    live_bytes: u64,
}

impl SizeClass {
    fn page_count(&self) -> u64 {
        self.pages.iter().filter(|p| p.is_some()).count() as u64
    }
}

/// Per-class usage snapshot, exported through `stats proteus` and the
/// Prometheus registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlabClassStats {
    /// Chunk size of this class in bytes.
    pub chunk_size: u32,
    /// Pages currently assigned to the class.
    pub pages: u64,
    /// Live items.
    pub items: u64,
    /// Exact key+value bytes of live items.
    pub live_bytes: u64,
    /// Internal waste: `items × chunk_size − live_bytes`.
    pub bytes_wasted: u64,
}

/// Whole-store usage snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlabStats {
    /// Per-class breakdown, ascending chunk size. Classes that never
    /// held an item are omitted.
    pub classes: Vec<SlabClassStats>,
    /// Configured page size in bytes.
    pub page_bytes: u64,
    /// Pages allocated from the system (assigned + pooled).
    pub pages_allocated: u64,
    /// Reclaimed empty pages waiting in the cross-class pool.
    pub pages_pooled: u64,
    /// Inserts that found a candidate page pinned by in-flight views
    /// and had to look elsewhere.
    pub write_blocked: u64,
    /// Empty pages moved between size classes under starvation.
    pub pages_reassigned: u64,
    /// Items the engine stored on the heap because the slab was full
    /// or the item was oversize.
    pub heap_fallbacks: u64,
}

impl SlabStats {
    /// Total live key+value bytes across classes.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.live_bytes).sum()
    }

    /// Total bytes held in pages (allocated × page size).
    #[must_use]
    pub fn page_bytes_total(&self) -> u64 {
        self.pages_allocated * self.page_bytes
    }

    /// Fraction of page memory **not** holding live item bytes:
    /// `1 − live_bytes / page_bytes_total`, in `0.0..=1.0`. Counts
    /// both internal (chunk rounding) and external (unfilled pages)
    /// fragmentation. `0.0` when no pages are allocated.
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let total = self.page_bytes_total();
        if total == 0 {
            0.0
        } else {
            1.0 - self.live_bytes() as f64 / total as f64
        }
    }

    /// Folds another store's snapshot into this one (the sharded
    /// engine merges its per-shard stores class-by-class).
    pub fn merge(&mut self, other: &SlabStats) {
        self.page_bytes = self.page_bytes.max(other.page_bytes);
        self.pages_allocated += other.pages_allocated;
        self.pages_pooled += other.pages_pooled;
        self.write_blocked += other.write_blocked;
        self.pages_reassigned += other.pages_reassigned;
        self.heap_fallbacks += other.heap_fallbacks;
        for oc in &other.classes {
            match self
                .classes
                .iter_mut()
                .find(|c| c.chunk_size == oc.chunk_size)
            {
                Some(c) => {
                    c.pages += oc.pages;
                    c.items += oc.items;
                    c.live_bytes += oc.live_bytes;
                    c.bytes_wasted += oc.bytes_wasted;
                }
                None => self.classes.push(*oc),
            }
        }
        self.classes.sort_by_key(|c| c.chunk_size);
    }
}

/// The slab store. One per engine shard; all access is serialized by
/// the shard (the engine is `&mut self` throughout).
#[derive(Debug)]
pub struct SlabStore {
    page_bytes: u32,
    classes: Vec<SizeClass>,
    /// Reclaimed empty pages, reusable by any class.
    free_pool: Vec<Arc<[u8]>>,
    /// Hints of (class, page) pairs that were seen empty; validated on
    /// use (the page may have been refilled since).
    empty_hints: Vec<(u16, u32)>,
    pages_allocated: u64,
    max_pages: u64,
    write_blocked: u64,
    pages_reassigned: u64,
    heap_fallbacks: u64,
}

/// The size-class chunk table for a page size: MIN_CHUNK growing by
/// ×1.25 (rounded up to 8) until one chunk fills the page.
fn class_table(page_bytes: u32) -> Vec<u32> {
    let mut sizes = Vec::new();
    let mut size = MIN_CHUNK.min(page_bytes);
    loop {
        sizes.push(size);
        if size >= page_bytes {
            break;
        }
        let next = ((u64::from(size) * GROWTH_NUM / GROWTH_DEN + 7) & !7) as u32;
        size = next.min(page_bytes);
    }
    sizes
}

impl SlabStore {
    /// A store with the given page size and a budget of `max_pages`
    /// pages. `page_bytes` is clamped to at least 1 KiB.
    #[must_use]
    pub fn new(page_bytes: u32, max_pages: u64) -> SlabStore {
        let page_bytes = page_bytes.max(1024);
        let classes = class_table(page_bytes)
            .into_iter()
            .map(|chunk_size| SizeClass {
                chunk_size,
                chunks_per_page: page_bytes / chunk_size,
                pages: Vec::new(),
                vacant: Vec::new(),
                candidates: std::collections::VecDeque::new(),
                live_items: 0,
                live_bytes: 0,
            })
            .collect();
        SlabStore {
            page_bytes,
            classes,
            free_pool: Vec::new(),
            empty_hints: Vec::new(),
            pages_allocated: 0,
            max_pages: max_pages.max(1),
            write_blocked: 0,
            pages_reassigned: 0,
            heap_fallbacks: 0,
        }
    }

    /// The size class an item of `len` bytes lands in, or `None` if it
    /// exceeds the largest class (→ heap path).
    #[must_use]
    pub fn class_of(&self, len: usize) -> Option<u16> {
        if len > self.page_bytes as usize {
            return None;
        }
        let len = len as u32;
        self.classes
            .iter()
            .position(|c| c.chunk_size >= len)
            .map(|i| i as u16)
    }

    /// Chunk size of class `class`.
    #[cfg(test)]
    pub fn chunk_size(&self, class: u16) -> u32 {
        self.classes[class as usize].chunk_size
    }

    /// Records that the engine stored an item on the heap because the
    /// slab could not place it.
    pub fn note_heap_fallback(&mut self) {
        self.heap_fallbacks += 1;
    }

    /// Places `[key][value]` into the smallest chunk that fits.
    ///
    /// # Errors
    ///
    /// [`SlabError::Oversize`] if the item exceeds the largest class;
    /// [`SlabError::Full`] if no chunk can be produced right now (the
    /// caller evicts and retries, or falls back to the heap).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<ChunkLoc, SlabError> {
        let len = key.len() + value.len();
        let class = self.class_of(len).ok_or(SlabError::Oversize)?;
        // 1. A candidate page of the class with a free chunk we may
        //    write (no outstanding views).
        let probes = self.classes[class as usize]
            .candidates
            .len()
            .min(WRITE_PROBE_LIMIT);
        for _ in 0..probes {
            let c = &mut self.classes[class as usize];
            let Some(&pid) = c.candidates.front() else {
                break;
            };
            let page = match c.pages[pid as usize].as_mut() {
                Some(p) if !p.free.is_empty() => p,
                other => {
                    // Stale candidate: reclaimed or fully occupied.
                    if let Some(p) = other {
                        p.queued = false;
                    }
                    c.candidates.pop_front();
                    continue;
                }
            };
            match Arc::get_mut(&mut page.buf) {
                Some(data) => {
                    let chunk = page.free.pop().expect("checked non-empty");
                    let off = (chunk * c.chunk_size) as usize;
                    data[off..off + key.len()].copy_from_slice(key);
                    data[off + key.len()..off + len].copy_from_slice(value);
                    page.live += 1;
                    if page.free.is_empty() {
                        page.queued = false;
                        c.candidates.pop_front();
                    }
                    c.live_items += 1;
                    c.live_bytes += len as u64;
                    return Ok(ChunkLoc {
                        class,
                        page: pid,
                        chunk,
                    });
                }
                None => {
                    // Pinned by in-flight views; try the next page.
                    self.write_blocked += 1;
                    let c = &mut self.classes[class as usize];
                    let pid = c.candidates.pop_front().expect("probed front");
                    c.candidates.push_back(pid);
                }
            }
        }
        // 2. A fresh page: the cross-class pool, the allocator (within
        //    budget), or an empty page reclaimed from a rich class.
        if let Some(buf) = self.take_page() {
            return Ok(self.install_page(class, buf, key, value));
        }
        Err(SlabError::Full)
    }

    /// Pops a usable page from the pool, allocates one within budget,
    /// or reclaims an empty page from another class.
    fn take_page(&mut self) -> Option<Arc<[u8]>> {
        if let Some(buf) = self.free_pool.pop() {
            return Some(buf);
        }
        if self.pages_allocated < self.max_pages {
            self.pages_allocated += 1;
            return Some(vec![0u8; self.page_bytes as usize].into());
        }
        self.reclaim_empty_page()
    }

    /// Detaches an empty, view-free page from whatever class holds it.
    fn reclaim_empty_page(&mut self) -> Option<Arc<[u8]>> {
        let mut viewed = Vec::new();
        let mut found = None;
        while let Some((class, pid)) = self.empty_hints.pop() {
            let c = &mut self.classes[class as usize];
            let (empty, quiet) = match c.pages.get(pid as usize) {
                Some(Some(p)) => (p.live == 0, Arc::strong_count(&p.buf) == 1),
                _ => (false, false),
            };
            if !empty {
                continue; // refilled (or already reclaimed): hint is dead
            }
            if !quiet {
                // Empty but a response still views it: the hint stays
                // valid — once the view drops this page is reclaimable,
                // so it must survive this pass rather than be dropped.
                viewed.push((class, pid));
                continue;
            }
            let page = c.pages[pid as usize].take().expect("matched Some");
            c.vacant.push(pid);
            self.pages_reassigned += 1;
            found = Some(page.buf);
            break;
        }
        self.empty_hints.extend(viewed);
        found
    }

    /// Installs `buf` as a new page of `class` and writes the item
    /// into chunk 0.
    fn install_page(
        &mut self,
        class: u16,
        mut buf: Arc<[u8]>,
        key: &[u8],
        value: &[u8],
    ) -> ChunkLoc {
        let c = &mut self.classes[class as usize];
        let data = Arc::get_mut(&mut buf).expect("fresh page has no views");
        data[..key.len()].copy_from_slice(key);
        data[key.len()..key.len() + value.len()].copy_from_slice(value);
        // Free list in descending order so chunks are handed out 0, 1,
        // 2, … (chunk 0 is taken by this insert).
        let free: Vec<u32> = (1..c.chunks_per_page).rev().collect();
        let page = Page {
            buf,
            free,
            live: 1,
            queued: true,
        };
        let pid = match c.vacant.pop() {
            Some(pid) => {
                c.pages[pid as usize] = Some(page);
                pid
            }
            None => {
                let pid = u32::try_from(c.pages.len()).expect("page table overflow");
                c.pages.push(Some(page));
                pid
            }
        };
        if c.chunks_per_page > 1 {
            c.candidates.push_back(pid);
        } else {
            c.pages[pid as usize]
                .as_mut()
                .expect("just installed")
                .queued = false;
        }
        c.live_items += 1;
        c.live_bytes += (key.len() + value.len()) as u64;
        ChunkLoc {
            class,
            page: pid,
            chunk: 0,
        }
    }

    /// Releases the chunk at `loc` (item of `len = klen + vlen` bytes).
    /// The bytes are left in place — an in-flight view may still be
    /// reading them — and the chunk is only rewritten once
    /// [`Arc::get_mut`] proves no view exists.
    pub fn free(&mut self, loc: ChunkLoc, len: usize) {
        let c = &mut self.classes[loc.class as usize];
        let page = c.pages[loc.page as usize]
            .as_mut()
            .expect("freeing a chunk of a reclaimed page");
        page.free.push(loc.chunk);
        page.live -= 1;
        c.live_items -= 1;
        c.live_bytes -= len as u64;
        if !page.queued {
            page.queued = true;
            c.candidates.push_back(loc.page);
        }
        if page.live == 0 {
            self.empty_hints.push((loc.class, loc.page));
        }
    }

    /// The stored key bytes at `loc`.
    #[must_use]
    pub fn key_slice(&self, loc: ChunkLoc, klen: usize) -> &[u8] {
        let (buf, off) = self.chunk(loc);
        &buf[off..off + klen]
    }

    /// The stored value bytes at `loc`.
    #[must_use]
    pub fn value_slice(&self, loc: ChunkLoc, klen: usize, vlen: usize) -> &[u8] {
        let (buf, off) = self.chunk(loc);
        &buf[off + klen..off + klen + vlen]
    }

    /// A zero-copy shared view of the value at `loc`: a refcount bump
    /// on the page, no allocation, no byte copy.
    #[must_use]
    pub fn value_view(&self, loc: ChunkLoc, klen: usize, vlen: usize) -> SharedBytes {
        let c = &self.classes[loc.class as usize];
        let page = c.pages[loc.page as usize].as_ref().expect("live chunk");
        let off = (loc.chunk * c.chunk_size) as usize + klen;
        SharedBytes::view(Arc::clone(&page.buf), off, vlen)
    }

    fn chunk(&self, loc: ChunkLoc) -> (&[u8], usize) {
        let c = &self.classes[loc.class as usize];
        let page = c.pages[loc.page as usize].as_ref().expect("live chunk");
        (&page.buf[..], (loc.chunk * c.chunk_size) as usize)
    }

    /// Drops every page and resets all counters (`flush_all` / server
    /// power-off). Pooled pages are released back to the allocator.
    pub fn clear(&mut self) {
        for c in &mut self.classes {
            c.pages.clear();
            c.vacant.clear();
            c.candidates.clear();
            c.live_items = 0;
            c.live_bytes = 0;
        }
        self.free_pool.clear();
        self.empty_hints.clear();
        self.pages_allocated = 0;
    }

    /// Usage snapshot (see [`SlabStats`]).
    #[must_use]
    pub fn stats(&self) -> SlabStats {
        let classes = self
            .classes
            .iter()
            .filter(|c| c.page_count() > 0 || c.live_items > 0)
            .map(|c| SlabClassStats {
                chunk_size: c.chunk_size,
                pages: c.page_count(),
                items: c.live_items,
                live_bytes: c.live_bytes,
                bytes_wasted: c.live_items * u64::from(c.chunk_size) - c.live_bytes,
            })
            .collect();
        SlabStats {
            classes,
            page_bytes: u64::from(self.page_bytes),
            pages_allocated: self.pages_allocated,
            pages_pooled: self.free_pool.len() as u64,
            write_blocked: self.write_blocked,
            pages_reassigned: self.pages_reassigned,
            heap_fallbacks: self.heap_fallbacks,
        }
    }

    /// Internal-consistency audit for tests: chunk conservation per
    /// page, counter agreement per class, and the page-budget bound.
    /// Panics on drift.
    pub fn assert_consistent(&self) {
        let mut assigned = 0u64;
        for (ci, c) in self.classes.iter().enumerate() {
            let mut live_items = 0u64;
            for page in c.pages.iter().flatten() {
                assigned += 1;
                assert_eq!(
                    page.free.len() as u32 + page.live,
                    c.chunks_per_page,
                    "class {ci}: chunk leak (free {} + live {} != {})",
                    page.free.len(),
                    page.live,
                    c.chunks_per_page
                );
                live_items += u64::from(page.live);
            }
            assert_eq!(live_items, c.live_items, "class {ci}: live-item drift");
            assert!(
                c.live_bytes <= c.live_items * u64::from(c.chunk_size),
                "class {ci}: live bytes exceed chunk capacity"
            );
        }
        assert_eq!(
            assigned + self.free_pool.len() as u64,
            self.pages_allocated,
            "page conservation: assigned + pooled != allocated"
        );
        assert!(
            self.pages_allocated <= self.max_pages,
            "page budget exceeded: {} > {}",
            self.pages_allocated,
            self.max_pages
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_grows_geometrically_to_one_page() {
        let sizes = class_table(1 << 20);
        assert_eq!(sizes[0], 64);
        assert_eq!(*sizes.last().unwrap(), 1 << 20);
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
            // Growth never exceeds ×1.25 by more than rounding-to-8.
            assert!(u64::from(w[1]) <= u64::from(w[0]) * 5 / 4 + 8);
        }
        // ~45 classes for 1 MiB pages; u16 class ids are ample.
        assert!(sizes.len() < 60, "unexpected class count {}", sizes.len());
    }

    #[test]
    fn insert_free_reuse_roundtrip() {
        let mut s = SlabStore::new(4096, 8);
        let a = s.insert(b"k1", b"hello").unwrap();
        let b = s.insert(b"k2", b"world").unwrap();
        assert_eq!(a.class, b.class);
        assert_eq!(s.key_slice(a, 2), b"k1");
        assert_eq!(s.value_slice(a, 2, 5), b"hello");
        assert_eq!(s.value_slice(b, 2, 5), b"world");
        s.free(a, 7);
        // The freed chunk is reused (no views outstanding).
        let c = s.insert(b"k3", b"again");
        assert_eq!(s.value_slice(c.unwrap(), 2, 5), b"again");
        s.assert_consistent();
    }

    #[test]
    fn views_are_zero_copy_and_survive_free() {
        let mut s = SlabStore::new(4096, 8);
        let loc = s.insert(b"key", b"value").unwrap();
        let v1 = s.value_view(loc, 3, 5);
        let v2 = s.value_view(loc, 3, 5);
        assert_eq!(&v1[..], b"value");
        assert!(SharedBytes::ptr_eq(&v1, &v2), "views alias the page");
        s.free(loc, 8);
        // The view still reads the original bytes after the free...
        assert_eq!(&v1[..], b"value");
        // ...because the store refuses to rewrite a viewed page: the
        // next insert of the same class must go to a different page.
        let loc2 = s.insert(b"ky2", b"other").unwrap();
        assert_eq!(&v1[..], b"value");
        assert_ne!((loc2.page, loc2.chunk), (loc.page, loc.chunk));
        drop((v1, v2));
        // Views gone: the original chunk becomes reusable.
        let loc3 = s.insert(b"ky3", b"reuse").unwrap();
        assert_eq!((loc3.page, loc3.chunk), (loc.page, loc.chunk));
        s.assert_consistent();
    }

    #[test]
    fn oversize_items_are_refused_to_the_heap_path() {
        let mut s = SlabStore::new(1024, 4);
        assert_eq!(s.insert(b"k", &vec![0u8; 2048]), Err(SlabError::Oversize));
        assert!(s.class_of(4096).is_none());
        assert!(s.class_of(1024).is_some());
    }

    #[test]
    fn page_budget_is_enforced_and_eviction_unblocks() {
        // 1 KiB pages, budget 2: class 64 holds 16 chunks/page.
        let mut s = SlabStore::new(1024, 2);
        let locs: Vec<ChunkLoc> = (0..32)
            .map(|i| s.insert(&[i as u8], &[0u8; 40]).unwrap())
            .collect();
        assert_eq!(s.insert(b"x", &[0u8; 40]), Err(SlabError::Full));
        s.free(locs[0], 41);
        let again = s.insert(b"x", &[0u8; 40]).unwrap();
        assert_eq!((again.page, again.chunk), (locs[0].page, locs[0].chunk));
        s.assert_consistent();
    }

    #[test]
    fn empty_pages_move_between_starved_and_rich_classes() {
        // Budget 2 pages. Fill a small class across both pages, then
        // free one page's worth; a large-class insert must reclaim the
        // empty page rather than fail.
        let mut s = SlabStore::new(1024, 2);
        let locs: Vec<ChunkLoc> = (0..32)
            .map(|i| s.insert(&[i as u8], &[0u8; 40]).unwrap())
            .collect();
        let first_page = locs[0].page;
        for &loc in locs.iter().filter(|l| l.page == first_page) {
            s.free(loc, 41);
        }
        let big = s.insert(b"big", &vec![0u8; 700]).unwrap();
        assert!(s.chunk_size(big.class) >= 703);
        assert_eq!(s.stats().pages_reassigned, 1);
        assert_eq!(s.value_slice(big, 3, 700), &vec![0u8; 700][..]);
        s.assert_consistent();
    }

    #[test]
    fn empty_hint_survives_a_pinned_reclaim_attempt() {
        // Budget 2 pages, both filled by the small class; page 0 is
        // freed to empty while a view still pins it. A large-class
        // insert must fail over (the page is unreclaimable while
        // viewed) — but the empty hint must NOT be consumed: once the
        // view drops, the same insert succeeds by reclaiming the page.
        let mut s = SlabStore::new(1024, 2);
        let locs: Vec<ChunkLoc> = (0..32)
            .map(|i| s.insert(&[i as u8], &[0u8; 40]).unwrap())
            .collect();
        let first_page = locs[0].page;
        let pin = s.value_view(locs[0], 1, 40);
        for &loc in locs.iter().filter(|l| l.page == first_page) {
            s.free(loc, 41);
        }
        assert_eq!(
            s.insert(b"big", &vec![0u8; 700]),
            Err(SlabError::Full),
            "a viewed page must not be reclaimed out from under its reader"
        );
        assert_eq!(s.stats().pages_reassigned, 0);
        drop(pin);
        let big = s
            .insert(b"big", &vec![0u8; 700])
            .expect("hint must survive the pinned attempt");
        assert_eq!(s.stats().pages_reassigned, 1);
        assert_eq!(s.value_slice(big, 3, 700), &vec![0u8; 700][..]);
        s.assert_consistent();
    }

    #[test]
    fn stats_track_waste_and_fragmentation() {
        let mut s = SlabStore::new(4096, 4);
        for i in 0..10u8 {
            s.insert(&[i], &[7u8; 30]).unwrap(); // 31 bytes in 64-byte chunks
        }
        let stats = s.stats();
        let class = &stats.classes[0];
        assert_eq!(class.chunk_size, 64);
        assert_eq!(class.items, 10);
        assert_eq!(class.live_bytes, 310);
        assert_eq!(class.bytes_wasted, 10 * 64 - 310);
        assert!(stats.fragmentation() > 0.0 && stats.fragmentation() < 1.0);
        assert_eq!(stats.page_bytes_total(), 4096);
        s.clear();
        assert_eq!(s.stats().pages_allocated, 0);
        s.assert_consistent();
    }
}
