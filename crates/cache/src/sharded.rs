//! Lock-striped cache engine for concurrent servers.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use proteus_bloom::BloomFilter;
use proteus_sim::{SimDuration, SimTime};

use crate::config::CacheConfig;
use crate::engine::{CacheEngine, StoreOutcome};
use crate::slab::SlabStats;
use crate::stats::CacheStats;
use crate::SharedBytes;

/// Lock-free cumulative counters, mirroring [`CacheStats`].
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    sets: AtomicU64,
    deletes: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
}

impl AtomicStats {
    /// Folds the per-shard counter movement `before → after` into the
    /// global totals. Engine counters only ever grow, so the deltas
    /// are non-negative.
    fn accumulate(&self, before: CacheStats, after: CacheStats) {
        let add = |counter: &AtomicU64, b: u64, a: u64| {
            if a != b {
                counter.fetch_add(a - b, Ordering::Relaxed);
            }
        };
        add(&self.hits, before.hits, after.hits);
        add(&self.misses, before.misses, after.misses);
        add(&self.sets, before.sets, after.sets);
        add(&self.deletes, before.deletes, after.deletes);
        add(&self.evictions, before.evictions, after.evictions);
        add(&self.expired, before.expired, after.expired);
        add(&self.rejected, before.rejected, after.rejected);
    }

    fn load(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// A concurrent cache engine: N independent [`CacheEngine`] shards,
/// each behind its own mutex, selected by key hash.
///
/// Compared to one engine behind one mutex:
///
/// - Operations on different shards proceed in parallel; the write
///   lock a `put` takes only stalls the ~1/N of keys sharing its
///   shard.
/// - Statistics live in lock-free atomics, so `stats()` never touches
///   a shard lock.
/// - [`digest_snapshot`](Self::digest_snapshot) visits shards *one at
///   a time* and unions their digests, so a snapshot (the paper's
///   `get SET_BLOOM_FILTER`) never stops the world — at most one
///   shard is briefly locked while the other N−1 keep serving.
///
/// Every shard's digest shares one [`BloomConfig`](proteus_bloom::BloomConfig),
/// and each key lives in exactly one shard, so the union is
/// bit-identical to the digest an unsharded engine with the same
/// contents would broadcast (see `DigestSnapshot::merge`).
///
/// Capacity is partitioned statically: each shard evicts independently
/// against `capacity_bytes / shards`, which bounds total usage by
/// `capacity_bytes` without any cross-shard accounting.
///
/// # Example
///
/// ```
/// use proteus_cache::{CacheConfig, ShardedEngine};
/// use proteus_sim::SimTime;
///
/// let cache = ShardedEngine::new(CacheConfig::with_capacity(1 << 20));
/// let t = SimTime::ZERO;
/// cache.put(b"page:1", vec![0u8; 64], t);
/// assert_eq!(cache.get(b"page:1", t).as_deref(), Some(&[0u8; 64][..]));
/// assert!(cache.digest_snapshot().contains(b"page:1"));
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Mutex<CacheEngine>>,
    mask: u64,
    config: CacheConfig,
    stats: AtomicStats,
}

impl ShardedEngine {
    /// Creates an empty sharded engine. `config.shards` is rounded up
    /// to a power of two (minimum 1); each shard gets an equal slice
    /// of `capacity_bytes` and a full-size digest of the same shape.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let shard_count = config.shards.max(1).next_power_of_two();
        let shard_config = CacheConfig {
            capacity_bytes: config.capacity_bytes / shard_count as u64,
            shards: 1,
            ..config
        };
        ShardedEngine {
            shards: (0..shard_count)
                .map(|_| Mutex::new(CacheEngine::new(shard_config)))
                .collect(),
            mask: shard_count as u64 - 1,
            config,
            stats: AtomicStats::default(),
        }
    }

    /// The engine's configuration (as given, before per-shard split).
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of shards (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` lives in.
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        // FNV-1a, xor-folded so the low bits see the whole hash.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ((h ^ (h >> 32)) & self.mask) as usize
    }

    /// Runs `f` under the lock of `key`'s shard, folding any counter
    /// movement into the global atomic statistics. This is the engine's
    /// unit of atomicity: compound per-key operations (`add`,
    /// `replace`, `incr`, …) run their probe and write inside one call.
    pub fn with_key_shard<T>(&self, key: &[u8], f: impl FnOnce(&mut CacheEngine) -> T) -> T {
        self.with_shard(self.shard_of(key), f)
    }

    fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut CacheEngine) -> T) -> T {
        let mut guard = self.shards[shard].lock();
        let before = guard.stats();
        let out = f(&mut guard);
        let after = guard.stats();
        drop(guard);
        self.stats.accumulate(before, after);
        out
    }

    /// Looks up `key`, refreshing recency (see [`CacheEngine::get`]).
    /// Returns the value's shared buffer: the hit is a refcount bump
    /// under the shard lock, never a byte copy, and the lock is
    /// released before returning.
    #[must_use]
    pub fn get(&self, key: &[u8], now: SimTime) -> Option<SharedBytes> {
        self.with_key_shard(key, |e| e.get_shared(key, now))
    }

    /// Inserts or replaces `key` with no expiry. The outcome reports
    /// whether the item was stored (an item larger than the shard's
    /// whole budget is rejected, leaving any existing value intact) and
    /// how many evictions it caused within `key`'s shard. On the heap
    /// backend a [`SharedBytes`] value is stored as-is (no copy); on
    /// the slab backend the bytes are copied once into a page.
    pub fn put(
        &self,
        key: &[u8],
        value: impl Into<SharedBytes> + AsRef<[u8]>,
        now: SimTime,
    ) -> StoreOutcome {
        self.with_key_shard(key, |e| e.put(key, value, now))
    }

    /// Inserts or replaces `key` with an optional TTL (see
    /// [`CacheEngine::put_with_expiry`]).
    pub fn put_with_expiry(
        &self,
        key: &[u8],
        value: impl Into<SharedBytes> + AsRef<[u8]>,
        now: SimTime,
        ttl: Option<SimDuration>,
    ) -> StoreOutcome {
        self.with_key_shard(key, |e| e.put_with_expiry(key, value, now, ttl))
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.with_key_shard(key, |e| e.delete(key))
    }

    /// Refreshes `key`'s recency without reading it (see
    /// [`CacheEngine::touch`]).
    pub fn touch(&self, key: &[u8], now: SimTime) -> bool {
        self.with_key_shard(key, |e| e.touch(key, now))
    }

    /// Non-mutating shared-buffer lookup (see [`CacheEngine::peek`]).
    #[must_use]
    pub fn peek(&self, key: &[u8]) -> Option<SharedBytes> {
        self.with_key_shard(key, |e| e.peek_shared(key))
    }

    /// Whether `key` is cached (no side effects).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.with_key_shard(key, |e| e.contains(key))
    }

    /// Total cached items across shards (locked one at a time, so the
    /// count is a consistent-per-shard approximation under writes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no shard holds any item.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Total accounted bytes across shards.
    #[must_use]
    pub fn bytes_used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes_used()).sum()
    }

    /// Cumulative statistics, read lock-free from atomics.
    ///
    /// # Consistency contract
    ///
    /// Each counter is loaded with a separate relaxed read, and an
    /// operation's counter movement is folded in *after* its shard
    /// lock is released — so a snapshot taken mid-traffic is **not** a
    /// point-in-time cut. Two guarantees do hold, and telemetry relies
    /// on both:
    ///
    /// 1. **Per-counter monotonicity.** Counters only ever have
    ///    non-negative deltas added, so for any single field,
    ///    successive snapshots never decrease (no operation is counted
    ///    twice or retroactively uncounted).
    /// 2. **Eventual exactness.** Once the engine quiesces, every
    ///    completed operation is reflected exactly once.
    ///
    /// Cross-counter invariants (e.g. `hits + misses == gets issued`)
    /// hold only at quiescence: mid-traffic, a `get` may appear in
    /// neither counter for a moment, and unrelated counters in one
    /// snapshot may be from slightly different instants. Consumers
    /// (the server's `stats` command, the metrics registry) expose
    /// these values as independent monotone counters, which is exactly
    /// what scrape-based collectors expect.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats.load()
    }

    /// Reaps expired items in every shard (one shard locked at a
    /// time). Returns the number reaped.
    pub fn sweep_expired(&self, now: SimTime) -> u64 {
        (0..self.shards.len())
            .map(|i| self.with_shard(i, |e| e.sweep_expired(now)))
            .sum()
    }

    /// Snapshot of the whole engine's digest: per-shard snapshots are
    /// taken and unioned **one shard at a time**, so ongoing operations
    /// on other shards never wait on the snapshot. The result is
    /// bit-identical to an unsharded digest of the same contents.
    #[must_use]
    pub fn digest_snapshot(&self) -> BloomFilter {
        let mut merged = self.shards[0].lock().digest_snapshot();
        for shard in &self.shards[1..] {
            let snap = shard.lock().digest_snapshot();
            merged.union_with(&snap);
        }
        merged
    }

    /// Estimated distinct-item count from the merged digest, or `None`
    /// if the digest is saturated (every bit set).
    #[must_use]
    pub fn digest_estimate(&self) -> Option<f64> {
        self.digest_snapshot().estimate_cardinality()
    }

    /// Merged slab-store snapshot across shards (per-class counters
    /// summed, shards locked one at a time), or `None` on the heap
    /// backend.
    #[must_use]
    pub fn slab_stats(&self) -> Option<SlabStats> {
        let mut merged: Option<SlabStats> = None;
        for shard in &self.shards {
            let snap = shard.lock().slab_stats()?;
            match &mut merged {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
        }
        merged
    }

    /// Empties every shard (one at a time).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Audits every shard's storage accounting (see
    /// [`CacheEngine::assert_storage_consistent`]), panicking on drift.
    pub fn assert_storage_consistent(&self) {
        for shard in &self.shards {
            shard.lock().assert_storage_consistent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_bloom::BloomConfig;
    use std::sync::Arc;

    const T0: SimTime = SimTime::ZERO;

    fn engine(capacity: u64, shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            CacheConfig::with_capacity(capacity)
                .item_overhead(0)
                .shards(shards)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        )
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(engine(1 << 20, 1).shard_count(), 1);
        assert_eq!(engine(1 << 20, 3).shard_count(), 4);
        assert_eq!(engine(1 << 20, 8).shard_count(), 8);
        assert_eq!(engine(1 << 20, 0).shard_count(), 1);
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let c = engine(1 << 20, 8);
        let mut seen = vec![0usize; c.shard_count()];
        for i in 0..4096u64 {
            let key = i.to_le_bytes();
            assert_eq!(c.shard_of(&key), c.shard_of(&key));
            seen[c.shard_of(&key)] += 1;
        }
        for (shard, &count) in seen.iter().enumerate() {
            // 4096/8 = 512 expected; allow generous imbalance.
            assert!(count > 256, "shard {shard} got only {count} keys");
        }
    }

    #[test]
    fn basic_ops_roundtrip_across_shards() {
        let c = engine(1 << 20, 4);
        for i in 0..500u64 {
            c.put(&i.to_le_bytes(), i.to_string().into_bytes(), T0);
        }
        for i in 0..500u64 {
            assert_eq!(
                c.get(&i.to_le_bytes(), T0).as_deref(),
                Some(i.to_string().as_bytes())
            );
            assert!(c.contains(&i.to_le_bytes()));
        }
        assert_eq!(c.len(), 500);
        assert!(!c.is_empty());
        assert!(c.delete(&7u64.to_le_bytes()));
        assert!(!c.delete(&7u64.to_le_bytes()));
        assert_eq!(c.len(), 499);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn stats_sum_exactly_across_shards() {
        let c = engine(1 << 20, 8);
        for i in 0..300u64 {
            c.put(&i.to_le_bytes(), vec![0; 8], T0);
        }
        for i in 0..400u64 {
            let _ = c.get(&i.to_le_bytes(), T0);
        }
        for i in 0..100u64 {
            assert!(c.delete(&i.to_le_bytes()));
        }
        let s = c.stats();
        assert_eq!(s.sets, 300);
        assert_eq!(s.hits, 300);
        assert_eq!(s.misses, 100);
        assert_eq!(s.deletes, 100);
    }

    #[test]
    fn stats_are_exact_under_concurrency() {
        let c = Arc::new(engine(1 << 24, 8));
        let threads = 8;
        let per_thread = 2000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let key = (t * per_thread + i).to_le_bytes();
                        c.put(&key, vec![0; 16], T0);
                        assert!(c.get(&key, T0).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.sets, threads * per_thread);
        assert_eq!(s.hits, threads * per_thread);
        assert_eq!(c.len() as u64, threads * per_thread);
    }

    /// The documented consistency contract of [`ShardedEngine::stats`]:
    /// snapshots taken while writers hammer the engine may lag, but no
    /// counter ever moves backwards between successive reads.
    #[test]
    fn stats_snapshots_are_monotone_under_concurrent_load() {
        let c = Arc::new(engine(1 << 22, 8));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&c);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let key = ((t << 32) | (i % 4096)).to_le_bytes();
                        c.put(&key, vec![0; 16], T0);
                        let _ = c.get(&key, T0);
                        let _ = c.get(&((t << 32) | ((i + 1) % 8192)).to_le_bytes(), T0);
                        i += 1;
                    }
                })
            })
            .collect();
        let mut prev = c.stats();
        for _ in 0..2000 {
            let next = c.stats();
            for (field, a, b) in [
                ("hits", prev.hits, next.hits),
                ("misses", prev.misses, next.misses),
                ("sets", prev.sets, next.sets),
                ("deletes", prev.deletes, next.deletes),
                ("evictions", prev.evictions, next.evictions),
                ("expired", prev.expired, next.expired),
            ] {
                assert!(a <= b, "{field} went backwards: {a} -> {b}");
            }
            prev = next;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn capacity_is_partitioned_and_never_exceeded() {
        let c = engine(8000, 4);
        for i in 0..2000u64 {
            c.put(&i.to_le_bytes(), vec![0; 50], T0);
            assert!(c.bytes_used() <= 8000, "over capacity at item {i}");
        }
        assert!(c.stats().evictions > 0, "pressure must evict");
    }

    #[test]
    fn merged_snapshot_equals_unsharded_digest() {
        let config = CacheConfig::with_capacity(1 << 20)
            .item_overhead(0)
            .digest(BloomConfig::new(1 << 14, 4, 4));
        let sharded = ShardedEngine::new(config.shards(8));
        let mut single = CacheEngine::new(config.shards(1));
        for i in 0..2000u64 {
            let key = i.to_le_bytes();
            sharded.put(&key, vec![0; 16], T0);
            single.put(&key, vec![0; 16], T0);
        }
        assert_eq!(sharded.digest_snapshot(), single.digest_snapshot());
        let est = sharded.digest_estimate().unwrap();
        assert!((est - 2000.0).abs() / 2000.0 < 0.05, "estimate {est}");
    }

    #[test]
    fn expiry_and_sweep_work_per_shard() {
        let c = engine(1 << 20, 4);
        let ttl = SimDuration::from_secs(10);
        for i in 0..100u64 {
            c.put_with_expiry(&i.to_le_bytes(), vec![0; 8], T0, Some(ttl));
        }
        for i in 100..200u64 {
            c.put(&i.to_le_bytes(), vec![0; 8], T0);
        }
        let later = T0 + SimDuration::from_secs(11);
        assert_eq!(c.sweep_expired(later), 100);
        assert_eq!(c.len(), 100);
        assert_eq!(c.stats().expired, 100);
        // Lazy expiry path through get() as well.
        let c2 = engine(1 << 20, 4);
        c2.put_with_expiry(b"gone", vec![1], T0, Some(ttl));
        assert_eq!(c2.get(b"gone", later), None);
        assert_eq!(c2.stats().expired, 1);
    }

    #[test]
    fn touch_and_peek_do_not_disturb_stats() {
        let c = engine(1 << 20, 4);
        c.put(b"k", vec![1, 2], T0);
        let before = c.stats();
        assert!(c.touch(b"k", T0));
        assert!(!c.touch(b"missing", T0));
        assert_eq!(c.peek(b"k").as_deref(), Some(&[1u8, 2][..]));
        assert_eq!(c.peek(b"missing"), None);
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn get_is_a_refcount_bump_not_a_copy() {
        let c = engine(1 << 20, 4);
        let stored: SharedBytes = SharedBytes::from(vec![7u8; 128]);
        c.put(b"k", SharedBytes::clone(&stored), T0);
        let a = c.get(b"k", T0).unwrap();
        let b = c.get(b"k", T0).unwrap();
        assert!(
            SharedBytes::ptr_eq(&stored, &a) && SharedBytes::ptr_eq(&a, &b),
            "shared puts and gets must alias one allocation"
        );
        assert_eq!(c.peek(b"k").map(|v| v.len()), Some(128));
    }

    #[test]
    fn slab_backend_roundtrips_and_reports_merged_stats() {
        use crate::config::StorageKind;
        let c = ShardedEngine::new(
            CacheConfig::with_capacity(1 << 20)
                .item_overhead(0)
                .shards(4)
                .storage(StorageKind::Slab)
                .slab_page_bytes(4096)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        );
        for i in 0..500u64 {
            c.put(&i.to_le_bytes(), i.to_string().into_bytes(), T0);
        }
        for i in 0..500u64 {
            assert_eq!(
                c.get(&i.to_le_bytes(), T0).as_deref(),
                Some(i.to_string().as_bytes())
            );
        }
        let slab = c.slab_stats().expect("slab backend");
        assert_eq!(slab.classes.iter().map(|cl| cl.items).sum::<u64>(), 500);
        assert!(slab.pages_allocated > 0);
        assert!(slab.page_bytes_total() >= slab.live_bytes());
        assert_eq!(engine(1 << 20, 4).slab_stats(), None, "heap backend");
    }

    #[test]
    fn with_key_shard_makes_compound_ops_atomic() {
        let c = Arc::new(engine(1 << 20, 8));
        c.put(b"counter", b"0".to_vec(), T0);
        let threads = 8;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.with_key_shard(b"counter", |e| {
                            let v: u64 = std::str::from_utf8(e.peek(b"counter").unwrap())
                                .unwrap()
                                .parse()
                                .unwrap();
                            e.put(b"counter", (v + 1).to_string().into_bytes(), T0);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            c.peek(b"counter").as_deref(),
            Some((threads * per_thread).to_string().as_bytes())
        );
    }
}
