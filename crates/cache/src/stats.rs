//! Cache statistics counters.

/// Cumulative operation counters for one cache engine, in the spirit
/// of memcached's `stats` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// `put` calls (inserts and updates).
    pub sets: u64,
    /// Explicit `delete` calls that removed a key.
    pub deletes: u64,
    /// Items evicted by the LRU policy to make room.
    pub evictions: u64,
    /// Items reaped after their expiry time (lazy or swept).
    pub expired: u64,
    /// Stores rejected because the item could never fit the shard's
    /// capacity budget (memcached's `SERVER_ERROR object too large`).
    pub rejected: u64,
}

impl CacheStats {
    /// Total `get` calls.
    #[must_use]
    pub fn gets(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio over all `get`s, or 0 if none have happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let gets = self.gets();
        if gets == 0 {
            0.0
        } else {
            self.hits as f64 / gets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_empty_and_counts() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        s.expired = 2;
        assert_eq!(s.gets(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }
}
