//! The LRU cache engine with digest integration.

use std::fmt;

use proteus_bloom::{BloomFilter, CountingBloomFilter};
use proteus_sim::{SimDuration, SimTime};

use crate::config::{CacheConfig, StorageKind};
use crate::index::KeyIndex;
use crate::slab::{ChunkLoc, SlabError, SlabStats, SlabStore};
use crate::stats::CacheStats;
use crate::SharedBytes;

const NIL: u32 = u32::MAX;

/// How many extra LRU evictions a slab placement may perform when the
/// store reports `Full` (fragmentation or view-pinned pages) before the
/// item falls back to the heap path. Bounds the worst-case `set`.
const SLAB_EVICT_RETRY_LIMIT: u32 = 64;

/// FNV-1a with a splitmix64-style finalizer. The finalizer matters:
/// `ShardedEngine::shard_of` picks shards from folded FNV bits, and the
/// per-shard index must not see hashes correlated with that fold or
/// every key in a shard would share home buckets.
fn hash_key(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Heap-backed item payload: the original one-allocation-per-value
/// layout. Boxed so the common slab slot stays small.
#[derive(Debug)]
struct HeapItem {
    key: Box<[u8]>,
    value: SharedBytes,
}

/// Where a slot's bytes live.
#[derive(Debug)]
enum ValueRepr {
    /// Slot is on the free list.
    Free,
    /// `[key][value]` live in a slab page chunk.
    Slab(ChunkLoc),
    /// Key and value are individual heap allocations (heap backend, or
    /// slab overflow/oversize fallback).
    Heap(Box<HeapItem>),
}

#[derive(Debug)]
struct Slot {
    repr: ValueRepr,
    /// Full [`hash_key`] hash; lets index growth/deletion and probe
    /// filtering skip key-byte reads.
    hash: u64,
    klen: u32,
    vlen: u32,
    last_access: SimTime,
    /// Absolute expiry instant; `SimTime::MAX` means never.
    expires_at: SimTime,
    prev: u32,
    next: u32,
}

/// What a store operation did: whether the item was stored at all
/// (`false` = rejected as larger than the engine's whole budget) and
/// how many LRU evictions made room for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreOutcome {
    /// The item is now cached.
    pub stored: bool,
    /// Items evicted to make room.
    pub evicted: u64,
}

/// The stored key bytes of a live slot, wherever they live.
fn slot_key<'a>(slots: &'a [Slot], store: &'a Option<SlabStore>, idx: u32) -> &'a [u8] {
    let slot = &slots[idx as usize];
    match &slot.repr {
        ValueRepr::Heap(item) => &item.key,
        ValueRepr::Slab(loc) => store
            .as_ref()
            .expect("slab slot without slab store")
            .key_slice(*loc, slot.klen as usize),
        ValueRepr::Free => unreachable!("reading key of a free slot"),
    }
}

/// The stored value bytes of a live slot.
fn slot_value<'a>(slots: &'a [Slot], store: &'a Option<SlabStore>, idx: u32) -> &'a [u8] {
    let slot = &slots[idx as usize];
    match &slot.repr {
        ValueRepr::Heap(item) => &item.value[..],
        ValueRepr::Slab(loc) => store
            .as_ref()
            .expect("slab slot without slab store")
            .value_slice(*loc, slot.klen as usize, slot.vlen as usize),
        ValueRepr::Free => unreachable!("reading value of a free slot"),
    }
}

/// A single cache server's storage engine: an LRU-evicting key-value
/// store with byte-capacity accounting and a counting-Bloom digest kept
/// exactly consistent with the contents.
///
/// Digest maintenance mirrors the paper's memcached modification: the
/// digest inserts on the item-link path ([`put`](Self::put)) and
/// removes on the item-unlink path (explicit [`delete`](Self::delete),
/// LRU eviction, and value replacement re-links), so
/// `digest().contains(k)` is `true` exactly for cached keys (modulo
/// Bloom false positives).
///
/// Item bytes live in one of two backends selected by
/// [`CacheConfig::storage`]: the heap path (one allocation per item)
/// or the memcached-style slab store (size-classed 1 MiB pages,
/// DESIGN.md §12). The backends are behaviourally identical; every
/// item is charged `key + value + item_overhead` bytes against
/// `capacity_bytes` either way, so eviction decisions — and therefore
/// digest contents — do not depend on the backend.
///
/// # Example
///
/// ```
/// use proteus_cache::{CacheConfig, CacheEngine};
/// use proteus_sim::SimTime;
///
/// let mut cache = CacheEngine::new(CacheConfig::with_capacity(64 * 1024));
/// cache.put(b"a", b"alpha".to_vec(), SimTime::ZERO);
/// assert_eq!(cache.get(b"a", SimTime::ZERO).map(<[u8]>::to_vec), Some(b"alpha".to_vec()));
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct CacheEngine {
    config: CacheConfig,
    index: KeyIndex,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    bytes_used: u64,
    store: Option<SlabStore>,
    digest: CountingBloomFilter,
    stats: CacheStats,
}

impl CacheEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let store = match config.storage {
            StorageKind::Heap => None,
            StorageKind::Slab => {
                // Page budget: the payload capacity plus 30% slack for
                // chunk rounding and partially-filled pages, plus two
                // pages of headroom so tiny configurations still have
                // pages to reassign between classes. An explicit
                // `slab_page_budget` overrides the derivation.
                let page = u64::from(config.slab_page_bytes.max(1024));
                let budget = config.capacity_bytes.saturating_mul(13) / 10;
                let max_pages = match config.slab_page_budget {
                    0 => budget.div_ceil(page) + 2,
                    pages => pages,
                };
                Some(SlabStore::new(config.slab_page_bytes, max_pages))
            }
        };
        CacheEngine {
            config,
            index: KeyIndex::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes_used: 0,
            store,
            digest: CountingBloomFilter::new(config.digest),
            stats: CacheStats::default(),
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of cached items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// Bytes currently accounted (keys + values + per-item overhead).
    #[must_use]
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Slab-store usage snapshot, or `None` on the heap backend.
    #[must_use]
    pub fn slab_stats(&self) -> Option<SlabStats> {
        self.store.as_ref().map(SlabStore::stats)
    }

    /// Audits internal storage accounting, panicking on drift: slab
    /// chunk conservation per page, per-class counter agreement, the
    /// page-budget bound, and that accounted bytes stay within the
    /// capacity budget. A no-op in spirit for the heap backend (only
    /// the capacity check applies). Intended for tests; cost is
    /// proportional to the number of slab pages.
    pub fn assert_storage_consistent(&self) {
        if let Some(store) = &self.store {
            store.assert_consistent();
        }
        assert!(
            self.bytes_used <= self.config.capacity_bytes || self.index.len() == 0,
            "accounted bytes {} exceed capacity {}",
            self.bytes_used,
            self.config.capacity_bytes
        );
    }

    /// The live counting-Bloom digest.
    #[must_use]
    pub fn digest(&self) -> &CountingBloomFilter {
        &self.digest
    }

    /// Snapshot of the digest as a broadcast-ready bit filter — the
    /// engine-level equivalent of `get("SET_BLOOM_FILTER")` followed by
    /// `get("BLOOM_FILTER")`.
    #[must_use]
    pub fn digest_snapshot(&self) -> BloomFilter {
        self.digest.snapshot()
    }

    fn entry_cost(&self, klen: usize, vlen: usize) -> u64 {
        klen as u64 + vlen as u64 + u64::from(self.config.item_overhead)
    }

    /// Index lookup: the slot holding exactly `key`, if any.
    fn find_slot(&self, key: &[u8], hash: u64) -> Option<u32> {
        let slots = &self.slots;
        let store = &self.store;
        self.index.find(hash, |s| {
            slots[s as usize].hash == hash && slot_key(slots, store, s) == key
        })
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, refreshing its recency and last-access time.
    /// Returns the value bytes if present and not expired.
    ///
    /// Expiry is lazy, memcached-style: an expired item is unlinked
    /// (digest updated) the first time anything looks at it.
    pub fn get(&mut self, key: &[u8], now: SimTime) -> Option<&[u8]> {
        self.hit_slot(key, now)
            .map(|idx| slot_value(&self.slots, &self.store, idx))
    }

    /// Like [`get`](Self::get), but hands back the value's shared
    /// buffer. A hit is a refcount bump — no byte copy, no allocation —
    /// whichever backend holds the bytes (the slab store hands out a
    /// window into its page), so this is the lookup the concurrent TCP
    /// tier uses under its shard mutex.
    pub fn get_shared(&mut self, key: &[u8], now: SimTime) -> Option<SharedBytes> {
        self.hit_slot(key, now).map(|idx| self.shared_view(idx))
    }

    /// The shared view of a live slot's value (refcount bump only).
    fn shared_view(&self, idx: u32) -> SharedBytes {
        let slot = &self.slots[idx as usize];
        match &slot.repr {
            ValueRepr::Heap(item) => SharedBytes::clone(&item.value),
            ValueRepr::Slab(loc) => self
                .store
                .as_ref()
                .expect("slab slot without slab store")
                .value_view(*loc, slot.klen as usize, slot.vlen as usize),
            ValueRepr::Free => unreachable!("viewing a free slot"),
        }
    }

    /// Shared hit path: reaps an expired item, refreshes recency and
    /// last-access on a hit, and moves the hit/miss counters. Returns
    /// the slot index on a hit.
    fn hit_slot(&mut self, key: &[u8], now: SimTime) -> Option<u32> {
        let hash = hash_key(key);
        match self.find_slot(key, hash) {
            Some(idx) if self.slots[idx as usize].expires_at <= now => {
                self.remove_slot(idx);
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            Some(idx) => {
                self.detach(idx);
                self.push_front(idx);
                self.slots[idx as usize].last_access = now;
                self.stats.hits += 1;
                Some(idx)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Refreshes `key`'s recency and last-access time without reading
    /// the value (the memcached `touch` command). Returns whether the
    /// key was present. Does not count as a hit or miss.
    pub fn touch(&mut self, key: &[u8], now: SimTime) -> bool {
        let hash = hash_key(key);
        match self.find_slot(key, hash) {
            Some(idx) if self.slots[idx as usize].expires_at <= now => {
                self.remove_slot(idx);
                self.stats.expired += 1;
                false
            }
            Some(idx) => {
                self.detach(idx);
                self.push_front(idx);
                self.slots[idx as usize].last_access = now;
                true
            }
            None => false,
        }
    }

    /// Non-mutating lookup: neither recency nor statistics change.
    /// Expired-but-not-yet-reaped items still show here (they are
    /// physically present until something touches them), matching
    /// digest semantics.
    #[must_use]
    pub fn peek(&self, key: &[u8]) -> Option<&[u8]> {
        self.find_slot(key, hash_key(key))
            .map(|idx| slot_value(&self.slots, &self.store, idx))
    }

    /// [`peek`](Self::peek) returning the shared value buffer (refcount
    /// bump, no byte copy, no side effects).
    #[must_use]
    pub fn peek_shared(&self, key: &[u8]) -> Option<SharedBytes> {
        self.find_slot(key, hash_key(key))
            .map(|idx| self.shared_view(idx))
    }

    /// Presence probe for compound storage commands (`add`/`replace`):
    /// reaps the item if it has expired (like [`get`](Self::get)), but
    /// moves **no** statistics and does not refresh recency. memcached's
    /// `add` on a present key is not a cache read and must not count as
    /// a `get` hit.
    pub fn probe(&mut self, key: &[u8], now: SimTime) -> bool {
        let hash = hash_key(key);
        match self.find_slot(key, hash) {
            Some(idx) if self.slots[idx as usize].expires_at <= now => {
                self.remove_slot(idx);
                self.stats.expired += 1;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    /// The absolute expiry instant of `key`, if cached:
    /// `Some(SimTime::MAX)` means it never expires; `None` means the
    /// key is absent. Expired-but-unreaped items still report their
    /// (past) deadline, matching [`peek`](Self::peek) semantics.
    #[must_use]
    pub fn expiry_of(&self, key: &[u8]) -> Option<SimTime> {
        self.find_slot(key, hash_key(key))
            .map(|idx| self.slots[idx as usize].expires_at)
    }

    /// Reaps every expired item now (memcached leaves this to lazy
    /// access; an explicit sweep is useful before digest snapshots so
    /// broadcast digests do not advertise dead items). Returns the
    /// number of items reaped.
    pub fn sweep_expired(&mut self, now: SimTime) -> u64 {
        let mut expired = Vec::new();
        let mut cursor = self.head;
        while cursor != NIL {
            let slot = &self.slots[cursor as usize];
            if slot.expires_at <= now {
                expired.push(cursor);
            }
            cursor = slot.next;
        }
        let count = expired.len() as u64;
        for idx in expired {
            self.remove_slot(idx);
            self.stats.expired += 1;
        }
        count
    }

    /// Whether `key` is cached (no recency/stat side effects).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.find_slot(key, hash_key(key)).is_some()
    }

    /// Inserts or replaces `key` with no expiry, evicting LRU items
    /// until the new item fits.
    ///
    /// A replacement is an unlink of the old item plus a link of the
    /// new one, exactly as memcached's `do_item_unlink`/`do_item_link`
    /// pair would drive the digest. An item whose accounted cost
    /// exceeds the engine's entire capacity is **rejected** (memcached's
    /// `SERVER_ERROR object too large`): nothing is evicted for it and
    /// a pre-existing value under the key survives untouched.
    pub fn put(
        &mut self,
        key: &[u8],
        value: impl Into<SharedBytes> + AsRef<[u8]>,
        now: SimTime,
    ) -> StoreOutcome {
        self.put_with_expiry(key, value, now, None)
    }

    /// Inserts or replaces `key`, optionally expiring it `ttl` after
    /// `now` (the memcached `exptime`; the paper's "fixed expiration
    /// duration" eviction strategy). `None` never expires.
    pub fn put_with_expiry(
        &mut self,
        key: &[u8],
        value: impl Into<SharedBytes> + AsRef<[u8]>,
        now: SimTime,
        ttl: Option<SimDuration>,
    ) -> StoreOutcome {
        self.put_with_deadline(key, value, now, ttl.map_or(SimTime::MAX, |d| now + d))
    }

    /// Inserts or replaces `key` with an **absolute** expiry instant
    /// (`SimTime::MAX` = never). This is the primitive `incr`/`decr`
    /// need to rewrite a counter's value while preserving the original
    /// item's deadline, as memcached does.
    pub fn put_with_deadline(
        &mut self,
        key: &[u8],
        value: impl Into<SharedBytes> + AsRef<[u8]>,
        now: SimTime,
        expires_at: SimTime,
    ) -> StoreOutcome {
        self.stats.sets += 1;
        let hash = hash_key(key);
        let klen = key.len();
        let vlen = value.as_ref().len();
        let cost = self.entry_cost(klen, vlen);
        if cost > self.config.capacity_bytes {
            // Rejecting (rather than evicting the whole cache and then
            // failing anyway) keeps any existing value under the key.
            self.stats.rejected += 1;
            return StoreOutcome {
                stored: false,
                evicted: 0,
            };
        }
        // Replace = unlink old + link new. Unlinking first frees the
        // old chunk, which the new value often reuses immediately.
        if let Some(idx) = self.find_slot(key, hash) {
            self.remove_slot(idx);
        }
        let mut evicted = 0;
        while self.bytes_used + cost > self.config.capacity_bytes && self.tail != NIL {
            self.remove_slot(self.tail);
            self.stats.evictions += 1;
            evicted += 1;
        }
        let repr = if self.store.is_some() {
            match self.place_slab(key, value.as_ref(), &mut evicted) {
                Some(loc) => ValueRepr::Slab(loc),
                None => {
                    // Oversize for the class table, or pages pinned /
                    // fragmented beyond the retry budget: the heap path
                    // always succeeds, so a within-budget set never
                    // fails outright.
                    self.store
                        .as_mut()
                        .expect("checked is_some")
                        .note_heap_fallback();
                    ValueRepr::Heap(Box::new(HeapItem {
                        key: key.into(),
                        value: value.into(),
                    }))
                }
            }
        } else {
            ValueRepr::Heap(Box::new(HeapItem {
                key: key.into(),
                value: value.into(),
            }))
        };
        let slot = Slot {
            repr,
            hash,
            klen: u32::try_from(klen).expect("key length exceeds u32"),
            vlen: u32::try_from(vlen).expect("value length exceeds u32"),
            last_access: now,
            expires_at,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(free) = self.free.pop() {
            self.slots[free as usize] = slot;
            free
        } else {
            let idx = u32::try_from(self.slots.len()).expect("cache slot overflow");
            self.slots.push(slot);
            idx
        };
        let slots = &self.slots;
        self.index.insert(hash, idx, |s| slots[s as usize].hash);
        self.push_front(idx);
        self.bytes_used += cost;
        self.digest.insert(key);
        StoreOutcome {
            stored: true,
            evicted,
        }
    }

    /// Tries to place `[key][bytes]` in the slab store, evicting up to
    /// [`SLAB_EVICT_RETRY_LIMIT`] extra LRU items if the store is full.
    /// `None` means "use the heap path" — never an unbounded loop.
    fn place_slab(&mut self, key: &[u8], bytes: &[u8], evicted: &mut u64) -> Option<ChunkLoc> {
        let mut attempts = 0;
        loop {
            let store = self.store.as_mut().expect("slab engine");
            match store.insert(key, bytes) {
                Ok(loc) => return Some(loc),
                Err(SlabError::Oversize) => return None,
                Err(SlabError::Full) => {
                    if self.tail == NIL || attempts >= SLAB_EVICT_RETRY_LIMIT {
                        return None;
                    }
                    self.remove_slot(self.tail);
                    self.stats.evictions += 1;
                    *evicted += 1;
                    attempts += 1;
                }
            }
        }
    }

    fn remove_slot(&mut self, idx: u32) {
        self.detach(idx);
        let i = idx as usize;
        let (hash, klen, vlen) = {
            let s = &self.slots[i];
            (s.hash, s.klen as usize, s.vlen as usize)
        };
        match std::mem::replace(&mut self.slots[i].repr, ValueRepr::Free) {
            ValueRepr::Heap(item) => {
                self.digest.remove(&item.key);
            }
            ValueRepr::Slab(loc) => {
                let store = self.store.as_mut().expect("slab slot without slab store");
                self.digest.remove(store.key_slice(loc, klen));
                store.free(loc, klen + vlen);
            }
            ValueRepr::Free => unreachable!("removing a free slot"),
        }
        let slots = &self.slots;
        self.index.remove(hash, idx, |s| slots[s as usize].hash);
        self.bytes_used -= self.entry_cost(klen, vlen);
        self.free.push(idx);
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        match self.find_slot(key, hash_key(key)) {
            Some(idx) => {
                self.remove_slot(idx);
                self.stats.deletes += 1;
                true
            }
            None => false,
        }
    }

    /// Whether `key` is cached *and* was accessed within `ttl` of
    /// `now` — the paper's definition of "hot" data (Section II).
    #[must_use]
    pub fn is_hot(&self, key: &[u8], now: SimTime, ttl: SimDuration) -> bool {
        self.find_slot(key, hash_key(key))
            .map(|idx| now.saturating_since(self.slots[idx as usize].last_access) <= ttl)
            .unwrap_or(false)
    }

    /// Number of items accessed within `ttl` of `now`.
    #[must_use]
    pub fn hot_items(&self, now: SimTime, ttl: SimDuration) -> usize {
        let mut count = 0;
        let mut cursor = self.head;
        while cursor != NIL {
            let slot = &self.slots[cursor as usize];
            if now.saturating_since(slot.last_access) <= ttl {
                count += 1;
            }
            cursor = slot.next;
        }
        count
    }

    /// Iterates over cached keys in MRU→LRU order.
    pub fn keys(&self) -> impl Iterator<Item = &[u8]> + '_ {
        LruIter {
            slots: &self.slots,
            store: &self.store,
            cursor: self.head,
        }
    }

    /// Empties the cache (a server powering off loses its contents).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes_used = 0;
        if let Some(store) = &mut self.store {
            store.clear();
        }
        self.digest.clear();
    }
}

struct LruIter<'a> {
    slots: &'a [Slot],
    store: &'a Option<SlabStore>,
    cursor: u32,
}

impl<'a> Iterator for LruIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.cursor == NIL {
            return None;
        }
        let idx = self.cursor;
        self.cursor = self.slots[idx as usize].next;
        Some(slot_key(self.slots, self.store, idx))
    }
}

impl fmt::Debug for CacheEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheEngine")
            .field("items", &self.len())
            .field("bytes_used", &self.bytes_used)
            .field("capacity_bytes", &self.config.capacity_bytes)
            .field("storage", &self.config.storage)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_bloom::BloomConfig;

    fn engine(capacity: u64) -> CacheEngine {
        CacheEngine::new(
            CacheConfig::with_capacity(capacity)
                .item_overhead(0)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        )
    }

    fn slab_engine(capacity: u64) -> CacheEngine {
        CacheEngine::new(
            CacheConfig::with_capacity(capacity)
                .item_overhead(0)
                .storage(StorageKind::Slab)
                .slab_page_bytes(4096)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        )
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn get_put_roundtrip_and_stats() {
        let mut c = engine(1 << 16);
        assert!(c.get(b"k", T0).is_none());
        c.put(b"k", b"v".to_vec(), T0);
        assert_eq!(c.get(b"k", T0).unwrap(), b"v");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.sets), (1, 1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replacement_updates_value_and_bytes() {
        let mut c = engine(1 << 16);
        c.put(b"k", vec![0; 100], T0);
        let before = c.bytes_used();
        c.put(b"k", vec![0; 10], T0);
        assert_eq!(c.bytes_used(), before - 90);
        assert_eq!(c.get(b"k", T0).unwrap().len(), 10);
        assert_eq!(c.len(), 1);
        assert!(c.digest().contains(b"k"));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Capacity for exactly 3 items of 10+1 bytes.
        let mut c = engine(33);
        c.put(b"a", vec![0; 10], T0);
        c.put(b"b", vec![0; 10], T0);
        c.put(b"c", vec![0; 10], T0);
        // Touch "a" so "b" is now LRU.
        assert!(c.get(b"a", T0).is_some());
        let outcome = c.put(b"d", vec![0; 10], T0);
        assert_eq!(outcome.evicted, 1);
        assert!(outcome.stored);
        assert!(!c.contains(b"b"), "b was LRU");
        assert!(c.contains(b"a") && c.contains(b"c") && c.contains(b"d"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = engine(1000);
        for i in 0..200u64 {
            c.put(&i.to_le_bytes(), vec![0; 50], T0);
            assert!(c.bytes_used() <= 1000, "over capacity at item {i}");
        }
    }

    #[test]
    fn oversized_item_is_rejected_and_leaves_contents_intact() {
        let mut c = engine(100);
        c.put(b"small", vec![0; 10], T0);
        // A 200-byte item can never fit a 100-byte budget: it is
        // rejected outright, evicting nothing.
        let outcome = c.put(b"huge", vec![0; 200], T0);
        assert!(!outcome.stored);
        assert_eq!(outcome.evicted, 0);
        assert!(!c.contains(b"huge"));
        assert!(!c.digest().contains(b"huge"));
        assert_eq!(c.peek(b"small"), Some(&[0u8; 10][..]), "survivor intact");
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.stats().evictions, 0);
        // A replace that would not fit keeps the old value too.
        let outcome = c.put(b"small", vec![1; 150], T0);
        assert!(!outcome.stored);
        assert_eq!(c.peek(b"small"), Some(&[0u8; 10][..]));
        assert_eq!(c.stats().rejected, 2);
    }

    #[test]
    fn digest_tracks_contents_through_eviction() {
        let mut c = engine(120);
        for i in 0..50u64 {
            c.put(&i.to_le_bytes(), vec![0; 10], T0);
        }
        // Only a handful fit; digest must agree with contents for all
        // current keys and report evicted ones absent (small filter
        // false-positive rate aside, which the wide test filter avoids).
        let mut present = 0;
        for i in 0..50u64 {
            let key = i.to_le_bytes();
            if c.contains(&key) {
                assert!(
                    c.digest().contains(&key),
                    "cached key {i} missing from digest"
                );
                present += 1;
            } else {
                assert!(
                    !c.digest().contains(&key),
                    "evicted key {i} still in digest"
                );
            }
        }
        assert!(present > 0);
    }

    #[test]
    fn delete_unlinks_and_updates_digest() {
        let mut c = engine(1 << 16);
        c.put(b"k", vec![1, 2, 3], T0);
        assert!(c.delete(b"k"));
        assert!(!c.delete(b"k"));
        assert!(!c.contains(b"k"));
        assert!(!c.digest().contains(b"k"));
        assert_eq!(c.stats().deletes, 1);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn hotness_follows_last_access_and_ttl() {
        let ttl = SimDuration::from_secs(60);
        let mut c = engine(1 << 16);
        c.put(b"k", vec![0; 4], T0);
        assert!(c.is_hot(b"k", T0 + SimDuration::from_secs(30), ttl));
        assert!(!c.is_hot(b"k", T0 + SimDuration::from_secs(61), ttl));
        // A get refreshes hotness.
        let t40 = T0 + SimDuration::from_secs(40);
        assert!(c.get(b"k", t40).is_some());
        assert!(c.is_hot(b"k", t40 + SimDuration::from_secs(59), ttl));
        assert!(!c.is_hot(b"missing", T0, ttl));
    }

    #[test]
    fn hot_items_counts_only_recent() {
        let ttl = SimDuration::from_secs(10);
        let mut c = engine(1 << 16);
        c.put(b"old", vec![0; 4], T0);
        let t20 = T0 + SimDuration::from_secs(20);
        c.put(b"new", vec![0; 4], t20);
        assert_eq!(c.hot_items(t20, ttl), 1);
        assert_eq!(c.hot_items(T0 + SimDuration::from_secs(5), ttl), 2);
    }

    #[test]
    fn keys_iterate_mru_to_lru() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![0], T0);
        c.put(b"b", vec![0], T0);
        c.put(b"c", vec![0], T0);
        let _ = c.get(b"a", T0); // a becomes MRU
        let order: Vec<&[u8]> = c.keys().collect();
        assert_eq!(order, [b"a".as_slice(), b"c", b"b"]);
    }

    #[test]
    fn get_shared_hands_out_the_same_buffer() {
        let mut c = engine(1 << 16);
        c.put(b"k", b"shared".to_vec(), T0);
        let a = c.get_shared(b"k", T0).unwrap();
        let b = c.get_shared(b"k", T0).unwrap();
        assert!(
            SharedBytes::ptr_eq(&a, &b),
            "repeated hits must share one allocation"
        );
        let p = c.peek_shared(b"k").unwrap();
        assert!(SharedBytes::ptr_eq(&a, &p));
        assert_eq!(&a[..], b"shared");
        assert_eq!(c.stats().hits, 2);
        // The buffer outlives deletion for holders of the view.
        assert!(c.delete(b"k"));
        assert_eq!(&a[..], b"shared");
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut c = engine(1 << 16);
        for round in 0..10 {
            for i in 0..100u64 {
                c.put(&i.to_le_bytes(), vec![round; 8], T0);
            }
            for i in 0..100u64 {
                assert!(c.delete(&i.to_le_bytes()));
            }
        }
        assert!(c.is_empty());
        // The slot table should not have grown past one round's worth.
        assert!(c.slots.len() <= 100, "slot table grew to {}", c.slots.len());
    }

    #[test]
    fn clear_resets_all_state() {
        let mut c = engine(1 << 16);
        c.put(b"k", vec![0; 10], T0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes_used(), 0);
        assert!(!c.digest().contains(b"k"));
        assert_eq!(c.keys().count(), 0);
    }

    #[test]
    fn touch_refreshes_recency_without_stats() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![1], T0);
        c.put(b"b", vec![2], T0);
        let before = c.stats();
        let later = T0 + SimDuration::from_secs(5);
        assert!(c.touch(b"a", later));
        assert!(!c.touch(b"missing", later));
        assert_eq!(c.stats(), before, "touch must not move hit/miss counters");
        // "a" is MRU again and its hotness window restarted.
        assert_eq!(c.keys().next().unwrap(), b"a");
        assert!(c.is_hot(
            b"a",
            later + SimDuration::from_secs(3),
            SimDuration::from_secs(4)
        ));
    }

    #[test]
    fn slab_incr_rewrite_under_a_pinned_view_keeps_accounting_exact() {
        // The server's incr path (probe → expiry_of → peek →
        // put_with_deadline) rewrites the counter while a client may
        // still hold the get result pinning the counter's page. With a
        // single-page budget the rewrite cannot go back to the pinned
        // page, so it must heap-fallback — counted, with per-class
        // accounting staying exact — and return to the slab once the
        // view drops.
        let mut c = CacheEngine::new(
            CacheConfig::with_capacity(1 << 16)
                .item_overhead(0)
                .storage(StorageKind::Slab)
                .slab_page_bytes(1024)
                .slab_page_budget(1)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        );
        c.put(b"ctr", b"41".to_vec(), T0);
        let pin = c.get_shared(b"ctr", T0).unwrap();
        assert_eq!(&pin[..], b"41");

        // The server's numeric_op composition.
        assert!(c.probe(b"ctr", T0));
        let deadline = c.expiry_of(b"ctr").unwrap();
        let current: u64 = std::str::from_utf8(&c.peek_shared(b"ctr").unwrap())
            .unwrap()
            .parse()
            .unwrap();
        let outcome =
            c.put_with_deadline(b"ctr", (current + 1).to_string().into_bytes(), T0, deadline);
        assert!(outcome.stored);

        // New value visible; the outstanding view still reads the old
        // bytes; the fallback is counted, not silent.
        assert_eq!(c.get(b"ctr", T0).unwrap(), b"42");
        assert_eq!(&pin[..], b"41", "pinned view must not be rewritten");
        let stats = c.slab_stats().unwrap();
        assert_eq!(stats.heap_fallbacks, 1, "fallback must be counted");
        let slab_live: u64 = stats.classes.iter().map(|cl| cl.live_bytes).sum();
        assert_eq!(slab_live, 0, "old chunk freed, new value on the heap");
        assert_eq!(c.bytes_used(), 5, "key + value, single accounting model");
        c.assert_storage_consistent();

        // View dropped: the next rewrite lands back in the slab with no
        // further fallbacks and exact per-class bytes.
        drop(pin);
        c.put_with_deadline(b"ctr", b"43".to_vec(), T0, deadline);
        assert_eq!(c.get(b"ctr", T0).unwrap(), b"43");
        let stats = c.slab_stats().unwrap();
        assert_eq!(stats.heap_fallbacks, 1, "no new fallback once unpinned");
        let slab_live: u64 = stats.classes.iter().map(|cl| cl.live_bytes).sum();
        assert_eq!(slab_live, 5);
        assert_eq!(c.bytes_used(), 5);
        c.assert_storage_consistent();
    }

    #[test]
    fn probe_reports_presence_without_stats_or_recency() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![1], T0);
        c.put(b"b", vec![2], T0);
        let before = c.stats();
        assert!(c.probe(b"a", T0));
        assert!(!c.probe(b"missing", T0));
        assert_eq!(c.stats(), before, "probe must not move hit/miss counters");
        // LRU order unchanged: "b" still MRU despite the probe on "a".
        assert_eq!(c.keys().next().unwrap(), b"b");
        // An expired item is reaped by the probe (counted as expired,
        // never as a miss) and reads as absent.
        c.put_with_expiry(b"gone", vec![3], T0, Some(SimDuration::from_secs(5)));
        let later = T0 + SimDuration::from_secs(6);
        assert!(!c.probe(b"gone", later));
        assert!(!c.contains(b"gone"));
        assert_eq!(c.stats().expired, before.expired + 1);
        assert_eq!(c.stats().misses, before.misses);
    }

    #[test]
    fn put_with_deadline_preserves_an_absolute_expiry() {
        let mut c = engine(1 << 16);
        c.put_with_expiry(b"k", b"1".to_vec(), T0, Some(SimDuration::from_secs(10)));
        let deadline = c.expiry_of(b"k").unwrap();
        assert_eq!(deadline, T0 + SimDuration::from_secs(10));
        // Rewrite the value 4 seconds in, keeping the original deadline.
        let t4 = T0 + SimDuration::from_secs(4);
        c.put_with_deadline(b"k", b"2".to_vec(), t4, deadline);
        assert_eq!(c.expiry_of(b"k"), Some(deadline));
        assert!(c.get(b"k", T0 + SimDuration::from_secs(9)).is_some());
        assert!(c.get(b"k", T0 + SimDuration::from_secs(10)).is_none());
        // Items without a TTL report the MAX sentinel; absent keys None.
        c.put(b"forever", vec![0], T0);
        assert_eq!(c.expiry_of(b"forever"), Some(SimTime::MAX));
        assert_eq!(c.expiry_of(b"nope"), None);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![1], T0);
        c.put(b"b", vec![2], T0);
        let before = c.stats();
        assert_eq!(c.peek(b"a"), Some(&[1u8][..]));
        assert_eq!(c.peek(b"nope"), None);
        assert_eq!(c.stats(), before);
        // LRU order unchanged: "b" still MRU.
        assert_eq!(c.keys().next().unwrap(), b"b");
    }

    // ---- slab backend ----

    #[test]
    fn slab_roundtrip_digest_and_stats() {
        let mut c = slab_engine(1 << 16);
        assert!(c.get(b"k", T0).is_none());
        c.put(b"k", b"v".to_vec(), T0);
        assert_eq!(c.get(b"k", T0).unwrap(), b"v");
        assert!(c.digest().contains(b"k"));
        assert!(c.delete(b"k"));
        assert!(!c.digest().contains(b"k"));
        let slab = c.slab_stats().expect("slab backend");
        assert_eq!(slab.classes.iter().map(|cl| cl.items).sum::<u64>(), 0);
        assert!(slab.pages_allocated >= 1, "a page was touched");
    }

    #[test]
    fn slab_get_shared_is_a_window_into_the_page() {
        let mut c = slab_engine(1 << 16);
        c.put(b"k", b"slabbed".to_vec(), T0);
        let a = c.get_shared(b"k", T0).unwrap();
        let b = c.get_shared(b"k", T0).unwrap();
        assert!(SharedBytes::ptr_eq(&a, &b), "hits alias the page window");
        assert_eq!(&a[..], b"slabbed");
        // The page outlives deletion for holders of a view.
        assert!(c.delete(b"k"));
        assert_eq!(&a[..], b"slabbed");
        // Two keys in one page: distinct windows, same backing buffer.
        c.put(b"x", b"one".to_vec(), T0);
        c.put(b"y", b"two".to_vec(), T0);
        let x = c.peek_shared(b"x").unwrap();
        let y = c.peek_shared(b"y").unwrap();
        assert!(!SharedBytes::ptr_eq(&x, &y));
        assert_eq!(&x[..], b"one");
        assert_eq!(&y[..], b"two");
    }

    #[test]
    fn slab_oversize_item_takes_the_heap_path() {
        // Page size 4096: a 6000-byte value exceeds every size class
        // but fits the byte budget, so it lands on the heap untouched.
        let mut c = slab_engine(1 << 20);
        let outcome = c.put(b"big", vec![9u8; 6000], T0);
        assert!(outcome.stored);
        assert_eq!(c.get(b"big", T0).unwrap(), &vec![9u8; 6000][..]);
        assert_eq!(c.slab_stats().unwrap().heap_fallbacks, 1);
        // Deleting it must not disturb slab accounting.
        assert!(c.delete(b"big"));
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn slab_eviction_and_rejection_match_heap_semantics() {
        let mut heap = engine(1000);
        let mut slab = slab_engine(1000);
        for c in [&mut heap, &mut slab] {
            for i in 0..200u64 {
                c.put(&i.to_le_bytes(), vec![0; 50], T0);
                assert!(c.bytes_used() <= 1000);
            }
            let outcome = c.put(b"way-too-big", vec![0; 2000], T0);
            assert!(!outcome.stored);
        }
        assert_eq!(heap.len(), slab.len());
        assert_eq!(heap.bytes_used(), slab.bytes_used());
        assert_eq!(heap.stats(), slab.stats());
        let hk: Vec<Vec<u8>> = heap.keys().map(<[u8]>::to_vec).collect();
        let sk: Vec<Vec<u8>> = slab.keys().map(<[u8]>::to_vec).collect();
        assert_eq!(hk, sk, "identical LRU contents and order");
    }

    #[test]
    fn slab_churn_keeps_accounting_consistent() {
        let mut c = slab_engine(64 * 1024);
        // Mixed sizes, several waves of overwrite + delete churn.
        for wave in 0..6u64 {
            for i in 0..500u64 {
                let len = 8 + ((i * 37 + wave * 11) % 600) as usize;
                c.put(&i.to_le_bytes(), vec![wave as u8; len], T0);
            }
            for i in (0..500u64).step_by(3) {
                c.delete(&i.to_le_bytes());
            }
        }
        let slab = c.slab_stats().expect("slab backend");
        let live: u64 = slab.classes.iter().map(|cl| cl.live_bytes).sum();
        assert!(
            slab.page_bytes_total() >= live,
            "pages ({}) must cover live bytes ({live})",
            slab.page_bytes_total()
        );
        // Accounted payload bytes equal slab live bytes (overhead 0,
        // no heap fallbacks for these sizes).
        assert_eq!(slab.heap_fallbacks, 0);
        assert_eq!(c.bytes_used(), live);
    }
}
