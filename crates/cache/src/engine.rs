//! The LRU cache engine with digest integration.

use std::collections::HashMap;
use std::fmt;

use proteus_bloom::{BloomFilter, CountingBloomFilter};
use proteus_sim::{SimDuration, SimTime};

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use crate::SharedBytes;

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Slot {
    key: Box<[u8]>,
    value: SharedBytes,
    last_access: SimTime,
    /// Absolute expiry instant; `SimTime::MAX` means never.
    expires_at: SimTime,
    prev: u32,
    next: u32,
}

/// A single cache server's storage engine: an LRU-evicting key-value
/// store with byte-capacity accounting and a counting-Bloom digest kept
/// exactly consistent with the contents.
///
/// Digest maintenance mirrors the paper's memcached modification: the
/// digest inserts on the item-link path ([`put`](Self::put)) and
/// removes on the item-unlink path (explicit [`delete`](Self::delete),
/// LRU eviction, and value replacement re-links), so
/// `digest().contains(k)` is `true` exactly for cached keys (modulo
/// Bloom false positives).
///
/// # Example
///
/// ```
/// use proteus_cache::{CacheConfig, CacheEngine};
/// use proteus_sim::SimTime;
///
/// let mut cache = CacheEngine::new(CacheConfig::with_capacity(64 * 1024));
/// cache.put(b"a", b"alpha".to_vec(), SimTime::ZERO);
/// assert_eq!(cache.get(b"a", SimTime::ZERO).map(<[u8]>::to_vec), Some(b"alpha".to_vec()));
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct CacheEngine {
    config: CacheConfig,
    index: HashMap<Box<[u8]>, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    bytes_used: u64,
    digest: CountingBloomFilter,
    stats: CacheStats,
}

impl CacheEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        CacheEngine {
            config,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes_used: 0,
            digest: CountingBloomFilter::new(config.digest),
            stats: CacheStats::default(),
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of cached items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes currently accounted (keys + values + per-item overhead).
    #[must_use]
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The live counting-Bloom digest.
    #[must_use]
    pub fn digest(&self) -> &CountingBloomFilter {
        &self.digest
    }

    /// Snapshot of the digest as a broadcast-ready bit filter — the
    /// engine-level equivalent of `get("SET_BLOOM_FILTER")` followed by
    /// `get("BLOOM_FILTER")`.
    #[must_use]
    pub fn digest_snapshot(&self) -> BloomFilter {
        self.digest.snapshot()
    }

    fn entry_cost(&self, key: &[u8], value: &[u8]) -> u64 {
        key.len() as u64 + value.len() as u64 + u64::from(self.config.item_overhead)
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, refreshing its recency and last-access time.
    /// Returns the value bytes if present and not expired.
    ///
    /// Expiry is lazy, memcached-style: an expired item is unlinked
    /// (digest updated) the first time anything looks at it.
    pub fn get(&mut self, key: &[u8], now: SimTime) -> Option<&[u8]> {
        self.hit_slot(key, now)
            .map(|idx| &self.slots[idx as usize].value[..])
    }

    /// Like [`get`](Self::get), but hands back the value's shared
    /// buffer. A hit is a refcount bump — no byte copy — so this is the
    /// lookup the concurrent TCP tier uses under its shard mutex.
    pub fn get_shared(&mut self, key: &[u8], now: SimTime) -> Option<SharedBytes> {
        self.hit_slot(key, now)
            .map(|idx| SharedBytes::clone(&self.slots[idx as usize].value))
    }

    /// Shared hit path: reaps an expired item, refreshes recency and
    /// last-access on a hit, and moves the hit/miss counters. Returns
    /// the slot index on a hit.
    fn hit_slot(&mut self, key: &[u8], now: SimTime) -> Option<u32> {
        match self.index.get(key).copied() {
            Some(idx) if self.slots[idx as usize].expires_at <= now => {
                self.remove_slot(idx);
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            Some(idx) => {
                self.detach(idx);
                self.push_front(idx);
                self.slots[idx as usize].last_access = now;
                self.stats.hits += 1;
                Some(idx)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Refreshes `key`'s recency and last-access time without reading
    /// the value (the memcached `touch` command). Returns whether the
    /// key was present. Does not count as a hit or miss.
    pub fn touch(&mut self, key: &[u8], now: SimTime) -> bool {
        match self.index.get(key).copied() {
            Some(idx) if self.slots[idx as usize].expires_at <= now => {
                self.remove_slot(idx);
                self.stats.expired += 1;
                false
            }
            Some(idx) => {
                self.detach(idx);
                self.push_front(idx);
                self.slots[idx as usize].last_access = now;
                true
            }
            None => false,
        }
    }

    /// Non-mutating lookup: neither recency nor statistics change.
    /// Expired-but-not-yet-reaped items still show here (they are
    /// physically present until something touches them), matching
    /// digest semantics.
    #[must_use]
    pub fn peek(&self, key: &[u8]) -> Option<&[u8]> {
        self.index
            .get(key)
            .map(|&idx| &self.slots[idx as usize].value[..])
    }

    /// [`peek`](Self::peek) returning the shared value buffer (refcount
    /// bump, no byte copy, no side effects).
    #[must_use]
    pub fn peek_shared(&self, key: &[u8]) -> Option<SharedBytes> {
        self.index
            .get(key)
            .map(|&idx| SharedBytes::clone(&self.slots[idx as usize].value))
    }

    /// Presence probe for compound storage commands (`add`/`replace`):
    /// reaps the item if it has expired (like [`get`](Self::get)), but
    /// moves **no** statistics and does not refresh recency. memcached's
    /// `add` on a present key is not a cache read and must not count as
    /// a `get` hit.
    pub fn probe(&mut self, key: &[u8], now: SimTime) -> bool {
        match self.index.get(key).copied() {
            Some(idx) if self.slots[idx as usize].expires_at <= now => {
                self.remove_slot(idx);
                self.stats.expired += 1;
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    /// The absolute expiry instant of `key`, if cached:
    /// `Some(SimTime::MAX)` means it never expires; `None` means the
    /// key is absent. Expired-but-unreaped items still report their
    /// (past) deadline, matching [`peek`](Self::peek) semantics.
    #[must_use]
    pub fn expiry_of(&self, key: &[u8]) -> Option<SimTime> {
        self.index
            .get(key)
            .map(|&idx| self.slots[idx as usize].expires_at)
    }

    /// Reaps every expired item now (memcached leaves this to lazy
    /// access; an explicit sweep is useful before digest snapshots so
    /// broadcast digests do not advertise dead items). Returns the
    /// number of items reaped.
    pub fn sweep_expired(&mut self, now: SimTime) -> u64 {
        let expired: Vec<u32> = self
            .index
            .values()
            .copied()
            .filter(|&idx| self.slots[idx as usize].expires_at <= now)
            .collect();
        let count = expired.len() as u64;
        for idx in expired {
            self.remove_slot(idx);
            self.stats.expired += 1;
        }
        count
    }

    /// Whether `key` is cached (no recency/stat side effects).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts or replaces `key` with no expiry, then evicts LRU items
    /// until the engine is within capacity. Returns the number of
    /// evictions the call caused.
    ///
    /// A replacement is an unlink of the old item plus a link of the
    /// new one, exactly as memcached's `do_item_unlink`/`do_item_link`
    /// pair would drive the digest.
    pub fn put(&mut self, key: &[u8], value: impl Into<SharedBytes>, now: SimTime) -> u64 {
        self.put_with_expiry(key, value, now, None)
    }

    /// Inserts or replaces `key`, optionally expiring it `ttl` after
    /// `now` (the memcached `exptime`; the paper's "fixed expiration
    /// duration" eviction strategy). `None` never expires.
    pub fn put_with_expiry(
        &mut self,
        key: &[u8],
        value: impl Into<SharedBytes>,
        now: SimTime,
        ttl: Option<SimDuration>,
    ) -> u64 {
        self.put_with_deadline(key, value, now, ttl.map_or(SimTime::MAX, |d| now + d))
    }

    /// Inserts or replaces `key` with an **absolute** expiry instant
    /// (`SimTime::MAX` = never). This is the primitive `incr`/`decr`
    /// need to rewrite a counter's value while preserving the original
    /// item's deadline, as memcached does.
    pub fn put_with_deadline(
        &mut self,
        key: &[u8],
        value: impl Into<SharedBytes>,
        now: SimTime,
        expires_at: SimTime,
    ) -> u64 {
        let value: SharedBytes = value.into();
        self.stats.sets += 1;
        if let Some(&idx) = self.index.get(key) {
            // Replace in place: digest sees unlink(old) + link(new).
            let old_cost = {
                let s = &self.slots[idx as usize];
                self.entry_cost(&s.key, &s.value)
            };
            self.digest.remove(key);
            self.bytes_used -= old_cost;
            let slot = &mut self.slots[idx as usize];
            slot.value = value;
            slot.last_access = now;
            slot.expires_at = expires_at;
            let new_cost = self.entry_cost(key, &self.slots[idx as usize].value);
            self.bytes_used += new_cost;
            self.digest.insert(key);
            self.detach(idx);
            self.push_front(idx);
        } else {
            let cost = self.entry_cost(key, &value);
            let slot = Slot {
                key: key.to_vec().into_boxed_slice(),
                value,
                last_access: now,
                expires_at,
                prev: NIL,
                next: NIL,
            };
            let idx = if let Some(free) = self.free.pop() {
                self.slots[free as usize] = slot;
                free
            } else {
                let idx = u32::try_from(self.slots.len()).expect("cache slot overflow");
                self.slots.push(slot);
                idx
            };
            self.index.insert(key.to_vec().into_boxed_slice(), idx);
            self.push_front(idx);
            self.bytes_used += cost;
            self.digest.insert(key);
        }
        self.evict_to_capacity()
    }

    fn evict_to_capacity(&mut self) -> u64 {
        let mut evicted = 0;
        while self.bytes_used > self.config.capacity_bytes && self.tail != NIL {
            self.remove_slot(self.tail);
            self.stats.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    fn remove_slot(&mut self, idx: u32) {
        self.detach(idx);
        // Taking the payloads both empties the freed slot and hands us
        // the key for index/digest removal without cloning it.
        let key = std::mem::take(&mut self.slots[idx as usize].key);
        let value = std::mem::take(&mut self.slots[idx as usize].value);
        let cost = self.entry_cost(&key, &value[..]);
        self.index.remove(&key);
        self.digest.remove(&key);
        self.bytes_used -= cost;
        self.free.push(idx);
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        match self.index.get(key).copied() {
            Some(idx) => {
                self.remove_slot(idx);
                self.stats.deletes += 1;
                true
            }
            None => false,
        }
    }

    /// Whether `key` is cached *and* was accessed within `ttl` of
    /// `now` — the paper's definition of "hot" data (Section II).
    #[must_use]
    pub fn is_hot(&self, key: &[u8], now: SimTime, ttl: SimDuration) -> bool {
        self.index
            .get(key)
            .map(|&idx| now.saturating_since(self.slots[idx as usize].last_access) <= ttl)
            .unwrap_or(false)
    }

    /// Number of items accessed within `ttl` of `now`.
    #[must_use]
    pub fn hot_items(&self, now: SimTime, ttl: SimDuration) -> usize {
        self.index
            .values()
            .filter(|&&idx| now.saturating_since(self.slots[idx as usize].last_access) <= ttl)
            .count()
    }

    /// Iterates over cached keys in MRU→LRU order.
    pub fn keys(&self) -> impl Iterator<Item = &[u8]> + '_ {
        LruIter {
            engine: self,
            cursor: self.head,
        }
    }

    /// Empties the cache (a server powering off loses its contents).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes_used = 0;
        self.digest.clear();
    }
}

struct LruIter<'a> {
    engine: &'a CacheEngine,
    cursor: u32,
}

impl<'a> Iterator for LruIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.engine.slots[self.cursor as usize];
        self.cursor = slot.next;
        Some(&slot.key)
    }
}

impl fmt::Debug for CacheEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheEngine")
            .field("items", &self.len())
            .field("bytes_used", &self.bytes_used)
            .field("capacity_bytes", &self.config.capacity_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_bloom::BloomConfig;

    fn engine(capacity: u64) -> CacheEngine {
        CacheEngine::new(
            CacheConfig::with_capacity(capacity)
                .item_overhead(0)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        )
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn get_put_roundtrip_and_stats() {
        let mut c = engine(1 << 16);
        assert!(c.get(b"k", T0).is_none());
        c.put(b"k", b"v".to_vec(), T0);
        assert_eq!(c.get(b"k", T0).unwrap(), b"v");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.sets), (1, 1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replacement_updates_value_and_bytes() {
        let mut c = engine(1 << 16);
        c.put(b"k", vec![0; 100], T0);
        let before = c.bytes_used();
        c.put(b"k", vec![0; 10], T0);
        assert_eq!(c.bytes_used(), before - 90);
        assert_eq!(c.get(b"k", T0).unwrap().len(), 10);
        assert_eq!(c.len(), 1);
        assert!(c.digest().contains(b"k"));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Capacity for exactly 3 items of 10+1 bytes.
        let mut c = engine(33);
        c.put(b"a", vec![0; 10], T0);
        c.put(b"b", vec![0; 10], T0);
        c.put(b"c", vec![0; 10], T0);
        // Touch "a" so "b" is now LRU.
        assert!(c.get(b"a", T0).is_some());
        let evicted = c.put(b"d", vec![0; 10], T0);
        assert_eq!(evicted, 1);
        assert!(!c.contains(b"b"), "b was LRU");
        assert!(c.contains(b"a") && c.contains(b"c") && c.contains(b"d"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = engine(1000);
        for i in 0..200u64 {
            c.put(&i.to_le_bytes(), vec![0; 50], T0);
            assert!(c.bytes_used() <= 1000, "over capacity at item {i}");
        }
    }

    #[test]
    fn oversized_item_evicts_everything_then_itself_stays_if_it_fits() {
        let mut c = engine(100);
        c.put(b"small", vec![0; 10], T0);
        // 200-byte item cannot fit: everything is evicted including it.
        c.put(b"huge", vec![0; 200], T0);
        assert!(c.is_empty(), "oversized item cannot be cached");
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn digest_tracks_contents_through_eviction() {
        let mut c = engine(120);
        for i in 0..50u64 {
            c.put(&i.to_le_bytes(), vec![0; 10], T0);
        }
        // Only a handful fit; digest must agree with contents for all
        // current keys and report evicted ones absent (small filter
        // false-positive rate aside, which the wide test filter avoids).
        let mut present = 0;
        for i in 0..50u64 {
            let key = i.to_le_bytes();
            if c.contains(&key) {
                assert!(
                    c.digest().contains(&key),
                    "cached key {i} missing from digest"
                );
                present += 1;
            } else {
                assert!(
                    !c.digest().contains(&key),
                    "evicted key {i} still in digest"
                );
            }
        }
        assert!(present > 0);
    }

    #[test]
    fn delete_unlinks_and_updates_digest() {
        let mut c = engine(1 << 16);
        c.put(b"k", vec![1, 2, 3], T0);
        assert!(c.delete(b"k"));
        assert!(!c.delete(b"k"));
        assert!(!c.contains(b"k"));
        assert!(!c.digest().contains(b"k"));
        assert_eq!(c.stats().deletes, 1);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn hotness_follows_last_access_and_ttl() {
        let ttl = SimDuration::from_secs(60);
        let mut c = engine(1 << 16);
        c.put(b"k", vec![0; 4], T0);
        assert!(c.is_hot(b"k", T0 + SimDuration::from_secs(30), ttl));
        assert!(!c.is_hot(b"k", T0 + SimDuration::from_secs(61), ttl));
        // A get refreshes hotness.
        let t40 = T0 + SimDuration::from_secs(40);
        assert!(c.get(b"k", t40).is_some());
        assert!(c.is_hot(b"k", t40 + SimDuration::from_secs(59), ttl));
        assert!(!c.is_hot(b"missing", T0, ttl));
    }

    #[test]
    fn hot_items_counts_only_recent() {
        let ttl = SimDuration::from_secs(10);
        let mut c = engine(1 << 16);
        c.put(b"old", vec![0; 4], T0);
        let t20 = T0 + SimDuration::from_secs(20);
        c.put(b"new", vec![0; 4], t20);
        assert_eq!(c.hot_items(t20, ttl), 1);
        assert_eq!(c.hot_items(T0 + SimDuration::from_secs(5), ttl), 2);
    }

    #[test]
    fn keys_iterate_mru_to_lru() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![0], T0);
        c.put(b"b", vec![0], T0);
        c.put(b"c", vec![0], T0);
        let _ = c.get(b"a", T0); // a becomes MRU
        let order: Vec<&[u8]> = c.keys().collect();
        assert_eq!(order, [b"a".as_slice(), b"c", b"b"]);
    }

    #[test]
    fn get_shared_hands_out_the_same_buffer() {
        let mut c = engine(1 << 16);
        c.put(b"k", b"shared".to_vec(), T0);
        let a = c.get_shared(b"k", T0).unwrap();
        let b = c.get_shared(b"k", T0).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "repeated hits must share one allocation"
        );
        let p = c.peek_shared(b"k").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &p));
        assert_eq!(&a[..], b"shared");
        assert_eq!(c.stats().hits, 2);
        // The buffer outlives deletion for holders of the Arc.
        assert!(c.delete(b"k"));
        assert_eq!(&a[..], b"shared");
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut c = engine(1 << 16);
        for round in 0..10 {
            for i in 0..100u64 {
                c.put(&i.to_le_bytes(), vec![round; 8], T0);
            }
            for i in 0..100u64 {
                assert!(c.delete(&i.to_le_bytes()));
            }
        }
        assert!(c.is_empty());
        // The slab should not have grown past one round's worth.
        assert!(c.slots.len() <= 100, "slab grew to {}", c.slots.len());
    }

    #[test]
    fn clear_resets_all_state() {
        let mut c = engine(1 << 16);
        c.put(b"k", vec![0; 10], T0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes_used(), 0);
        assert!(!c.digest().contains(b"k"));
        assert_eq!(c.keys().count(), 0);
    }

    #[test]
    fn touch_refreshes_recency_without_stats() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![1], T0);
        c.put(b"b", vec![2], T0);
        let before = c.stats();
        let later = T0 + SimDuration::from_secs(5);
        assert!(c.touch(b"a", later));
        assert!(!c.touch(b"missing", later));
        assert_eq!(c.stats(), before, "touch must not move hit/miss counters");
        // "a" is MRU again and its hotness window restarted.
        assert_eq!(c.keys().next().unwrap(), b"a");
        assert!(c.is_hot(
            b"a",
            later + SimDuration::from_secs(3),
            SimDuration::from_secs(4)
        ));
    }

    #[test]
    fn probe_reports_presence_without_stats_or_recency() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![1], T0);
        c.put(b"b", vec![2], T0);
        let before = c.stats();
        assert!(c.probe(b"a", T0));
        assert!(!c.probe(b"missing", T0));
        assert_eq!(c.stats(), before, "probe must not move hit/miss counters");
        // LRU order unchanged: "b" still MRU despite the probe on "a".
        assert_eq!(c.keys().next().unwrap(), b"b");
        // An expired item is reaped by the probe (counted as expired,
        // never as a miss) and reads as absent.
        c.put_with_expiry(b"gone", vec![3], T0, Some(SimDuration::from_secs(5)));
        let later = T0 + SimDuration::from_secs(6);
        assert!(!c.probe(b"gone", later));
        assert!(!c.contains(b"gone"));
        assert_eq!(c.stats().expired, before.expired + 1);
        assert_eq!(c.stats().misses, before.misses);
    }

    #[test]
    fn put_with_deadline_preserves_an_absolute_expiry() {
        let mut c = engine(1 << 16);
        c.put_with_expiry(b"k", b"1".to_vec(), T0, Some(SimDuration::from_secs(10)));
        let deadline = c.expiry_of(b"k").unwrap();
        assert_eq!(deadline, T0 + SimDuration::from_secs(10));
        // Rewrite the value 4 seconds in, keeping the original deadline.
        let t4 = T0 + SimDuration::from_secs(4);
        c.put_with_deadline(b"k", b"2".to_vec(), t4, deadline);
        assert_eq!(c.expiry_of(b"k"), Some(deadline));
        assert!(c.get(b"k", T0 + SimDuration::from_secs(9)).is_some());
        assert!(c.get(b"k", T0 + SimDuration::from_secs(10)).is_none());
        // Items without a TTL report the MAX sentinel; absent keys None.
        c.put(b"forever", vec![0], T0);
        assert_eq!(c.expiry_of(b"forever"), Some(SimTime::MAX));
        assert_eq!(c.expiry_of(b"nope"), None);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c = engine(1 << 16);
        c.put(b"a", vec![1], T0);
        c.put(b"b", vec![2], T0);
        let before = c.stats();
        assert_eq!(c.peek(b"a"), Some(&[1u8][..]));
        assert_eq!(c.peek(b"nope"), None);
        assert_eq!(c.stats(), before);
        // LRU order unchanged: "b" still MRU.
        assert_eq!(c.keys().next().unwrap(), b"b");
    }
}
