//! Cache-engine configuration.

use proteus_bloom::BloomConfig;
use proteus_sim::SimDuration;

/// Configuration for a [`CacheEngine`](crate::CacheEngine).
///
/// The paper's deployment gives each memcached server 1 GB for 4 KB
/// page objects (Fig. 6 tunes this) and tracks "hot" data with a TTL
/// window (Section II: touched within the past `TTL` seconds).
///
/// # Example
///
/// ```
/// use proteus_cache::CacheConfig;
/// use proteus_sim::SimDuration;
///
/// let cfg = CacheConfig::with_capacity(1 << 30)
///     .hot_ttl(SimDuration::from_secs(60));
/// assert_eq!(cfg.capacity_bytes, 1 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum bytes of key+value payload (plus per-item overhead)
    /// held before LRU eviction kicks in.
    pub capacity_bytes: u64,
    /// The "hot" window: an item touched within this duration is hot
    /// and will be migrated on demand during a transition; older items
    /// may be discarded when their server powers off.
    pub hot_ttl: SimDuration,
    /// Accounted per-item metadata overhead, mirroring memcached's
    /// item-header cost.
    pub item_overhead: u32,
    /// Digest (counting Bloom filter) configuration.
    pub digest: BloomConfig,
    /// Number of independent shards a
    /// [`ShardedEngine`](crate::ShardedEngine) splits the capacity
    /// into (rounded up to a power of two, minimum 1). A plain
    /// [`CacheEngine`](crate::CacheEngine) ignores this.
    pub shards: usize,
}

impl CacheConfig {
    /// A configuration with the given payload capacity and defaults
    /// matching the paper's evaluation: 60 s hot TTL, 48-byte item
    /// overhead, and a digest sized for the item count the capacity
    /// implies at 4 KB objects (h = 4, as in Section VI-B).
    #[must_use]
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        let expected_items = (capacity_bytes / 4096).max(1024);
        CacheConfig {
            capacity_bytes,
            hot_ttl: SimDuration::from_secs(60),
            item_overhead: 48,
            digest: BloomConfig::optimal(expected_items, 4, 1e-4, 1e-4),
            shards: 8,
        }
    }

    /// Sets the hot-data TTL (builder style).
    #[must_use]
    pub fn hot_ttl(mut self, ttl: SimDuration) -> Self {
        self.hot_ttl = ttl;
        self
    }

    /// Sets the digest configuration (builder style).
    #[must_use]
    pub fn digest(mut self, digest: BloomConfig) -> Self {
        self.digest = digest;
        self
    }

    /// Sets the per-item accounting overhead (builder style).
    #[must_use]
    pub fn item_overhead(mut self, overhead: u32) -> Self {
        self.item_overhead = overhead;
        self
    }

    /// Sets the shard count for sharded engines (builder style).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = CacheConfig::with_capacity(1 << 30);
        assert_eq!(cfg.hot_ttl, SimDuration::from_secs(60));
        assert!(cfg.digest.counters > 0);
        // Digest sized for ~262k items at 4 KB each.
        assert!(cfg.digest.counters > 262_144);
    }

    #[test]
    fn builders_apply() {
        let digest = BloomConfig::new(1024, 4, 4);
        let cfg = CacheConfig::with_capacity(1 << 16)
            .hot_ttl(SimDuration::from_secs(5))
            .item_overhead(0)
            .shards(4)
            .digest(digest);
        assert_eq!(cfg.hot_ttl, SimDuration::from_secs(5));
        assert_eq!(cfg.item_overhead, 0);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.digest, digest);
    }
}
