//! Cache-engine configuration.

use proteus_bloom::BloomConfig;
use proteus_sim::SimDuration;

/// Which value-storage backend a [`CacheEngine`](crate::CacheEngine)
/// places item bytes in.
///
/// Both backends are behaviourally identical — same eviction order,
/// same accounting, same digest — and stay proptest-equivalent (see
/// `tests/storage_equivalence.rs`). `Heap` is the original one-
/// allocation-per-value path, kept as the correctness oracle; `Slab`
/// packs items into size-classed 1 MiB pages for multi-million-item
/// residency (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// One heap allocation per item (the PR-1 layout).
    #[default]
    Heap,
    /// Memcached-style slab pages with ~1.25-growth size classes.
    Slab,
}

/// Configuration for a [`CacheEngine`](crate::CacheEngine).
///
/// The paper's deployment gives each memcached server 1 GB for 4 KB
/// page objects (Fig. 6 tunes this) and tracks "hot" data with a TTL
/// window (Section II: touched within the past `TTL` seconds).
///
/// # Example
///
/// ```
/// use proteus_cache::CacheConfig;
/// use proteus_sim::SimDuration;
///
/// let cfg = CacheConfig::with_capacity(1 << 30)
///     .hot_ttl(SimDuration::from_secs(60));
/// assert_eq!(cfg.capacity_bytes, 1 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum bytes of key+value payload (plus per-item overhead)
    /// held before LRU eviction kicks in.
    pub capacity_bytes: u64,
    /// The "hot" window: an item touched within this duration is hot
    /// and will be migrated on demand during a transition; older items
    /// may be discarded when their server powers off.
    pub hot_ttl: SimDuration,
    /// Accounted per-item metadata overhead, mirroring memcached's
    /// item-header cost. Each stored item is charged
    /// `key.len() + value.len() + item_overhead` against
    /// `capacity_bytes`; the default 64 covers the engine's real
    /// bookkeeping (a ~44-byte slot, index bucket share, and LRU
    /// links), so the configured budget tracks actual memory even for
    /// tiny items.
    pub item_overhead: u32,
    /// Value-storage backend (see [`StorageKind`]).
    pub storage: StorageKind,
    /// Page size for [`StorageKind::Slab`], in bytes (default 1 MiB,
    /// clamped to ≥ 1 KiB). Items larger than one page go to the heap
    /// path. Ignored by [`StorageKind::Heap`].
    pub slab_page_bytes: u32,
    /// Hard page-count budget for [`StorageKind::Slab`]. `0` (the
    /// default) derives the budget from `capacity_bytes`: 1.3× the
    /// accounted capacity, which covers size-class rounding at the
    /// default `item_overhead`. Set explicitly when payload accounting
    /// and physical layout diverge badly — e.g. tiny pages with
    /// `item_overhead = 0` — and the slab should never run out of
    /// pages before LRU eviction frees them. Ignored by
    /// [`StorageKind::Heap`].
    pub slab_page_budget: u64,
    /// Digest (counting Bloom filter) configuration.
    pub digest: BloomConfig,
    /// Number of independent shards a
    /// [`ShardedEngine`](crate::ShardedEngine) splits the capacity
    /// into (rounded up to a power of two, minimum 1). A plain
    /// [`CacheEngine`](crate::CacheEngine) ignores this.
    pub shards: usize,
}

impl CacheConfig {
    /// A configuration with the given payload capacity and defaults
    /// matching the paper's evaluation: 60 s hot TTL, 64-byte item
    /// overhead, heap storage, and a digest sized for the item count
    /// the capacity implies at 4 KB objects (h = 4, as in Section
    /// VI-B).
    #[must_use]
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        let expected_items = (capacity_bytes / 4096).max(1024);
        CacheConfig {
            capacity_bytes,
            hot_ttl: SimDuration::from_secs(60),
            item_overhead: 64,
            digest: BloomConfig::optimal(expected_items, 4, 1e-4, 1e-4),
            shards: 8,
            storage: StorageKind::Heap,
            slab_page_bytes: 1 << 20,
            slab_page_budget: 0,
        }
    }

    /// Sets the hot-data TTL (builder style).
    #[must_use]
    pub fn hot_ttl(mut self, ttl: SimDuration) -> Self {
        self.hot_ttl = ttl;
        self
    }

    /// Sets the digest configuration (builder style).
    #[must_use]
    pub fn digest(mut self, digest: BloomConfig) -> Self {
        self.digest = digest;
        self
    }

    /// Sets the per-item accounting overhead (builder style).
    #[must_use]
    pub fn item_overhead(mut self, overhead: u32) -> Self {
        self.item_overhead = overhead;
        self
    }

    /// Sets the shard count for sharded engines (builder style).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the value-storage backend (builder style).
    #[must_use]
    pub fn storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the slab page size in bytes (builder style; slab backend
    /// only).
    #[must_use]
    pub fn slab_page_bytes(mut self, bytes: u32) -> Self {
        self.slab_page_bytes = bytes;
        self
    }

    /// Sets an explicit slab page budget, overriding the 1.3×-capacity
    /// derivation (builder style; slab backend only, `0` = derive).
    #[must_use]
    pub fn slab_page_budget(mut self, pages: u64) -> Self {
        self.slab_page_budget = pages;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = CacheConfig::with_capacity(1 << 30);
        assert_eq!(cfg.hot_ttl, SimDuration::from_secs(60));
        assert!(cfg.digest.counters > 0);
        // Digest sized for ~262k items at 4 KB each.
        assert!(cfg.digest.counters > 262_144);
    }

    #[test]
    fn builders_apply() {
        let digest = BloomConfig::new(1024, 4, 4);
        let cfg = CacheConfig::with_capacity(1 << 16)
            .hot_ttl(SimDuration::from_secs(5))
            .item_overhead(0)
            .shards(4)
            .digest(digest);
        assert_eq!(cfg.hot_ttl, SimDuration::from_secs(5));
        assert_eq!(cfg.item_overhead, 0);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.digest, digest);
    }

    #[test]
    fn storage_defaults_to_heap_and_builds_to_slab() {
        let cfg = CacheConfig::with_capacity(1 << 20);
        assert_eq!(cfg.storage, StorageKind::Heap);
        assert_eq!(cfg.slab_page_bytes, 1 << 20);
        let cfg = cfg.storage(StorageKind::Slab).slab_page_bytes(1 << 16);
        assert_eq!(cfg.storage, StorageKind::Slab);
        assert_eq!(cfg.slab_page_bytes, 1 << 16);
    }
}
