//! The cache-server engine: a memcached-like LRU key-value store with
//! a built-in counting Bloom filter digest.
//!
//! This is the reproduction's analogue of the paper's modified
//! memcached (Section V-A3): every item link updates the digest, every
//! unlink (delete *or* eviction) removes from it, so the digest is
//! always exactly consistent with the cache contents — the property
//! Algorithm 2 depends on.
//!
//! [`CacheEngine`] is deliberately single-threaded and deterministic;
//! the discrete-event simulator drives one engine per simulated cache
//! server. The TCP tier (`proteus-net`) uses [`ShardedEngine`], which
//! stripes keys across independent per-shard engines so concurrent
//! connections rarely contend, keeps statistics in lock-free atomics,
//! and answers digest snapshots one shard at a time.
//!
//! # Example
//!
//! ```
//! use proteus_cache::{CacheConfig, CacheEngine};
//! use proteus_sim::SimTime;
//!
//! let mut cache = CacheEngine::new(CacheConfig::with_capacity(1 << 20));
//! let t = SimTime::ZERO;
//! cache.put(b"page:1", vec![0u8; 4096], t);
//! assert!(cache.get(b"page:1", t).is_some());
//! assert!(cache.digest().contains(b"page:1"));
//! cache.delete(b"page:1");
//! assert!(!cache.digest().contains(b"page:1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod config;
mod engine;
mod index;
mod sharded;
mod slab;
mod stats;

pub use bytes::SharedBytes;
pub use config::{CacheConfig, StorageKind};
pub use engine::{CacheEngine, StoreOutcome};
pub use sharded::ShardedEngine;
pub use slab::{SlabClassStats, SlabStats};
pub use stats::CacheStats;
