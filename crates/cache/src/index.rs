//! A compact open-addressed key index: hash → slot number.
//!
//! At 10M+ resident items the engine's old `HashMap<Box<[u8]>, u32>`
//! carried a second copy of every key (the slot already owns one) plus
//! ~50 bytes of map node per item. This index stores **only** a `u32`
//! slot number per bucket — the keys themselves stay wherever the slot
//! put them (a heap buffer or a slab page), and all comparisons go
//! through caller-supplied closures. Cost per item: 4 bytes × the
//! table's load slack, instead of a duplicated key allocation plus a
//! map entry.
//!
//! Collision policy is linear probing with backward-shift deletion (no
//! tombstones, so long-lived churn cannot degrade probe lengths), at a
//! maximum load factor of 7/8. The engine stores each slot's full
//! 64-bit hash, so growth and deletion never have to touch key bytes.

/// Sentinel for an empty bucket.
const EMPTY: u32 = u32::MAX;

/// Minimum table capacity (buckets).
const MIN_CAPACITY: usize = 16;

/// Open-addressed `hash → slot` index. See the module docs.
#[derive(Debug)]
pub(crate) struct KeyIndex {
    buckets: Box<[u32]>,
    mask: u64,
    len: usize,
}

impl KeyIndex {
    pub(crate) fn new() -> KeyIndex {
        KeyIndex {
            buckets: vec![EMPTY; MIN_CAPACITY].into_boxed_slice(),
            mask: (MIN_CAPACITY - 1) as u64,
            len: 0,
        }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Finds the slot whose key hashes to `hash` and satisfies
    /// `matches` (full hash + key-byte comparison, supplied by the
    /// engine). Probes stop at the first empty bucket — correct
    /// because deletion backward-shifts instead of leaving tombstones.
    pub(crate) fn find(&self, hash: u64, mut matches: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = hash & self.mask;
        loop {
            let slot = self.buckets[i as usize];
            if slot == EMPTY {
                return None;
            }
            if matches(slot) {
                return Some(slot);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `slot` under `hash`. The caller guarantees the key is
    /// not already present. `slot_hash` reports the stored hash of an
    /// arbitrary slot and is only consulted when the table grows.
    pub(crate) fn insert(&mut self, hash: u64, slot: u32, slot_hash: impl Fn(u32) -> u64) {
        if (self.len + 1) * 8 > self.buckets.len() * 7 {
            self.grow(&slot_hash);
        }
        let mut i = hash & self.mask;
        while self.buckets[i as usize] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.buckets[i as usize] = slot;
        self.len += 1;
    }

    /// Removes `slot` (stored under `hash`), back-shifting any
    /// displaced followers so probe chains stay tombstone-free.
    /// Returns whether the slot was present.
    pub(crate) fn remove(&mut self, hash: u64, slot: u32, slot_hash: impl Fn(u32) -> u64) -> bool {
        // Locate the bucket actually holding `slot`.
        let mut i = hash & self.mask;
        loop {
            let v = self.buckets[i as usize];
            if v == EMPTY {
                return false;
            }
            if v == slot {
                break;
            }
            i = (i + 1) & self.mask;
        }
        // Backward-shift: walk the probe chain after the hole; any
        // entry whose home bucket lies at or before the hole (in probe
        // order) moves into it, opening a new hole further along.
        let mask = self.mask;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let v = self.buckets[j as usize];
            if v == EMPTY {
                break;
            }
            let home = slot_hash(v) & mask;
            // `v` may fill the hole iff the hole lies within v's probe
            // path, i.e. distance(home → j) >= distance(hole → j).
            let dist_home = j.wrapping_sub(home) & mask;
            let dist_hole = j.wrapping_sub(hole) & mask;
            if dist_home >= dist_hole {
                self.buckets[hole as usize] = v;
                hole = j;
            }
        }
        self.buckets[hole as usize] = EMPTY;
        self.len -= 1;
        true
    }

    /// Empties the index, keeping the current table size.
    pub(crate) fn clear(&mut self) {
        self.buckets.fill(EMPTY);
        self.len = 0;
    }

    fn grow(&mut self, slot_hash: impl Fn(u32) -> u64) {
        let new_cap = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![EMPTY; new_cap].into_boxed_slice());
        self.mask = (new_cap - 1) as u64;
        for &slot in old.iter().filter(|&&s| s != EMPTY) {
            let mut i = slot_hash(slot) & self.mask;
            while self.buckets[i as usize] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.buckets[i as usize] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Reference harness: slots are (hash, id) pairs held in a Vec;
    /// the index maps hash→slot exactly as the engine uses it.
    struct Harness {
        index: KeyIndex,
        slots: Vec<u64>, // slot id -> hash
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                index: KeyIndex::new(),
                slots: Vec::new(),
            }
        }

        fn insert(&mut self, hash: u64) -> u32 {
            let slot = self.slots.len() as u32;
            self.slots.push(hash);
            let slots = &self.slots;
            self.index.insert(hash, slot, |s| slots[s as usize]);
            slot
        }

        fn find(&self, hash: u64, want: u32) -> Option<u32> {
            self.index.find(hash, |s| s == want)
        }

        fn remove(&mut self, hash: u64, slot: u32) -> bool {
            let slots = &self.slots;
            self.index.remove(hash, slot, |s| slots[s as usize])
        }
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let mut h = Harness::new();
        let a = h.insert(11);
        let b = h.insert(22);
        assert_eq!(h.find(11, a), Some(a));
        assert_eq!(h.find(22, b), Some(b));
        assert_eq!(h.find(33, 99), None);
        assert!(h.remove(11, a));
        assert!(!h.remove(11, a));
        assert_eq!(h.find(11, a), None);
        assert_eq!(h.find(22, b), Some(b));
        assert_eq!(h.index.len(), 1);
    }

    #[test]
    fn colliding_hashes_probe_past_each_other() {
        // All hashes map to the same home bucket.
        let mut h = Harness::new();
        let slots: Vec<u32> = (0..8).map(|i| h.insert(16 * i)).collect();
        for (i, &s) in slots.iter().enumerate() {
            assert_eq!(h.find(16 * i as u64, s), Some(s), "entry {i}");
        }
        // Removing from the middle of the chain keeps the rest findable
        // (backward shift, no tombstones).
        assert!(h.remove(16 * 3, slots[3]));
        for (i, &s) in slots.iter().enumerate() {
            if i != 3 {
                assert_eq!(h.find(16 * i as u64, s), Some(s), "entry {i} after removal");
            }
        }
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut h = Harness::new();
        let n = 10_000u64;
        let hash_of = |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let slots: Vec<u32> = (0..n).map(|i| h.insert(hash_of(i))).collect();
        assert_eq!(h.index.len(), n as usize);
        for (i, &s) in slots.iter().enumerate() {
            assert_eq!(h.find(hash_of(i as u64), s), Some(s), "entry {i}");
        }
    }

    #[test]
    fn random_churn_matches_reference_map() {
        // Deterministic xorshift; mixes inserts, removals, lookups.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut h = Harness::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for _ in 0..50_000 {
            let key = rand() % 512; // small key space forces collisions
            let hash = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) & !0xf; // cluster homes
            match rand() % 3 {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = reference.entry(key) {
                        let slot = h.insert(hash);
                        e.insert(slot);
                    }
                }
                1 => {
                    if let Some(slot) = reference.remove(&key) {
                        assert!(h.remove(hash, slot), "remove key {key}");
                    }
                }
                _ => {
                    let expect = reference.get(&key).copied();
                    let got = h.index.find(hash, |s| Some(s) == expect);
                    assert_eq!(got, expect, "lookup key {key}");
                }
            }
            assert_eq!(h.index.len(), reference.len());
        }
    }
}
