//! Tests of per-item expiry — the paper's "fixed expiration duration"
//! eviction strategy (Section II makes no assumption about which
//! strategy runs; the engine supports both LRU and expiry).

use proteus_bloom::BloomConfig;
use proteus_cache::{CacheConfig, CacheEngine};
use proteus_sim::{SimDuration, SimTime};

fn engine() -> CacheEngine {
    CacheEngine::new(
        CacheConfig::with_capacity(1 << 20)
            .item_overhead(0)
            .digest(BloomConfig::new(1 << 13, 4, 4)),
    )
}

const T0: SimTime = SimTime::ZERO;

#[test]
fn items_expire_lazily_on_get() {
    let mut c = engine();
    c.put_with_expiry(b"k", b"v".to_vec(), T0, Some(SimDuration::from_secs(10)));
    assert_eq!(c.get(b"k", T0 + SimDuration::from_secs(9)), Some(&b"v"[..]));
    assert_eq!(c.get(b"k", T0 + SimDuration::from_secs(10)), None);
    assert!(!c.contains(b"k"), "expired item was unlinked");
    assert!(!c.digest().contains(b"k"), "digest updated on lazy expiry");
    assert_eq!(c.stats().expired, 1);
    assert_eq!(c.bytes_used(), 0);
}

#[test]
fn touch_reaps_expired_items() {
    let mut c = engine();
    c.put_with_expiry(b"k", b"v".to_vec(), T0, Some(SimDuration::from_secs(5)));
    assert!(!c.touch(b"k", T0 + SimDuration::from_secs(6)));
    assert!(!c.contains(b"k"));
    assert_eq!(c.stats().expired, 1);
}

#[test]
fn plain_put_never_expires() {
    let mut c = engine();
    c.put(b"forever", b"v".to_vec(), T0);
    let far = T0 + SimDuration::from_secs(1_000_000);
    assert!(c.get(b"forever", far).is_some());
    assert_eq!(c.stats().expired, 0);
}

#[test]
fn replacement_updates_the_expiry() {
    let mut c = engine();
    c.put_with_expiry(b"k", b"old".to_vec(), T0, Some(SimDuration::from_secs(5)));
    // Replace with a longer-lived value before expiry.
    let t3 = T0 + SimDuration::from_secs(3);
    c.put_with_expiry(b"k", b"new".to_vec(), t3, Some(SimDuration::from_secs(60)));
    let t30 = T0 + SimDuration::from_secs(30);
    assert_eq!(c.get(b"k", t30), Some(&b"new"[..]));
    // Replacing with no TTL clears the expiry entirely.
    c.put(b"k", b"eternal".to_vec(), t30);
    let far = T0 + SimDuration::from_secs(1_000_000);
    assert_eq!(c.get(b"k", far), Some(&b"eternal"[..]));
}

#[test]
fn sweep_reaps_everything_due() {
    let mut c = engine();
    for i in 0..100u32 {
        let ttl = SimDuration::from_secs(u64::from(i % 10) + 1); // 1..=10 s
        c.put_with_expiry(&i.to_le_bytes(), vec![0u8; 8], T0, Some(ttl));
    }
    c.put(b"immortal", vec![0u8; 8], T0);
    // At t = 5.5 s, TTLs 1..=5 are due: i % 10 ∈ {0..4} → 50 items.
    let reaped = c.sweep_expired(T0 + SimDuration::from_millis(5_500));
    assert_eq!(reaped, 50);
    assert_eq!(c.len(), 51);
    assert_eq!(c.stats().expired, 50);
    // Digest agrees with the survivors.
    for i in 0..100u32 {
        let key = i.to_le_bytes();
        assert_eq!(c.contains(&key), c.digest().contains(&key), "key {i}");
    }
    // A later sweep takes the rest but not the immortal item.
    let reaped = c.sweep_expired(T0 + SimDuration::from_secs(100));
    assert_eq!(reaped, 50);
    assert_eq!(c.len(), 1);
    assert!(c.contains(b"immortal"));
}

#[test]
fn expired_items_do_not_resurrect_via_lru() {
    // An expired item sitting at the MRU position must still die on
    // access, not shield itself through recency.
    let mut c = engine();
    c.put_with_expiry(b"short", b"v".to_vec(), T0, Some(SimDuration::from_secs(1)));
    // Touch it right before expiry (it is MRU now).
    assert!(c.touch(b"short", T0 + SimDuration::from_millis(900)));
    assert_eq!(c.get(b"short", T0 + SimDuration::from_secs(2)), None);
}

#[test]
fn hotness_and_expiry_are_independent_clocks() {
    let mut c = engine();
    let hot_ttl = SimDuration::from_secs(60);
    c.put_with_expiry(b"k", b"v".to_vec(), T0, Some(SimDuration::from_secs(10)));
    // Hot (touched recently) but expired: is_hot says hot, get reaps.
    let t11 = T0 + SimDuration::from_secs(11);
    assert!(c.is_hot(b"k", t11, hot_ttl), "hotness is about access time");
    assert_eq!(c.get(b"k", t11), None, "expiry still wins on access");
}
