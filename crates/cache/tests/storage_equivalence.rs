//! Slab-vs-heap storage equivalence.
//!
//! The slab backend is a pure storage substitution: every observable —
//! values returned, presence, LRU order, eviction timing, counters —
//! must be byte-identical to the heap backend under any operation
//! interleaving. This suite drives both backends through the same
//! random command streams (the same role `reactor_equivalence.rs`
//! plays for the two data planes) and diffs everything after every
//! step. The heap path thereby serves as the correctness oracle for
//! the slab allocator.
//!
//! `add`/`replace`/`incr`/`decr` are emulated here exactly the way the
//! TCP server composes them from engine primitives (probe + peek +
//! put_with_deadline under one lock), so the streams exercise the
//! read-modify-write shapes production traffic produces.

use proptest::prelude::*;
use proteus_bloom::BloomConfig;
use proteus_cache::{CacheConfig, CacheEngine, StorageKind};
use proteus_sim::{SimDuration, SimTime};

/// Operations mirror the server's command surface. Keys draw from a
/// small space so streams collide constantly; value lengths straddle
/// several slab size classes.
#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Set(u8, u16),
    /// Set with a short TTL so later ops observe expiry.
    SetExpiry(u8, u16, u8),
    Add(u8, u16),
    Replace(u8, u16),
    Delete(u8),
    Touch(u8),
    /// Store an ASCII number, for the incr/decr path.
    SetCounter(u8, u32),
    Incr(u8, u8),
    Decr(u8, u8),
    Sweep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Get),
        (any::<u8>(), 1u16..700).prop_map(|(k, n)| Op::Set(k, n)),
        (any::<u8>(), 1u16..300, 1u8..20).prop_map(|(k, n, t)| Op::SetExpiry(k, n, t)),
        (any::<u8>(), 1u16..300).prop_map(|(k, n)| Op::Add(k, n)),
        (any::<u8>(), 1u16..300).prop_map(|(k, n)| Op::Replace(k, n)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Touch),
        (any::<u8>(), any::<u32>()).prop_map(|(k, v)| Op::SetCounter(k, v)),
        (any::<u8>(), 1u8..50).prop_map(|(k, d)| Op::Incr(k, d)),
        (any::<u8>(), 1u8..50).prop_map(|(k, d)| Op::Decr(k, d)),
        Just(Op::Sweep),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key:{k:03}").into_bytes()
}

/// Deterministic value: a function of key and length so replacing a
/// key with a different length changes the bytes too.
fn value_bytes(k: u8, len: u16) -> Vec<u8> {
    (0..len as usize)
        .map(|i| (k as usize).wrapping_add(i.wrapping_mul(31)) as u8)
        .collect()
}

/// The server's `add`: store only when the key is absent (and not
/// expired) right now.
fn add(engine: &mut CacheEngine, key: &[u8], value: &[u8], now: SimTime) -> bool {
    if engine.probe(key, now) {
        false
    } else {
        engine.put(key, value, now).stored
    }
}

/// The server's `replace`: store only when the key is present.
fn replace(engine: &mut CacheEngine, key: &[u8], value: &[u8], now: SimTime) -> bool {
    if engine.probe(key, now) {
        engine.put(key, value, now).stored
    } else {
        false
    }
}

/// The server's `incr`/`decr`: parse the ASCII value, apply the delta
/// (decr floors at zero), and write back preserving the item's
/// original deadline. Returns the new value, or `None` on a miss or a
/// non-numeric value.
fn numeric_op(
    engine: &mut CacheEngine,
    key: &[u8],
    delta: u64,
    neg: bool,
    now: SimTime,
) -> Option<u64> {
    if !engine.probe(key, now) {
        return None;
    }
    let deadline = engine.expiry_of(key).unwrap_or(SimTime::MAX);
    let current = engine.peek(key)?;
    let parsed: u64 = std::str::from_utf8(current).ok()?.parse().ok()?;
    let next = if neg {
        parsed.saturating_sub(delta)
    } else {
        parsed.wrapping_add(delta)
    };
    engine.put_with_deadline(key, next.to_string().into_bytes(), now, deadline);
    Some(next)
}

fn engine_pair() -> (CacheEngine, CacheEngine) {
    let base = || {
        CacheConfig::with_capacity(4096)
            .item_overhead(0)
            .digest(BloomConfig::new(1 << 12, 4, 4))
    };
    let heap = CacheEngine::new(base());
    // An ample explicit page budget: with `item_overhead 0` and tiny
    // 1 KiB pages, chunk rounding can exceed the default 1.3× slack,
    // and a page-starved slab evicts *extra* items (correct, but a
    // different item set than the heap oracle). The equivalence claim
    // under test is the storage substitution itself, so pages are
    // plentiful here; the starved regime is covered by the engine's
    // own unit tests and the churn suite.
    let slab = CacheEngine::new(
        base()
            .storage(StorageKind::Slab)
            .slab_page_bytes(1024)
            .slab_page_budget(4096),
    );
    (heap, slab)
}

/// Diffs every observable the engines expose.
fn assert_same_state(heap: &CacheEngine, slab: &CacheEngine) {
    assert_eq!(heap.len(), slab.len(), "item counts diverged");
    assert_eq!(heap.bytes_used(), slab.bytes_used(), "accounting diverged");
    let hs = heap.stats();
    let ss = slab.stats();
    assert_eq!(hs, ss, "counters diverged");
    let heap_keys: Vec<&[u8]> = heap.keys().collect();
    let slab_keys: Vec<&[u8]> = slab.keys().collect();
    assert_eq!(heap_keys, slab_keys, "LRU order diverged");
    for key in heap_keys {
        assert_eq!(heap.peek(key), slab.peek(key), "value bytes diverged");
        assert_eq!(heap.expiry_of(key), slab.expiry_of(key), "expiry diverged");
    }
    slab.assert_storage_consistent();
}

proptest! {
    /// Both backends agree on every observable after every operation.
    #[test]
    fn slab_matches_heap_on_any_interleaving(
        ops in prop::collection::vec(op_strategy(), 1..300),
    ) {
        let (mut heap, mut slab) = engine_pair();
        let mut t = SimTime::ZERO;
        for op in &ops {
            t += SimDuration::from_millis(700);
            match op {
                Op::Get(k) => {
                    let key = key_bytes(*k);
                    let a = heap.get(&key, t).map(<[u8]>::to_vec);
                    let b = slab.get(&key, t).map(<[u8]>::to_vec);
                    prop_assert_eq!(a, b, "get diverged");
                }
                Op::Set(k, n) => {
                    let (key, value) = (key_bytes(*k), value_bytes(*k, *n));
                    let a = heap.put(&key, value.clone(), t);
                    let b = slab.put(&key, value, t);
                    prop_assert_eq!(a, b, "set outcome diverged");
                }
                Op::SetExpiry(k, n, ttl) => {
                    let (key, value) = (key_bytes(*k), value_bytes(*k, *n));
                    let ttl = Some(SimDuration::from_secs(u64::from(*ttl)));
                    let a = heap.put_with_expiry(&key, value.clone(), t, ttl);
                    let b = slab.put_with_expiry(&key, value, t, ttl);
                    prop_assert_eq!(a, b, "set-with-expiry outcome diverged");
                }
                Op::Add(k, n) => {
                    let (key, value) = (key_bytes(*k), value_bytes(*k, *n));
                    prop_assert_eq!(
                        add(&mut heap, &key, &value, t),
                        add(&mut slab, &key, &value, t),
                        "add diverged"
                    );
                }
                Op::Replace(k, n) => {
                    let (key, value) = (key_bytes(*k), value_bytes(*k, *n));
                    prop_assert_eq!(
                        replace(&mut heap, &key, &value, t),
                        replace(&mut slab, &key, &value, t),
                        "replace diverged"
                    );
                }
                Op::Delete(k) => {
                    let key = key_bytes(*k);
                    prop_assert_eq!(heap.delete(&key), slab.delete(&key), "delete diverged");
                }
                Op::Touch(k) => {
                    let key = key_bytes(*k);
                    prop_assert_eq!(heap.touch(&key, t), slab.touch(&key, t), "touch diverged");
                }
                Op::SetCounter(k, v) => {
                    let key = key_bytes(*k);
                    let value = v.to_string().into_bytes();
                    let a = heap.put(&key, value.clone(), t);
                    let b = slab.put(&key, value, t);
                    prop_assert_eq!(a, b, "counter set diverged");
                }
                Op::Incr(k, d) => {
                    let key = key_bytes(*k);
                    prop_assert_eq!(
                        numeric_op(&mut heap, &key, u64::from(*d), false, t),
                        numeric_op(&mut slab, &key, u64::from(*d), false, t),
                        "incr diverged"
                    );
                }
                Op::Decr(k, d) => {
                    let key = key_bytes(*k);
                    prop_assert_eq!(
                        numeric_op(&mut heap, &key, u64::from(*d), true, t),
                        numeric_op(&mut slab, &key, u64::from(*d), true, t),
                        "decr diverged"
                    );
                }
                Op::Sweep => {
                    prop_assert_eq!(heap.sweep_expired(t), slab.sweep_expired(t), "sweep diverged");
                }
            }
            assert_same_state(&heap, &slab);
        }
        // Whole-keyspace probe, including keys never written.
        for k in 0..=255u8 {
            let key = key_bytes(k);
            prop_assert_eq!(heap.peek(&key), slab.peek(&key));
            prop_assert_eq!(heap.contains(&key), slab.contains(&key));
        }
    }

    /// Oversize churn: streams biased toward values near and past the
    /// capacity limit, so rejection and mass-eviction paths get hit
    /// constantly on both backends.
    #[test]
    fn slab_matches_heap_under_oversize_pressure(
        ops in prop::collection::vec(
            (any::<u8>(), 1u32..6000).prop_map(|(k, n)| (k, n as usize)),
            1..120,
        ),
    ) {
        let (mut heap, mut slab) = engine_pair();
        let mut t = SimTime::ZERO;
        for (k, n) in &ops {
            t += SimDuration::from_millis(1);
            let key = key_bytes(*k);
            let value = vec![*k; *n];
            let a = heap.put(&key, value.clone(), t);
            let b = slab.put(&key, value, t);
            prop_assert_eq!(a, b, "outcome diverged at len {}", n);
            assert_same_state(&heap, &slab);
        }
    }
}
