//! Slab accounting under sustained eviction churn, in the *derived*
//! page-budget regime (the production configuration, where the slab
//! may run page-starved and take extra evictions or heap fallbacks).
//!
//! The equivalence suite pins behavior against the heap oracle with
//! pages to spare; these tests instead hammer the tight-budget paths
//! and check the invariants that must hold regardless: accounting
//! stays exact, pages cover live bytes, the capacity ceiling holds,
//! and every surviving value reads back byte-identical.

use proteus_cache::{CacheConfig, CacheEngine, ShardedEngine, StorageKind};
use proteus_sim::SimTime;

/// Local copy of the splitmix64 mix (`proteus-ring` is not a
/// dependency of this crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const CAPACITY: u64 = 1 << 20;

/// Deterministic mixed sizes: log-uniform-ish across 16..=4096 so the
/// stream crosses many size classes (and occasionally exceeds the
/// 4 KiB page, exercising the oversize heap path).
fn value_len(i: u64) -> usize {
    let r = splitmix64(i);
    let exp = 4 + (r % 9) as u32; // 2^4 ..= 2^12
    let base = 1usize << exp;
    base + (splitmix64(r) as usize % base)
}

fn value_of(i: u64) -> Vec<u8> {
    let len = value_len(i);
    let mut v = vec![(i % 251) as u8; len];
    v[..8].copy_from_slice(&splitmix64(i ^ 0xdead).to_le_bytes());
    v
}

#[test]
fn churn_at_twice_capacity_keeps_slab_accounting_exact() {
    let mut engine = CacheEngine::new(
        CacheConfig::with_capacity(CAPACITY)
            .storage(StorageKind::Slab)
            .slab_page_bytes(4096),
    );
    let mut written = 0u64;
    let mut i = 0u64;
    // Write until 2x capacity has flowed through: every byte past the
    // first capacity's worth is stored by evicting older items.
    while written < 2 * CAPACITY {
        let key = format!("churn:{i:010}");
        let value = value_of(i);
        written += value.len() as u64;
        engine.put(key.as_bytes(), value, SimTime::ZERO);
        if i.is_multiple_of(1024) {
            engine.assert_storage_consistent();
        }
        i += 1;
    }
    engine.assert_storage_consistent();
    let stats = engine.stats();
    assert!(stats.evictions > 0, "churn never evicted");
    assert!(engine.bytes_used() <= CAPACITY, "capacity ceiling broke");

    let slab = engine.slab_stats().expect("slab backend");
    assert!(
        slab.page_bytes_total() >= slab.live_bytes(),
        "{} live bytes claimed in {} page bytes",
        slab.live_bytes(),
        slab.page_bytes_total(),
    );
    // Class item counts must agree with the engine's own item count,
    // minus any items the starved slab pushed to the heap path.
    let slab_items: u64 = slab.classes.iter().map(|c| c.items).sum();
    assert!(
        slab_items <= engine.len() as u64,
        "slab tracks {slab_items} items but the engine holds {}",
        engine.len(),
    );

    // Every survivor reads back exactly the bytes written for it.
    let keys: Vec<Vec<u8>> = engine.keys().map(<[u8]>::to_vec).collect();
    assert_eq!(keys.len(), engine.len());
    for key in &keys {
        let idx: u64 = std::str::from_utf8(&key[6..]).unwrap().parse().unwrap();
        assert_eq!(
            engine.peek(key).expect("listed key present"),
            &value_of(idx)[..],
            "value corrupted for item {idx}",
        );
    }
}

#[test]
fn sharded_churn_cycle_survives_and_reads_back() {
    let engine = ShardedEngine::new(
        CacheConfig::with_capacity(CAPACITY)
            .shards(4)
            .storage(StorageKind::Slab)
            .slab_page_bytes(4096),
    );
    let mut written = 0u64;
    let mut i = 0u64;
    while written < 2 * CAPACITY {
        let key = format!("churn:{i:010}");
        let value = value_of(i);
        written += value.len() as u64;
        engine.put(key.as_bytes(), value, SimTime::ZERO);
        i += 1;
    }
    engine.assert_storage_consistent();
    assert!(engine.bytes_used() <= CAPACITY);
    assert!(engine.stats().evictions > 0);
    let slab = engine.slab_stats().expect("slab backend");
    assert!(slab.page_bytes_total() >= slab.live_bytes());
    // Fragmentation is a ratio by construction.
    assert!((0.0..=1.0).contains(&slab.fragmentation()));

    // The most recent items are the MRU survivors on their shards:
    // re-read a recent window and verify every hit byte-for-byte.
    let mut hits = 0u32;
    for j in i.saturating_sub(200)..i {
        let key = format!("churn:{j:010}");
        if let Some(got) = engine.get(key.as_bytes(), SimTime::ZERO) {
            assert_eq!(&got[..], &value_of(j)[..], "value corrupted for item {j}");
            hits += 1;
        }
    }
    assert!(hits > 100, "recent window mostly evicted ({hits}/200 hits)");
}

#[test]
fn value_larger_than_shard_budget_is_rejected_cleanly() {
    // 4 shards split the capacity, so a quarter-capacity value can
    // never fit its shard even though it is far below the total. The
    // put must return un-stored promptly — no eviction storm wiping
    // the shard, no unbounded retry loop — and leave residents alone.
    let engine = ShardedEngine::new(
        CacheConfig::with_capacity(CAPACITY)
            .shards(4)
            .storage(StorageKind::Slab)
            .slab_page_bytes(4096),
    );
    for i in 0..500u32 {
        engine.put(
            format!("resident:{i}").as_bytes(),
            vec![7u8; 512],
            SimTime::ZERO,
        );
    }
    let before = engine.len();
    let huge = vec![0xEE; (CAPACITY / 2) as usize];
    let outcome = engine.put(b"whale", &huge[..], SimTime::ZERO);
    assert!(!outcome.stored, "over-budget value must be rejected");
    assert_eq!(outcome.evicted, 0, "rejection must not evict residents");
    assert_eq!(engine.len(), before, "residents disturbed by rejection");
    assert!(!engine.contains(b"whale"));
    assert_eq!(engine.stats().rejected, 1);
    // The same value is rejected identically on the heap backend.
    let heap = ShardedEngine::new(CacheConfig::with_capacity(CAPACITY).shards(4));
    let outcome = heap.put(b"whale", &huge[..], SimTime::ZERO);
    assert!(!outcome.stored);
    assert_eq!(heap.stats().rejected, 1);
}
