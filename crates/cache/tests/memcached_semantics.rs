//! Scenario tests pinning the engine's memcached-like semantics that
//! the Proteus protocol depends on.

use proteus_bloom::BloomConfig;
use proteus_cache::{CacheConfig, CacheEngine};
use proteus_sim::{SimDuration, SimTime};

fn engine_with(capacity: u64, overhead: u32) -> CacheEngine {
    CacheEngine::new(
        CacheConfig::with_capacity(capacity)
            .item_overhead(overhead)
            .digest(BloomConfig::new(1 << 14, 4, 4)),
    )
}

/// The byte accounting matches memcached's key+value+header model, so
/// capacity planning (Fig. 6's GB-per-server sweep) is faithful.
#[test]
fn byte_accounting_includes_overhead() {
    let mut c = engine_with(1 << 20, 48);
    c.put(b"abc", vec![0u8; 100], SimTime::ZERO);
    assert_eq!(c.bytes_used(), 3 + 100 + 48);
    c.put(b"abc", vec![0u8; 10], SimTime::ZERO);
    assert_eq!(c.bytes_used(), 3 + 10 + 48, "replacement re-accounts");
    c.delete(b"abc");
    assert_eq!(c.bytes_used(), 0);
}

/// A full scan of the hot-window definition from Section II: an item
/// is hot iff touched within TTL, where put, get, and touch all count
/// as touches.
#[test]
fn hotness_counts_every_touch_kind() {
    let ttl = SimDuration::from_secs(10);
    let mut c = engine_with(1 << 20, 0);
    let t0 = SimTime::ZERO;
    c.put(b"a", vec![1], t0); // put touches
    c.put(b"b", vec![2], t0);
    c.put(b"c", vec![3], t0);
    let t8 = t0 + SimDuration::from_secs(8);
    assert!(c.get(b"a", t8).is_some()); // get touches
    assert!(c.touch(b"b", t8)); // touch touches
    let t15 = t0 + SimDuration::from_secs(15);
    assert!(c.is_hot(b"a", t15, ttl));
    assert!(c.is_hot(b"b", t15, ttl));
    assert!(!c.is_hot(b"c", t15, ttl), "untouched item went cold");
    assert_eq!(c.hot_items(t15, ttl), 2);
}

/// The digest stays consistent through a drain-like sequence: snapshot,
/// keep serving reads, then clear — exactly the lifecycle of a
/// draining Proteus server.
#[test]
fn digest_snapshot_is_stable_while_serving_reads() {
    let mut c = engine_with(1 << 20, 0);
    for i in 0..500u32 {
        c.put(format!("page:{i}").as_bytes(), vec![0u8; 16], SimTime::ZERO);
    }
    let snapshot = c.digest_snapshot();
    // A draining server only serves gets — which must not disturb the
    // digest (gets neither link nor unlink).
    let t = SimTime::from_secs(1);
    for i in 0..500u32 {
        assert!(c.get(format!("page:{i}").as_bytes(), t).is_some());
    }
    assert_eq!(
        c.digest_snapshot(),
        snapshot,
        "reads must not perturb the digest"
    );
    c.clear();
    assert!(!c.digest().contains(b"page:0"));
}

/// Eviction order interacts correctly with touch: touching an item
/// rescues it from the LRU tail.
#[test]
fn touch_rescues_from_eviction() {
    // Room for exactly 3 items of 10 bytes + 1-byte keys.
    let mut c = engine_with(33, 0);
    c.put(b"a", vec![0; 10], SimTime::ZERO);
    c.put(b"b", vec![0; 10], SimTime::ZERO);
    c.put(b"c", vec![0; 10], SimTime::ZERO);
    assert!(c.touch(b"a", SimTime::from_secs(1)));
    c.put(b"d", vec![0; 10], SimTime::from_secs(2));
    assert!(c.contains(b"a"), "touched item survived");
    assert!(!c.contains(b"b"), "untouched LRU item evicted");
}

/// Values of every size round-trip exactly (binary safety end to end).
#[test]
fn binary_values_round_trip() {
    let mut c = engine_with(64 << 20, 0);
    for size in [0usize, 1, 255, 4096, 1 << 16] {
        let value: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let key = format!("k{size}");
        c.put(key.as_bytes(), value.clone(), SimTime::ZERO);
        assert_eq!(c.get(key.as_bytes(), SimTime::ZERO), Some(&value[..]));
    }
}

/// Stress: interleaved churn across many keys maintains every invariant
/// at once (size bound, digest consistency, len/bytes agreement).
#[test]
fn churn_maintains_all_invariants() {
    let capacity = 10_000u64;
    let mut c = engine_with(capacity, 0);
    let mut t = SimTime::ZERO;
    for round in 0..20u32 {
        for i in 0..300u32 {
            t += SimDuration::from_millis(1);
            let key = format!("k{}", (i * 7 + round) % 400);
            match (i + round) % 4 {
                0 | 1 => {
                    c.put(key.as_bytes(), vec![round as u8; 32], t);
                }
                2 => {
                    let _ = c.get(key.as_bytes(), t);
                }
                _ => {
                    let _ = c.delete(key.as_bytes());
                }
            }
            assert!(c.bytes_used() <= capacity);
        }
    }
    // Every cached key is in the digest; count matches iterator.
    assert_eq!(c.keys().count(), c.len());
    let all_in_digest = c.keys().all(|key| c.digest().contains(key));
    assert!(all_in_digest);
}
