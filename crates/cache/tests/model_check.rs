//! Model-checking the cache engine against a naive reference
//! implementation, plus digest-consistency invariants.

use std::collections::HashMap;

use proptest::prelude::*;
use proteus_bloom::BloomConfig;
use proteus_cache::{CacheConfig, CacheEngine};
use proteus_sim::{SimDuration, SimTime};

/// A straightforward reference LRU cache: a map plus an explicit
/// recency list. O(n) per op, obviously correct.
#[derive(Default)]
struct ReferenceLru {
    capacity: u64,
    map: HashMap<Vec<u8>, Vec<u8>>,
    recency: Vec<Vec<u8>>, // front = LRU, back = MRU
}

impl ReferenceLru {
    fn new(capacity: u64) -> Self {
        ReferenceLru {
            capacity,
            ..Default::default()
        }
    }

    fn bytes(&self) -> u64 {
        self.map
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    fn touch(&mut self, key: &[u8]) {
        self.recency.retain(|k| k != key);
        self.recency.push(key.to_vec());
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(v) = self.map.get(key).cloned() {
            self.touch(key);
            Some(v)
        } else {
            None
        }
    }

    fn put(&mut self, key: &[u8], value: Vec<u8>) {
        self.map.insert(key.to_vec(), value);
        self.touch(key);
        while self.bytes() > self.capacity {
            let victim = self.recency.remove(0);
            self.map.remove(&victim);
        }
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.recency.retain(|k| k != key);
        self.map.remove(key).is_some()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>()).prop_map(Op::Get),
        (any::<u8>(), 1u8..32).prop_map(|(k, len)| Op::Put(k, len)),
        (any::<u8>()).prop_map(Op::Delete),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key:{k:03}").into_bytes()
}

proptest! {
    /// The engine agrees with the reference LRU on every observable:
    /// presence, values, and which keys survive eviction.
    #[test]
    fn engine_matches_reference_lru(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let capacity = 600u64;
        let mut engine = CacheEngine::new(
            CacheConfig::with_capacity(capacity)
                .item_overhead(0)
                .digest(BloomConfig::new(1 << 12, 4, 4)),
        );
        let mut reference = ReferenceLru::new(capacity);
        let mut t = SimTime::ZERO;
        for op in &ops {
            t += SimDuration::from_millis(1);
            match op {
                Op::Get(k) => {
                    let key = key_bytes(*k);
                    let a = engine.get(&key, t).map(<[u8]>::to_vec);
                    let b = reference.get(&key);
                    prop_assert_eq!(a, b);
                }
                Op::Put(k, len) => {
                    let key = key_bytes(*k);
                    let value = vec![*k; *len as usize];
                    engine.put(&key, value.clone(), t);
                    reference.put(&key, value);
                }
                Op::Delete(k) => {
                    let key = key_bytes(*k);
                    prop_assert_eq!(engine.delete(&key), reference.delete(&key));
                }
            }
            prop_assert_eq!(engine.len(), reference.map.len());
            prop_assert_eq!(engine.bytes_used(), reference.bytes());
            prop_assert!(engine.bytes_used() <= capacity);
        }
        // Final content equivalence.
        for k in 0..=255u8 {
            let key = key_bytes(k);
            prop_assert_eq!(engine.peek(&key).map(<[u8]>::to_vec), reference.map.get(&key).cloned());
        }
    }

    /// Digest invariant: after any operation sequence, every cached key
    /// is in the digest; with a roomy filter, evicted/deleted keys are
    /// not (allowing for the filter's tiny false-positive rate).
    #[test]
    fn digest_stays_consistent_with_contents(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut engine = CacheEngine::new(
            CacheConfig::with_capacity(500)
                .item_overhead(0)
                .digest(BloomConfig::new(1 << 14, 4, 4)),
        );
        let mut t = SimTime::ZERO;
        for op in &ops {
            t += SimDuration::from_millis(1);
            match op {
                Op::Get(k) => {
                    let _ = engine.get(&key_bytes(*k), t);
                }
                Op::Put(k, len) => {
                    engine.put(&key_bytes(*k), vec![0u8; *len as usize], t);
                }
                Op::Delete(k) => {
                    let _ = engine.delete(&key_bytes(*k));
                }
            }
        }
        let mut false_positives = 0;
        for k in 0..=255u8 {
            let key = key_bytes(k);
            if engine.contains(&key) {
                prop_assert!(engine.digest().contains(&key), "cached key {k} absent from digest");
            } else if engine.digest().contains(&key) {
                false_positives += 1;
            }
        }
        // 16k counters for <=256 keys: essentially zero false positives.
        prop_assert!(false_positives <= 2, "{false_positives} false positives");
    }

    /// The LRU iterator yields exactly the cached keys, MRU-first.
    #[test]
    fn keys_iterator_matches_reference_order(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let capacity = 400u64;
        let mut engine = CacheEngine::new(
            CacheConfig::with_capacity(capacity)
                .item_overhead(0)
                .digest(BloomConfig::new(1 << 12, 4, 4)),
        );
        let mut reference = ReferenceLru::new(capacity);
        let mut t = SimTime::ZERO;
        for op in &ops {
            t += SimDuration::from_millis(1);
            match op {
                Op::Get(k) => {
                    let _ = engine.get(&key_bytes(*k), t);
                    let _ = reference.get(&key_bytes(*k));
                }
                Op::Put(k, len) => {
                    engine.put(&key_bytes(*k), vec![0; *len as usize], t);
                    reference.put(&key_bytes(*k), vec![0; *len as usize]);
                }
                Op::Delete(k) => {
                    let _ = engine.delete(&key_bytes(*k));
                    let _ = reference.delete(&key_bytes(*k));
                }
            }
        }
        let engine_order: Vec<&[u8]> = engine.keys().collect();
        let mut reference_order = reference.recency.clone();
        reference_order.reverse(); // reference is LRU-first
        prop_assert_eq!(
            engine_order,
            reference_order.iter().map(Vec::as_slice).collect::<Vec<_>>()
        );
    }
}
