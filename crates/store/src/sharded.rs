//! Sharded store placement and statistics.

use std::collections::HashMap;
use std::fmt;

use proteus_ring::hash::KeyHasher;

use crate::content::generate_page_content;

/// Identity of a database shard (one "MySQL server").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(u32);

impl ShardId {
    /// Creates a shard ID from a zero-based index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        ShardId(index)
    }

    /// Zero-based shard index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "db{}", self.0)
    }
}

/// Per-shard query counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Fetches served by this shard.
    pub fetches: u64,
    /// Explicit writes stored on this shard.
    pub writes: u64,
}

/// Configuration for [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of shards; the paper uses 7 non-overlapping MySQL shards.
    pub shards: usize,
    /// Size of generated page objects; the paper treats pages as 4 KB
    /// fixed-size units (Section II's equal-object-size assumption).
    pub object_size: usize,
    /// Seed of the key→shard hash.
    pub placement_seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 7,
            object_size: 4096,
            placement_seed: 0x570_12e5,
        }
    }
}

/// The sharded backing store: deterministic generated content with an
/// explicit-write overlay, partitioned by key hash over `shards`
/// shards.
///
/// Every fetch conceptually performs the paper's three lookups
/// (`page` → revision → text); [`ShardedStore::LOOKUP_STAGES`] exposes
/// that constant so the latency model can charge per-stage time.
///
/// # Example
///
/// ```
/// use proteus_store::{ShardedStore, StoreConfig};
/// let mut store = ShardedStore::new(StoreConfig { shards: 7, ..StoreConfig::default() });
/// let shard = store.shard_of(b"page:1");
/// assert!(shard.index() < 7);
/// let _ = store.fetch(b"page:1");
/// assert_eq!(store.shard_stats()[shard.index()].fetches, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedStore {
    config: StoreConfig,
    hasher: KeyHasher,
    overlay: HashMap<Vec<u8>, Vec<u8>>,
    stats: Vec<ShardStats>,
}

impl ShardedStore {
    /// Each fetch walks `page → page_latest → rev_text_id → old_text`:
    /// three sequential index lookups, as in Section V-A4.
    pub const LOOKUP_STAGES: u32 = 3;

    /// Creates a store.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `object_size == 0`.
    #[must_use]
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.object_size > 0, "object size must be positive");
        ShardedStore {
            config,
            hasher: KeyHasher::new(config.placement_seed),
            overlay: HashMap::new(),
            stats: vec![ShardStats::default(); config.shards],
        }
    }

    /// The store configuration.
    #[must_use]
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The shard holding `key` (`hash mod shards` — the paper's
    /// horizontal partitioning).
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> ShardId {
        ShardId((self.hasher.hash_bytes(key) % self.config.shards as u64) as u32)
    }

    /// Fetches the value for `key`: the overlay value if one was
    /// written, else deterministically generated page content.
    pub fn fetch(&mut self, key: &[u8]) -> Vec<u8> {
        let shard = self.shard_of(key);
        self.stats[shard.index()].fetches += 1;
        self.overlay
            .get(key)
            .cloned()
            .unwrap_or_else(|| generate_page_content(key, self.config.object_size))
    }

    /// Writes an explicit value, overriding generated content.
    pub fn write(&mut self, key: &[u8], value: Vec<u8>) {
        let shard = self.shard_of(key);
        self.stats[shard.index()].writes += 1;
        self.overlay.insert(key.to_vec(), value);
    }

    /// Per-shard statistics, indexed by shard.
    #[must_use]
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Total fetches across all shards.
    #[must_use]
    pub fn total_fetches(&self) -> u64 {
        self.stats.iter().map(|s| s.fetches).sum()
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats.fill(ShardStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_deterministic_and_balanced() {
        let store = ShardedStore::new(StoreConfig::default());
        let mut counts = vec![0u32; 7];
        for i in 0..70_000u64 {
            let key = format!("page:{i}").into_bytes();
            let s = store.shard_of(&key);
            assert_eq!(s, store.shard_of(&key));
            counts[s.index()] += 1;
        }
        for &c in &counts {
            let dev = (f64::from(c) - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "shard count {c}");
        }
    }

    #[test]
    fn fetch_returns_object_size_content() {
        let mut store = ShardedStore::new(StoreConfig::default());
        let v = store.fetch(b"page:1");
        assert_eq!(v.len(), 4096);
        assert_eq!(store.fetch(b"page:1"), v, "deterministic");
    }

    #[test]
    fn overlay_overrides_generated_content() {
        let mut store = ShardedStore::new(StoreConfig::default());
        store.write(b"page:1", b"edited".to_vec());
        assert_eq!(store.fetch(b"page:1"), b"edited");
        assert_eq!(store.fetch(b"page:2").len(), 4096);
    }

    #[test]
    fn stats_track_per_shard_traffic() {
        let mut store = ShardedStore::new(StoreConfig {
            shards: 3,
            ..StoreConfig::default()
        });
        for i in 0..300u64 {
            let _ = store.fetch(format!("k{i}").as_bytes());
        }
        assert_eq!(store.total_fetches(), 300);
        assert!(store.shard_stats().iter().all(|s| s.fetches > 50));
        store.reset_stats();
        assert_eq!(store.total_fetches(), 0);
    }

    #[test]
    fn lookup_stages_match_paper() {
        assert_eq!(ShardedStore::LOOKUP_STAGES, 3);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedStore::new(StoreConfig {
            shards: 0,
            ..StoreConfig::default()
        });
    }
}
