//! Deterministic synthetic page content.

use proteus_ring::hash::splitmix64;

/// Generates `size` bytes of page content for `key`, deterministically.
///
/// Stands in for the Wikipedia `old_text` column: the bytes are a
/// pseudo-random function of the key alone, so any component (store,
/// cache, TCP server, test) regenerates identical content without
/// shipping a dump. The first bytes embed a readable header to make
/// debugging dumps legible.
///
/// # Example
///
/// ```
/// let a = proteus_store::generate_page_content(b"page:7", 256);
/// let b = proteus_store::generate_page_content(b"page:7", 256);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 256);
/// assert!(a.starts_with(b"WIKI:"));
/// ```
#[must_use]
pub fn generate_page_content(key: &[u8], size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(b"WIKI:");
    out.extend_from_slice(&key[..key.len().min(32)]);
    out.push(b':');
    let mut state = key.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    while out.len() < size {
        state = splitmix64(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_is_deterministic_and_sized() {
        for size in [1usize, 5, 64, 4096, 10_000] {
            let a = generate_page_content(b"page:123", size);
            assert_eq!(a.len(), size);
            assert_eq!(a, generate_page_content(b"page:123", size));
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = generate_page_content(b"page:1", 4096);
        let b = generate_page_content(b"page:2", 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn header_is_readable() {
        let a = generate_page_content(b"page:9", 64);
        assert!(a.starts_with(b"WIKI:page:9:"));
    }

    #[test]
    fn long_keys_are_truncated_in_header_not_content_identity() {
        let long_a: Vec<u8> = (0..100).map(|i| b'a' + (i % 26)).collect();
        let mut long_b = long_a.clone();
        *long_b.last_mut().unwrap() = b'!';
        // Headers agree (both truncated at 32) but content still differs
        // because the hash covers the whole key.
        assert_ne!(
            generate_page_content(&long_a, 256),
            generate_page_content(&long_b, 256)
        );
    }
}
