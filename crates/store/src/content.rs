//! Deterministic synthetic page content.

use proteus_ring::hash::splitmix64;

/// Generates `size` bytes of page content for `key`, deterministically.
///
/// Stands in for the Wikipedia `old_text` column: the bytes are a
/// pseudo-random function of the key alone, so any component (store,
/// cache, TCP server, test) regenerates identical content without
/// shipping a dump. The first bytes embed a readable header to make
/// debugging dumps legible.
///
/// # Example
///
/// ```
/// let a = proteus_store::generate_page_content(b"page:7", 256);
/// let b = proteus_store::generate_page_content(b"page:7", 256);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 256);
/// assert!(a.starts_with(b"WIKI:"));
/// ```
#[must_use]
pub fn generate_page_content(key: &[u8], size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(b"WIKI:");
    out.extend_from_slice(&key[..key.len().min(32)]);
    out.push(b':');
    let mut state = key.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    while out.len() < size {
        state = splitmix64(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(size);
    out
}

/// Picks a deterministic value size in `min..=max` for `key`,
/// log-uniformly distributed.
///
/// Real memcached fleets carry a heavy small-object skew: most values
/// are tens to hundreds of bytes, with a long tail of multi-kilobyte
/// pages. A log-uniform draw reproduces that shape — every size
/// *decade* gets equal probability mass, so small sizes dominate by
/// count — while staying a pure function of the key. Benchmarks
/// (`item_scale`) and churn tests use it to build mixed-size
/// populations any component can regenerate independently.
///
/// # Example
///
/// ```
/// let n = proteus_store::content_size_for(b"page:7", 16, 4096);
/// assert!((16..=4096).contains(&n));
/// assert_eq!(n, proteus_store::content_size_for(b"page:7", 16, 4096));
/// ```
///
/// # Panics
///
/// Panics if `min` is zero or exceeds `max`.
#[must_use]
pub fn content_size_for(key: &[u8], min: usize, max: usize) -> usize {
    assert!(min > 0 && min <= max, "need 0 < min <= max");
    if min == max {
        return min;
    }
    let seed = key.iter().fold(0x9e37_79b9_7f4a_7c15u64, |h, &b| {
        splitmix64(h ^ u64::from(b))
    });
    // Uniform in [ln min, ln max), exponentiated back to a size.
    let unit = (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64;
    let (lo, hi) = ((min as f64).ln(), (max as f64).ln());
    let size = (lo + unit * (hi - lo)).exp().round() as usize;
    size.clamp(min, max)
}

/// Generates content for `key` with a log-uniform size in `min..=max`:
/// [`content_size_for`] composed with [`generate_page_content`].
///
/// # Panics
///
/// Panics if `min` is zero or exceeds `max`.
#[must_use]
pub fn generate_sized_content(key: &[u8], min: usize, max: usize) -> Vec<u8> {
    generate_page_content(key, content_size_for(key, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_is_deterministic_and_sized() {
        for size in [1usize, 5, 64, 4096, 10_000] {
            let a = generate_page_content(b"page:123", size);
            assert_eq!(a.len(), size);
            assert_eq!(a, generate_page_content(b"page:123", size));
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = generate_page_content(b"page:1", 4096);
        let b = generate_page_content(b"page:2", 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn header_is_readable() {
        let a = generate_page_content(b"page:9", 64);
        assert!(a.starts_with(b"WIKI:page:9:"));
    }

    #[test]
    fn sizes_are_deterministic_bounded_and_skewed_small() {
        let mut sizes = Vec::new();
        for i in 0..2000u32 {
            let key = format!("page:{i}");
            let n = content_size_for(key.as_bytes(), 16, 4096);
            assert!((16..=4096).contains(&n));
            assert_eq!(n, content_size_for(key.as_bytes(), 16, 4096));
            sizes.push(n);
        }
        // Log-uniform: the sub-256 B range spans half the log space, so
        // roughly half the draws land there (far more than the ~6% a
        // uniform draw would give).
        let small = sizes.iter().filter(|&&n| n < 256).count();
        assert!(small > 600, "only {small}/2000 below 256 B");
        let large = sizes.iter().filter(|&&n| n >= 1024).count();
        assert!(large > 100, "tail missing: {large}/2000 at 1 KiB+");
        // Degenerate range collapses to the single size.
        assert_eq!(content_size_for(b"k", 64, 64), 64);
    }

    #[test]
    fn sized_content_matches_its_declared_size() {
        let v = generate_sized_content(b"page:55", 16, 4096);
        assert_eq!(v.len(), content_size_for(b"page:55", 16, 4096));
        assert!(v.starts_with(b"WIKI:"));
    }

    #[test]
    fn long_keys_are_truncated_in_header_not_content_identity() {
        let long_a: Vec<u8> = (0..100).map(|i| b'a' + (i % 26)).collect();
        let mut long_b = long_a.clone();
        *long_b.last_mut().unwrap() = b'!';
        // Headers agree (both truncated at 32) but content still differs
        // because the hash covers the whole key.
        assert_ne!(
            generate_page_content(&long_a, 256),
            generate_page_content(&long_b, 256)
        );
    }
}
