//! The database tier: a sharded backing store.
//!
//! The paper's deployment stores the 70 GB English Wikipedia dump
//! horizontally partitioned over 7 MySQL servers; each fetch walks a
//! three-table chain (`page` → `page_latest` → `rev_text_id` →
//! `old_text`). We substitute a deterministic synthetic store: page
//! content is generated on demand from the key (so no 70 GB dump is
//! needed), sharding and the 3-stage lookup structure are preserved,
//! and explicit writes can overlay the generated content (used by the
//! TCP tier's tests).
//!
//! Latency/queueing belongs to the cluster simulation (`proteus-core`),
//! which wraps each shard in a connection-pool `Resource`
//! (from `proteus-sim`); this crate models *placement
//! and content* only.
//!
//! # Example
//!
//! ```
//! use proteus_store::{ShardedStore, StoreConfig};
//!
//! let mut store = ShardedStore::new(StoreConfig::default());
//! let v = store.fetch(b"page:42");
//! assert_eq!(v.len(), 4096);
//! // Deterministic: the same key always yields the same bytes.
//! assert_eq!(store.fetch(b"page:42"), v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod content;
mod sharded;

pub use content::{content_size_for, generate_page_content, generate_sized_content};
pub use sharded::{ShardId, ShardStats, ShardedStore, StoreConfig};
