//! Property-based tests for the database tier.

use proptest::prelude::*;
use proteus_store::{generate_page_content, ShardedStore, StoreConfig};

proptest! {
    /// Content generation is a pure function of (key, size).
    #[test]
    fn content_is_deterministic(key in prop::collection::vec(any::<u8>(), 0..64), size in 1usize..4096) {
        let a = generate_page_content(&key, size);
        let b = generate_page_content(&key, size);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), size);
    }

    /// Distinct keys essentially never collide in content.
    #[test]
    fn distinct_keys_distinct_content(
        a in prop::collection::vec(any::<u8>(), 1..32),
        b in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(generate_page_content(&a, 256), generate_page_content(&b, 256));
    }

    /// Shard placement is stable and in range for any key and shard
    /// count; fetch/write bookkeeping is exact.
    #[test]
    fn sharding_and_stats_invariants(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..24), 1..60),
        shards in 1usize..12,
        writes in prop::collection::vec(any::<bool>(), 60),
    ) {
        let mut store = ShardedStore::new(StoreConfig {
            shards,
            object_size: 64,
            placement_seed: 1,
        });
        let mut fetches = 0u64;
        let mut written: std::collections::HashSet<&[u8]> = std::collections::HashSet::new();
        for (key, &write) in keys.iter().zip(&writes) {
            let shard = store.shard_of(key);
            prop_assert!(shard.index() < shards);
            prop_assert_eq!(shard, store.shard_of(key), "placement stable");
            if write {
                store.write(key, b"custom".to_vec());
                written.insert(key);
            }
            if written.contains(&key[..]) {
                prop_assert_eq!(store.fetch(key), b"custom".to_vec());
            } else {
                prop_assert_eq!(store.fetch(key).len(), 64);
            }
            fetches += 1;
        }
        prop_assert_eq!(store.total_fetches(), fetches);
        let by_shard: u64 = store.shard_stats().iter().map(|s| s.fetches).sum();
        prop_assert_eq!(by_shard, fetches);
    }

    /// Overlay writes only affect their own key.
    #[test]
    fn overlay_is_key_local(
        written in prop::collection::vec(any::<u8>(), 1..16),
        probed in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        prop_assume!(written != probed);
        let mut store = ShardedStore::new(StoreConfig::default());
        let before = store.fetch(&probed);
        store.write(&written, b"overlay".to_vec());
        prop_assert_eq!(store.fetch(&probed), before);
    }
}
