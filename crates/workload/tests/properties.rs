//! Property-based tests for workload synthesis.

use proptest::prelude::*;
use proteus_sim::{SimDuration, SimRng, SimTime};
use proteus_workload::{
    lru_model, DiurnalCurve, SessionConfig, SessionWorkload, Trace, TraceConfig, TraceRecord,
    ZipfSampler,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zipf samples always land in range, for any valid (n, s).
    #[test]
    fn zipf_stays_in_range(
        n in 1u64..100_000,
        s_tenths in 1u32..25,
        seed in any::<u64>(),
    ) {
        let s = f64::from(s_tenths) / 10.0 + 0.01; // avoid exactly 1.0
        let z = ZipfSampler::new(n, s);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Zipf probabilities are decreasing in rank and sum to one.
    #[test]
    fn zipf_probabilities_are_a_distribution(n in 2u64..2_000, s_tenths in 2u32..20) {
        let s = f64::from(s_tenths) / 10.0 + 0.01;
        let z = ZipfSampler::new(n, s);
        let mut total = 0.0;
        let mut last = f64::INFINITY;
        for k in 1..=n {
            let p = z.probability(k);
            prop_assert!(p > 0.0 && p <= last);
            last = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-6, "total {}", total);
    }

    /// Diurnal curves honor their configured mean and ratio for any
    /// parameters.
    #[test]
    fn diurnal_respects_parameters(
        mean in 1.0f64..10_000.0,
        ratio_tenths in 10u32..50,
        period_secs in 60u64..100_000,
    ) {
        let ratio = f64::from(ratio_tenths) / 10.0;
        let c = DiurnalCurve::new(mean, ratio, SimDuration::from_secs(period_secs));
        let measured_ratio = c.peak_rate() / c.nadir_rate();
        prop_assert!((measured_ratio - ratio).abs() / ratio < 0.02);
        prop_assert!(c.nadir_rate() > 0.0);
        // Spot samples stay within [nadir, peak].
        for i in 0..32u64 {
            let t = SimTime::from_secs(period_secs * i / 32);
            let r = c.rate_at(t);
            prop_assert!(r >= c.nadir_rate() - 1e-9 && r <= c.peak_rate() + 1e-9);
        }
    }

    /// Sessions always produce at least one request, spaced exactly by
    /// the think time, with pages from the catalog.
    #[test]
    fn sessions_are_well_formed(
        seed in any::<u64>(),
        think_ms in 100u64..2_000,
        mean_session_s in 1u64..60,
        pages in 1u64..10_000,
    ) {
        let w = SessionWorkload::new(SessionConfig {
            pages_per_user: 5,
            think_time: SimDuration::from_millis(think_ms),
            mean_session: SimDuration::from_secs(mean_session_s),
            catalog_pages: pages,
            zipf_exponent: 0.8,
        });
        let mut rng = SimRng::seed_from_u64(seed);
        let start = SimTime::from_secs(100);
        let reqs = w.session_requests(start, &mut rng);
        prop_assert!(!reqs.is_empty());
        prop_assert_eq!(reqs[0].0, start);
        for pair in reqs.windows(2) {
            prop_assert_eq!(pair[1].0 - pair[0].0, SimDuration::from_millis(think_ms));
        }
        for &(_, page) in &reqs {
            prop_assert!((1..=pages).contains(&page));
        }
    }

    /// Synthesized traces are sorted, in-horizon, and reproducible.
    #[test]
    fn traces_are_sorted_and_reproducible(seed in any::<u64>()) {
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(20),
            mean_rate: 50.0,
            pages: 500,
            ..TraceConfig::default()
        };
        let a = Trace::synthesize(&cfg, seed);
        let b = Trace::synthesize(&cfg, seed);
        prop_assert_eq!(&a, &b);
        let horizon = SimTime::ZERO + cfg.duration;
        for pair in a.records().windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        prop_assert!(a.records().iter().all(|r| r.at < horizon));
    }

    /// CSV round-trips preserve any trace.
    #[test]
    fn trace_csv_roundtrip(
        records in prop::collection::vec((0u64..1_000_000_000, 1u64..1_000_000), 0..200),
    ) {
        let trace = Trace::from_records(
            records
                .into_iter()
                .map(|(at, page)| TraceRecord { at: SimTime::from_nanos(at), page })
                .collect(),
        );
        let mut buf = Vec::new();
        trace.save_csv(&mut buf).unwrap();
        let loaded = Trace::load_csv(&buf[..]).unwrap();
        prop_assert_eq!(loaded, trace);
    }

    /// Che's approximation is a valid, monotone hit-ratio curve for any
    /// popularity vector.
    #[test]
    fn che_is_monotone_and_bounded(
        probs in prop::collection::vec(0.001f64..10.0, 3..200),
    ) {
        let mut last = 0.0;
        for capacity in [1usize, probs.len() / 4 + 1, probs.len() / 2 + 1, probs.len() - 1] {
            let h = lru_model::hit_ratio(&probs, capacity);
            prop_assert!((0.0..=1.0).contains(&h));
            prop_assert!(h + 1e-9 >= last, "capacity {} ratio {} < {}", capacity, h, last);
            last = h;
        }
        prop_assert_eq!(lru_model::hit_ratio(&probs, probs.len()), 1.0);
    }

    /// The wikibench parser never panics on arbitrary printable lines.
    #[test]
    fn wikibench_parser_is_total(line in "[ -~]{0,200}") {
        let _ = proteus_workload::wikipedia::parse_line(&line, "en.wikipedia.org");
    }
}
