//! Workload synthesis for the Proteus evaluation.
//!
//! The paper drives its testbed with (a) the real Wikipedia request
//! trace of Urdaneta et al. for load-balancing and Bloom experiments,
//! and (b) a synthetic session workload — hundreds of emulated users
//! per RBE server, 0.5 s think time, 50-page personal page sets, with
//! the active-user population following the Wikipedia trace's diurnal
//! volume — for response-time experiments. We do not have the trace,
//! so this crate synthesizes both from the properties the paper states
//! and assumes:
//!
//! - request volume varies diurnally with peak ≈ 2× nadir
//!   (Section II's assumption, visible in the paper's Fig. 4);
//! - page popularity is heavy-tailed ([`ZipfSampler`]);
//! - users behave as sessions: exponential session lengths, fixed
//!   think time, uniform choice within a personal page set
//!   ([`SessionWorkload`]).
//!
//! Traces are materialized ([`Trace`]) so all four Table II scenarios
//! replay the *identical* request sequence, as the paper does, and can
//! be saved/loaded as CSV for external tooling.
//!
//! # Example
//!
//! ```
//! use proteus_workload::{DiurnalCurve, TraceConfig, Trace};
//! use proteus_sim::SimDuration;
//!
//! let cfg = TraceConfig {
//!     duration: SimDuration::from_secs(60),
//!     mean_rate: 100.0,
//!     pages: 10_000,
//!     ..TraceConfig::default()
//! };
//! let trace = Trace::synthesize(&cfg, 42);
//! assert!(!trace.is_empty());
//! assert!(trace.records().windows(2).all(|w| w[0].at <= w[1].at));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diurnal;
pub mod lru_model;
mod replay;
mod session;
mod trace;
pub mod wikipedia;
mod zipf;

pub use diurnal::DiurnalCurve;
pub use replay::{CompressedDay, ReplayPacer};
pub use session::{SessionConfig, SessionWorkload};
pub use trace::{PageId, Trace, TraceConfig, TraceError, TraceRecord};
pub use zipf::ZipfSampler;
