//! Diurnal load curves.

use proteus_sim::{SimDuration, SimTime};

/// A smooth daily request-rate curve with a configurable peak-to-nadir
/// ratio.
///
/// Section II assumes "the load of requests have temporal behavior, and
/// the gap between the peak and the nadir load is huge"; the paper's
/// Fig. 4 shows the Wikipedia trace's volume with a peak roughly twice
/// the valley. The curve is a fundamental sinusoid plus a second
/// harmonic (Wikipedia's day has an asymmetric shoulder), centered so
/// the configured mean holds and scaled so the configured ratio holds.
///
/// # Example
///
/// ```
/// use proteus_sim::{SimDuration, SimTime};
/// use proteus_workload::DiurnalCurve;
///
/// let day = SimDuration::from_secs(1440);
/// let curve = DiurnalCurve::new(1000.0, 2.0, day);
/// let peak = curve.peak_rate();
/// let nadir = curve.nadir_rate();
/// assert!((peak / nadir - 2.0).abs() < 1e-3);
/// let r = curve.rate_at(SimTime::from_secs(100));
/// assert!(r >= nadir - 1e-9 && r <= peak + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    mean_rate: f64,
    peak_to_nadir: f64,
    period: SimDuration,
    /// Second-harmonic strength relative to the fundamental.
    shoulder: f64,
    /// Mean of the raw shape over one period (precomputed).
    shape_mean: f64,
    /// Scale factor applied to the centered shape (precomputed so that
    /// max/min of the rate equals `peak_to_nadir`).
    amplitude: f64,
}

const SHAPE_SAMPLES: usize = 4096;

impl DiurnalCurve {
    /// Creates a curve with the given mean rate (requests/second),
    /// peak-to-nadir ratio, and period (one simulated "day").
    ///
    /// # Panics
    ///
    /// Panics unless `mean_rate > 0`, `peak_to_nadir >= 1`, and the
    /// period is positive.
    #[must_use]
    pub fn new(mean_rate: f64, peak_to_nadir: f64, period: SimDuration) -> Self {
        assert!(mean_rate > 0.0, "mean rate must be positive");
        assert!(peak_to_nadir >= 1.0, "peak/nadir ratio must be >= 1");
        assert!(period > SimDuration::ZERO, "period must be positive");
        let shoulder = 0.18;
        let raw = |phase: f64| raw_shape(phase, shoulder);
        let mut sum = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..SHAPE_SAMPLES {
            let v = raw(i as f64 / SHAPE_SAMPLES as f64);
            sum += v;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let shape_mean = sum / SHAPE_SAMPLES as f64;
        // Centered extrema.
        let hi_c = hi - shape_mean;
        let lo_c = lo - shape_mean;
        // Solve (1 + a·hi_c) / (1 + a·lo_c) = r for a; centering keeps
        // the mean exact because the centered shape integrates to zero.
        let r = peak_to_nadir;
        let amplitude = if r == 1.0 {
            0.0
        } else {
            (r - 1.0) / (hi_c - r * lo_c)
        };
        DiurnalCurve {
            mean_rate,
            peak_to_nadir,
            period,
            shoulder,
            shape_mean,
            amplitude,
        }
    }

    /// Mean rate in requests/second.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        self.mean_rate
    }

    /// The configured peak-to-nadir ratio.
    #[must_use]
    pub fn peak_to_nadir(&self) -> f64 {
        self.peak_to_nadir
    }

    /// The period (simulated day length).
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The instantaneous rate (requests/second) at time `t`; the curve
    /// repeats every period.
    #[must_use]
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let phase = (t.as_nanos() % self.period.as_nanos()) as f64 / self.period.as_nanos() as f64;
        let centered = raw_shape(phase, self.shoulder) - self.shape_mean;
        self.mean_rate * (1.0 + self.amplitude * centered)
    }

    /// The maximum rate over one period.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.scan().1
    }

    /// The minimum rate over one period.
    #[must_use]
    pub fn nadir_rate(&self) -> f64 {
        self.scan().0
    }

    fn scan(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..SHAPE_SAMPLES as u64 {
            let t = SimTime::from_nanos(self.period.as_nanos() / SHAPE_SAMPLES as u64 * i);
            let v = self.rate_at(t);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

/// Trough in the early morning, peak in the evening, plus a shoulder
/// from the second harmonic.
fn raw_shape(phase: f64, shoulder: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    (tau * (phase - 0.375)).sin() + shoulder * (2.0 * tau * phase).sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> SimDuration {
        SimDuration::from_secs(86_400)
    }

    #[test]
    fn ratio_is_respected() {
        for ratio in [1.5, 2.0, 3.0] {
            let c = DiurnalCurve::new(500.0, ratio, day());
            let measured = c.peak_rate() / c.nadir_rate();
            assert!(
                (measured - ratio).abs() < 0.01,
                "ratio {ratio}: measured {measured}"
            );
        }
    }

    #[test]
    fn mean_is_preserved() {
        let c = DiurnalCurve::new(800.0, 2.0, day());
        let samples = 10_000u64;
        let mean: f64 = (0..samples)
            .map(|i| c.rate_at(SimTime::from_nanos(day().as_nanos() / samples * i)))
            .sum::<f64>()
            / samples as f64;
        assert!((mean - 800.0).abs() / 800.0 < 0.01, "mean {mean}");
    }

    #[test]
    fn rate_is_always_positive_and_periodic() {
        let c = DiurnalCurve::new(100.0, 2.5, day());
        for i in 0..1000u64 {
            let t = SimTime::from_secs(i * 200);
            assert!(c.rate_at(t) > 0.0);
        }
        let t = SimTime::from_secs(3600);
        let t_next_day = SimTime::from_secs(3600 + 86_400);
        assert!((c.rate_at(t) - c.rate_at(t_next_day)).abs() < 1e-9);
    }

    #[test]
    fn flat_curve_when_ratio_is_one() {
        let c = DiurnalCurve::new(100.0, 1.0, day());
        for i in 0..100u64 {
            let r = c.rate_at(SimTime::from_secs(i * 864));
            assert!((r - 100.0).abs() < 1e-9, "rate {r}");
        }
    }

    #[test]
    fn accessors_report_configuration() {
        let c = DiurnalCurve::new(250.0, 2.0, day());
        assert_eq!(c.mean_rate(), 250.0);
        assert_eq!(c.peak_to_nadir(), 2.0);
        assert_eq!(c.period(), day());
    }

    #[test]
    #[should_panic(expected = "ratio must be >= 1")]
    fn sub_unity_ratio_rejected() {
        let _ = DiurnalCurve::new(100.0, 0.5, day());
    }
}
