//! Parsing the real Wikipedia access trace (Urdaneta et al.,
//! "Wikipedia workload analysis for decentralized hosting").
//!
//! The paper drives its load-balancing and Bloom-filter experiments
//! with this trace ("the trace contains timestamp and requested URL
//! for every single user request", and the authors "first do some
//! preliminaries to distill the requests that hit English Wikipedia").
//! The trace itself is not redistributable here, but this module
//! implements the same distillation so the real file drops in:
//!
//! ```text
//! <counter> <epoch-seconds.millis> <url> <save-flag>
//! 4619 1194892306.002 http://en.wikipedia.org/wiki/Main_Page -
//! ```
//!
//! [`parse_line`] extracts the page title from article URLs
//! (`/wiki/Title` and `/w/index.php?title=Title` forms) on a chosen
//! host, skipping non-article namespaces and media; [`distill`] turns
//! a whole file into a time-rebased [`Trace`] with stable title→page-id
//! hashing, optionally compressing time (this reproduction runs a
//! 60:1-compressed day).

use std::collections::HashMap;
use std::io::BufRead;

use proteus_sim::{SimDuration, SimTime};

use crate::trace::{Trace, TraceError, TraceRecord};

/// One parsed article request.
#[derive(Debug, Clone, PartialEq)]
pub struct WikiRequest {
    /// Seconds since the Unix epoch (fractional).
    pub epoch_secs: f64,
    /// The decoded article title (URL percent-decoding applied).
    pub title: String,
}

/// Namespace prefixes that are not article pages; the paper's
/// experiments (and ours) serve articles only.
const SKIPPED_PREFIXES: [&str; 10] = [
    "Special:",
    "Image:",
    "File:",
    "User:",
    "Talk:",
    "Wikipedia:",
    "Template:",
    "Category:",
    "Help:",
    "MediaWiki:",
];

/// Parses one wikibench trace line, returning the article request if
/// the line is a well-formed page view on `host` (e.g.
/// `"en.wikipedia.org"`), or `None` for anything else (other hosts,
/// media, non-article namespaces, malformed lines).
///
/// # Example
///
/// ```
/// use proteus_workload::wikipedia::parse_line;
/// let line = "4619 1194892306.002 http://en.wikipedia.org/wiki/Main_Page -";
/// let req = parse_line(line, "en.wikipedia.org").unwrap();
/// assert_eq!(req.title, "Main_Page");
/// assert!((req.epoch_secs - 1194892306.002).abs() < 1e-9);
/// ```
#[must_use]
pub fn parse_line(line: &str, host: &str) -> Option<WikiRequest> {
    let mut fields = line.split_ascii_whitespace();
    let _counter = fields.next()?;
    let epoch_secs: f64 = fields.next()?.parse().ok()?;
    if !epoch_secs.is_finite() || epoch_secs < 0.0 {
        return None;
    }
    let url = fields.next()?;
    let title = page_title(url, host)?;
    Some(WikiRequest { epoch_secs, title })
}

/// Extracts the article title from a Wikipedia URL on `host`.
fn page_title(url: &str, host: &str) -> Option<String> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))?;
    let path = rest.strip_prefix(host)?;
    let raw = if let Some(wiki) = path.strip_prefix("/wiki/") {
        wiki.split(['?', '#']).next()?
    } else if let Some(q) = path.strip_prefix("/w/index.php?") {
        q.split('&')
            .find_map(|kv| kv.strip_prefix("title="))?
            .split('#')
            .next()?
    } else {
        return None;
    };
    if raw.is_empty() {
        return None;
    }
    let decoded = percent_decode(raw)?;
    if SKIPPED_PREFIXES.iter().any(|p| decoded.starts_with(p)) {
        return None;
    }
    Some(decoded)
}

/// Minimal percent-decoding (the trace percent-encodes non-ASCII
/// titles). Returns `None` on malformed escapes.
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 > bytes.len() {
                return None;
            }
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Statistics from one distillation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistillStats {
    /// Lines read.
    pub lines: u64,
    /// Article requests kept.
    pub kept: u64,
    /// Lines skipped (other hosts, media, malformed, namespaces).
    pub skipped: u64,
    /// Distinct article titles seen.
    pub distinct_titles: u64,
}

/// Distills a wikibench trace stream into a [`Trace`]: keeps article
/// views on `host`, rebases time to the first kept request, compresses
/// time by `compression` (the reproduction's experiments run 60:1),
/// and assigns stable page IDs in order of first appearance.
///
/// Returns the trace, the title table (page id − 1 indexes it), and
/// the pass statistics.
///
/// # Errors
///
/// Propagates I/O errors from the reader; malformed lines are skipped
/// and counted, not fatal (real traces contain noise).
pub fn distill<R: BufRead>(
    reader: R,
    host: &str,
    compression: f64,
) -> Result<(Trace, Vec<String>, DistillStats), TraceError> {
    assert!(
        compression.is_finite() && compression >= 1.0,
        "compression must be >= 1"
    );
    let mut stats = DistillStats::default();
    let mut titles: Vec<String> = Vec::new();
    let mut ids: HashMap<String, u64> = HashMap::new();
    let mut records = Vec::new();
    let mut origin: Option<f64> = None;
    for line in reader.lines() {
        let line = line?;
        stats.lines += 1;
        let Some(req) = parse_line(&line, host) else {
            stats.skipped += 1;
            continue;
        };
        stats.kept += 1;
        let origin = *origin.get_or_insert(req.epoch_secs);
        let rel = ((req.epoch_secs - origin) / compression).max(0.0);
        let page = *ids.entry(req.title.clone()).or_insert_with(|| {
            titles.push(req.title.clone());
            titles.len() as u64
        });
        records.push(TraceRecord {
            at: SimTime::ZERO + SimDuration::from_secs_f64(rel),
            page,
        });
    }
    stats.distinct_titles = titles.len() as u64;
    Ok((Trace::from_records(records), titles, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: &str = "en.wikipedia.org";

    #[test]
    fn parses_wiki_path_urls() {
        let req = parse_line(
            "1 1194892306.002 http://en.wikipedia.org/wiki/Consistent_hashing -",
            HOST,
        )
        .unwrap();
        assert_eq!(req.title, "Consistent_hashing");
    }

    #[test]
    fn parses_index_php_urls() {
        let req = parse_line(
            "2 1194892306.500 http://en.wikipedia.org/w/index.php?title=Memcached&action=view -",
            HOST,
        )
        .unwrap();
        assert_eq!(req.title, "Memcached");
    }

    #[test]
    fn strips_query_and_fragment() {
        let req = parse_line(
            "3 1.0 http://en.wikipedia.org/wiki/Cache?useskin=modern#History -",
            HOST,
        )
        .unwrap();
        assert_eq!(req.title, "Cache");
    }

    #[test]
    fn decodes_percent_escapes() {
        let req = parse_line("4 1.0 http://en.wikipedia.org/wiki/Z%C3%BCrich -", HOST).unwrap();
        assert_eq!(req.title, "Zürich");
    }

    #[test]
    fn skips_other_hosts_and_media() {
        for line in [
            "5 1.0 http://de.wikipedia.org/wiki/Berlin -",
            "6 1.0 http://upload.wikimedia.org/wikipedia/commons/a/ab/X.jpg -",
            "7 1.0 http://en.wikipedia.org/wiki/Image:Foo.png -",
            "8 1.0 http://en.wikipedia.org/wiki/Special:Random -",
            "9 1.0 http://en.wikipedia.org/wiki/User:Someone -",
            "10 1.0 http://en.wikipedia.org/robots.txt -",
        ] {
            assert_eq!(parse_line(line, HOST), None, "should skip: {line}");
        }
    }

    #[test]
    fn tolerates_malformed_lines() {
        for line in [
            "",
            "not a trace line",
            "1 not-a-time http://en.wikipedia.org/wiki/X -",
            "1 -5.0 http://en.wikipedia.org/wiki/X -",
            "1 1.0 http://en.wikipedia.org/wiki/Bad%ZZescape -",
            "1 1.0 http://en.wikipedia.org/wiki/ -",
        ] {
            assert_eq!(parse_line(line, HOST), None, "should reject: {line}");
        }
    }

    #[test]
    fn distill_rebases_compresses_and_numbers_pages() {
        let input = "\
1 1000.000 http://en.wikipedia.org/wiki/Alpha -
2 1030.000 http://en.wikipedia.org/wiki/Beta -
3 1030.000 http://de.wikipedia.org/wiki/Gamma -
4 1060.000 http://en.wikipedia.org/wiki/Alpha -
";
        let (trace, titles, stats) = distill(input.as_bytes(), HOST, 60.0).unwrap();
        assert_eq!(stats.lines, 4);
        assert_eq!(stats.kept, 3);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.distinct_titles, 2);
        assert_eq!(titles, vec!["Alpha".to_string(), "Beta".to_string()]);
        let recs = trace.records();
        assert_eq!(recs.len(), 3);
        // 60:1 compression: 30 s gaps become 0.5 s.
        assert_eq!(recs[0].at, SimTime::ZERO);
        assert_eq!(recs[1].at, SimTime::ZERO + SimDuration::from_millis(500));
        assert_eq!(recs[2].at, SimTime::ZERO + SimDuration::from_secs(1));
        // Alpha got id 1 on first appearance and keeps it.
        assert_eq!(recs[0].page, 1);
        assert_eq!(recs[1].page, 2);
        assert_eq!(recs[2].page, 1);
    }

    #[test]
    fn distilled_trace_feeds_requests_per_slot() {
        let input = "\
1 0.0 http://en.wikipedia.org/wiki/A -
2 10.0 http://en.wikipedia.org/wiki/B -
3 20.0 http://en.wikipedia.org/wiki/C -
";
        let (trace, _, _) = distill(input.as_bytes(), HOST, 1.0).unwrap();
        let counts = trace.requests_per_slot(SimDuration::from_secs(10), 3);
        assert_eq!(counts, vec![1, 1, 1]);
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert_eq!(percent_decode("a%20b").unwrap(), "a b");
        assert_eq!(percent_decode("%"), None);
        assert_eq!(percent_decode("%1"), None);
        assert_eq!(percent_decode("%GG"), None);
    }
}
