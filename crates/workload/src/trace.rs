//! Materialized request traces.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use proteus_sim::{SimDuration, SimRng, SimTime};

use crate::diurnal::DiurnalCurve;
use crate::session::{SessionConfig, SessionWorkload};

/// A page identity (the 1-based Zipf rank doubles as the page ID).
pub type PageId = u64;

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival time of the request at the web tier.
    pub at: SimTime,
    /// The requested page.
    pub page: PageId,
}

/// Parameters for synthesizing a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Total trace duration (one simulated "day").
    pub duration: SimDuration,
    /// Mean request rate (requests/second).
    pub mean_rate: f64,
    /// Peak-to-nadir ratio of the diurnal curve (the paper's trace has
    /// ≈ 2).
    pub peak_to_nadir: f64,
    /// Page catalog size.
    pub pages: u64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Session behaviour (think time, pages per user, session length).
    pub session: SessionConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            duration: SimDuration::from_secs(1440),
            mean_rate: 1000.0,
            peak_to_nadir: 2.0,
            pages: 200_000,
            zipf_exponent: 0.8,
            session: SessionConfig::default(),
        }
    }
}

/// Errors loading a trace from its CSV form.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line } => write!(f, "malformed trace record at line {line}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A time-ordered sequence of page requests.
///
/// Traces are materialized so that all four Table II scenarios replay
/// the *identical* request sequence — the paper applies "the same
/// cluster provisioning result, Wikipedia data and Wikipedia workload
/// to all 4 different scenarios" so routing is the only difference.
///
/// # Example
///
/// ```
/// use proteus_sim::SimDuration;
/// use proteus_workload::{Trace, TraceConfig};
///
/// let cfg = TraceConfig {
///     duration: SimDuration::from_secs(30),
///     mean_rate: 50.0,
///     pages: 1000,
///     ..TraceConfig::default()
/// };
/// let trace = Trace::synthesize(&cfg, 12);
/// // Short horizons truncate sessions, so expect well below 30 s × 50/s,
/// // but clearly nonempty.
/// assert!(trace.len() > 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Builds a trace from raw records (sorted by time internally).
    #[must_use]
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.at);
        Trace { records }
    }

    /// Synthesizes a session-driven trace: user sessions arrive as a
    /// non-homogeneous Poisson process whose rate tracks the diurnal
    /// curve, and each session contributes think-time-spaced requests
    /// to its personal page set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see
    /// [`SessionWorkload::new`] and [`DiurnalCurve::new`]).
    #[must_use]
    pub fn synthesize(config: &TraceConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let session_cfg = SessionConfig {
            catalog_pages: config.pages,
            zipf_exponent: config.zipf_exponent,
            ..config.session
        };
        let workload = SessionWorkload::new(session_cfg);
        // Requests per session ≈ mean_session / think_time, so the
        // session arrival rate that realises `mean_rate` is:
        let requests_per_session = (session_cfg.mean_session.as_secs_f64()
            / session_cfg.think_time.as_secs_f64())
        .max(1.0);
        let session_rate_mean = config.mean_rate / requests_per_session;
        let curve = DiurnalCurve::new(session_rate_mean, config.peak_to_nadir, config.duration);
        let peak = curve.peak_rate();
        // Thinning: generate candidate arrivals at the peak rate and
        // accept with probability rate(t)/peak.
        let mut records = Vec::new();
        let mut t = SimTime::ZERO;
        let horizon = SimTime::ZERO + config.duration;
        loop {
            let gap = -1.0 / peak * rng.positive_uniform_f64().ln();
            t += SimDuration::from_secs_f64(gap);
            if t >= horizon {
                break;
            }
            if rng.uniform_f64() < curve.rate_at(t) / peak {
                for (at, page) in workload.session_requests(t, &mut rng) {
                    if at < horizon {
                        records.push(TraceRecord { at, page });
                    }
                }
            }
        }
        Trace::from_records(records)
    }

    /// The trace records, in non-decreasing time order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Requests per slot of width `slot`, over `slots` slots — the
    /// per-slot volume curve of Fig. 4.
    #[must_use]
    pub fn requests_per_slot(&self, slot: SimDuration, slots: usize) -> Vec<u64> {
        let mut counts = vec![0u64; slots];
        for r in &self.records {
            let idx = ((r.at.as_nanos() / slot.as_nanos()) as usize).min(slots - 1);
            counts[idx] += 1;
        }
        counts
    }

    /// Writes the trace as `nanos,page` CSV lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn save_csv<W: Write>(&self, mut writer: W) -> Result<(), TraceError> {
        for r in &self.records {
            writeln!(writer, "{},{}", r.at.as_nanos(), r.page)?;
        }
        Ok(())
    }

    /// Reads a trace from `nanos,page` CSV lines.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] on malformed lines and
    /// [`TraceError::Io`] on read failures.
    pub fn load_csv<R: BufRead>(reader: R) -> Result<Self, TraceError> {
        let mut records = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(2, ',');
            let parse = |s: Option<&str>| -> Option<u64> { s?.trim().parse().ok() };
            let at = parse(parts.next());
            let page = parse(parts.next());
            match (at, page) {
                (Some(at), Some(page)) => records.push(TraceRecord {
                    at: SimTime::from_nanos(at),
                    page,
                }),
                _ => return Err(TraceError::Parse { line: i + 1 }),
            }
        }
        Ok(Trace::from_records(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TraceConfig {
        TraceConfig {
            duration: SimDuration::from_secs(120),
            mean_rate: 200.0,
            peak_to_nadir: 2.0,
            pages: 10_000,
            zipf_exponent: 0.8,
            session: SessionConfig {
                pages_per_user: 10,
                think_time: SimDuration::from_millis(500),
                mean_session: SimDuration::from_secs(10),
                ..SessionConfig::default()
            },
        }
    }

    #[test]
    fn synthesized_trace_is_ordered_and_in_horizon() {
        let trace = Trace::synthesize(&quick_config(), 1);
        assert!(!trace.is_empty());
        let horizon = SimTime::ZERO + SimDuration::from_secs(120);
        for pair in trace.records().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(trace.records().iter().all(|r| r.at < horizon));
    }

    #[test]
    fn volume_approximates_mean_rate() {
        let trace = Trace::synthesize(&quick_config(), 2);
        let rate = trace.len() as f64 / 120.0;
        // Session granularity makes this noisy; ±35%.
        assert!(
            (rate - 200.0).abs() / 200.0 < 0.35,
            "achieved rate {rate} vs target 200"
        );
    }

    #[test]
    fn diurnal_shape_shows_in_per_slot_volume() {
        let cfg = TraceConfig {
            duration: SimDuration::from_secs(1200),
            mean_rate: 400.0,
            ..quick_config()
        };
        let trace = Trace::synthesize(&cfg, 3);
        let counts = trace.requests_per_slot(SimDuration::from_secs(100), 12);
        let peak = *counts.iter().max().unwrap() as f64;
        let nadir = *counts.iter().min().unwrap() as f64;
        assert!(
            peak / nadir > 1.4,
            "diurnal variation should be visible: {counts:?}"
        );
    }

    #[test]
    fn same_seed_reproduces_identical_trace() {
        let a = Trace::synthesize(&quick_config(), 4);
        let b = Trace::synthesize(&quick_config(), 4);
        assert_eq!(a, b);
        let c = Trace::synthesize(&quick_config(), 5);
        assert_ne!(a, c);
    }

    #[test]
    fn csv_roundtrip() {
        let trace = Trace::synthesize(&quick_config(), 6);
        let mut buf = Vec::new();
        trace.save_csv(&mut buf).unwrap();
        let loaded = Trace::load_csv(&buf[..]).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let bad = b"123,45\nnot-a-record\n" as &[u8];
        match Trace::load_csv(bad) {
            Err(TraceError::Parse { line }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn csv_skips_blank_lines() {
        let ok = b"100,1\n\n200,2\n" as &[u8];
        let t = Trace::load_csv(ok).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_records_sorts() {
        let t = Trace::from_records(vec![
            TraceRecord {
                at: SimTime::from_secs(2),
                page: 2,
            },
            TraceRecord {
                at: SimTime::from_secs(1),
                page: 1,
            },
        ]);
        assert_eq!(t.records()[0].page, 1);
    }

    #[test]
    fn requests_per_slot_clamps_overflow() {
        let t = Trace::from_records(vec![TraceRecord {
            at: SimTime::from_secs(100),
            page: 1,
        }]);
        let counts = t.requests_per_slot(SimDuration::from_secs(10), 5);
        assert_eq!(counts, vec![0, 0, 0, 0, 1]);
    }
}
