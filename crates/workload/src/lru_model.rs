//! Analytical LRU hit-ratio prediction (Che's approximation).
//!
//! Fig. 6 measures the cache hit ratio against cache size by replay;
//! this module predicts the same curve analytically. Under the
//! independent reference model, an LRU cache of `C` objects behaves as
//! if each object stays cached for a *characteristic time* `T_C`
//! (measured in requests) satisfying
//!
//! ```text
//! Σ_i (1 − e^{−p_i·T_C}) = C
//! ```
//!
//! and the hit ratio is `Σ_i p_i (1 − e^{−p_i·T_C})` (Che, Tung &
//! Wang, 2002). The approximation is famously accurate for Zipf-like
//! popularity — the regime of this paper's workload — and the test
//! suite cross-validates it against the real
//! [`CacheEngine`](../../proteus_cache/struct.CacheEngine.html).

/// Solves for Che's characteristic time `T_C` (in requests) for a
/// popularity distribution `probs` (need not be normalized) and a
/// cache holding `capacity` objects.
///
/// Returns `None` if `capacity` is zero or at least the catalog size
/// (where the model degenerates: hit ratio 0 or 1).
///
/// # Example
///
/// ```
/// use proteus_workload::lru_model;
/// let probs = vec![0.5, 0.3, 0.2];
/// let t = lru_model::characteristic_time(&probs, 2).unwrap();
/// assert!(t > 0.0);
/// ```
#[must_use]
pub fn characteristic_time(probs: &[f64], capacity: usize) -> Option<f64> {
    if capacity == 0 || capacity >= probs.len() {
        return None;
    }
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "popularity mass must be positive");
    let occupied = |t: f64| -> f64 {
        probs
            .iter()
            .map(|&p| 1.0 - (-p / total * t).exp())
            .sum::<f64>()
    };
    // Bisection on the monotone occupancy function.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while occupied(hi) < capacity as f64 {
        hi *= 2.0;
        if hi > 1e18 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if occupied(mid) < capacity as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-9 * hi {
            break;
        }
    }
    Some((lo + hi) / 2.0)
}

/// Che's approximation of the LRU hit ratio for popularity `probs` and
/// a cache of `capacity` objects.
///
/// # Example
///
/// ```
/// use proteus_workload::lru_model;
/// // A cache holding the full catalog hits on everything.
/// assert_eq!(lru_model::hit_ratio(&[0.6, 0.4], 2), 1.0);
/// // An empty cache hits on nothing.
/// assert_eq!(lru_model::hit_ratio(&[0.6, 0.4], 0), 0.0);
/// ```
#[must_use]
pub fn hit_ratio(probs: &[f64], capacity: usize) -> f64 {
    if capacity == 0 || probs.is_empty() {
        return 0.0;
    }
    if capacity >= probs.len() {
        return 1.0;
    }
    let total: f64 = probs.iter().sum();
    let t = characteristic_time(probs, capacity).expect("interior capacity");
    probs
        .iter()
        .map(|&p| {
            let q = p / total;
            q * (1.0 - (-q * t).exp())
        })
        .sum()
}

/// Convenience: the predicted LRU hit ratio for a Zipf(`s`) catalog of
/// `pages` objects with a cache of `capacity` objects.
///
/// # Panics
///
/// Panics if `pages == 0` or `s` is not finite and positive.
#[must_use]
pub fn zipf_hit_ratio(pages: u64, s: f64, capacity: usize) -> f64 {
    assert!(pages > 0, "need at least one page");
    assert!(s.is_finite() && s > 0.0, "invalid exponent {s}");
    let probs: Vec<f64> = (1..=pages).map(|k| (k as f64).powf(-s)).collect();
    hit_ratio(&probs, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZipfSampler;
    use proteus_sim::SimRng;

    #[test]
    fn occupancy_boundaries() {
        assert_eq!(hit_ratio(&[], 5), 0.0);
        assert_eq!(hit_ratio(&[1.0], 0), 0.0);
        assert_eq!(hit_ratio(&[0.7, 0.3], 5), 1.0);
        assert_eq!(characteristic_time(&[0.5, 0.5], 0), None);
        assert_eq!(characteristic_time(&[0.5, 0.5], 2), None);
    }

    #[test]
    fn hit_ratio_is_monotone_in_capacity() {
        let probs: Vec<f64> = (1..=1000u64).map(|k| (k as f64).powf(-0.8)).collect();
        let mut last = 0.0;
        for capacity in [10, 50, 100, 300, 600, 999] {
            let h = hit_ratio(&probs, capacity);
            assert!(h > last, "capacity {capacity}: {h} <= {last}");
            assert!(h < 1.0);
            last = h;
        }
    }

    #[test]
    fn uniform_popularity_hit_ratio_is_fill_fraction() {
        // With uniform popularity, LRU holds a uniform random subset:
        // hit ratio ≈ C/n.
        let probs = vec![1.0; 1000];
        for capacity in [100, 500, 900] {
            let h = hit_ratio(&probs, capacity);
            let expect = capacity as f64 / 1000.0;
            assert!((h - expect).abs() < 0.02, "C={capacity}: {h} vs {expect}");
        }
    }

    #[test]
    fn prediction_matches_simulated_lru_engine() {
        // Cross-validation: an IRM Zipf request stream against the real
        // CacheEngine must land on Che's curve.
        use proteus_cache::{CacheConfig, CacheEngine};
        use proteus_sim::SimTime;

        let pages = 20_000u64;
        let s = 0.8;
        let zipf = ZipfSampler::new(pages, s);
        let mut rng = SimRng::seed_from_u64(7);
        for capacity in [500usize, 2000, 8000] {
            // object size 1 (key-only accounting) so capacity = items.
            let mut cache =
                CacheEngine::new(CacheConfig::with_capacity(capacity as u64 * 9).item_overhead(0));
            let mut hits = 0u64;
            let requests = 300_000u64;
            for _ in 0..requests {
                let page = zipf.sample(&mut rng);
                let key = format!("{page:08}").into_bytes(); // 8 bytes
                if cache.get(&key, SimTime::ZERO).is_some() {
                    hits += 1;
                } else {
                    cache.put(&key, vec![0u8; 1], SimTime::ZERO);
                }
            }
            let measured = hits as f64 / requests as f64;
            let predicted = zipf_hit_ratio(pages, s, capacity);
            assert!(
                (measured - predicted).abs() < 0.02,
                "C={capacity}: measured {measured:.4}, Che predicts {predicted:.4}"
            );
        }
    }

    #[test]
    fn characteristic_time_grows_with_capacity() {
        let probs: Vec<f64> = (1..=500u64).map(|k| (k as f64).powf(-0.9)).collect();
        let t1 = characteristic_time(&probs, 50).unwrap();
        let t2 = characteristic_time(&probs, 200).unwrap();
        assert!(t2 > t1);
    }
}
