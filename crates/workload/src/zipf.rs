//! Zipf-distributed page popularity.

use proteus_sim::SimRng;

/// Samples page ranks from a Zipf distribution with exponent `s` over
/// `n` pages: `P(rank = k) ∝ 1 / k^s`.
///
/// Implemented with rejection-inversion (Hörmann & Derflinger, the
/// algorithm behind Apache Commons' `RejectionInversionZipfSampler`):
/// no precomputed tables, O(1) amortized per sample — suitable for the
/// millions of requests in a full-day trace. Web and Wikipedia page
/// popularity is classically Zipf-like with `s ≈ 0.7–1.0`.
///
/// Returned ranks are **1-based** (rank 1 = hottest page).
///
/// # Example
///
/// ```
/// use proteus_sim::SimRng;
/// use proteus_workload::ZipfSampler;
///
/// let zipf = ZipfSampler::new(1_000_000, 0.8);
/// let mut rng = SimRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` pages with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s` is not finite and positive, or
    /// `s == 1.0` exactly (use `1.0 ± ε`; the harmonic special case is
    /// deliberately excluded to keep one code path).
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "need at least one page");
        assert!(
            s.is_finite() && s > 0.0,
            "exponent must be positive, got {s}"
        );
        assert!(
            (s - 1.0).abs() > 1e-9,
            "s = 1 is a removable singularity; pass 1.0 ± 1e-6 instead"
        );
        let h_integral = |x: f64| (x.powf(1.0 - s) - 1.0) / (1.0 - s);
        let h = |x: f64| x.powf(-s);
        let h_integral_inverse = |x: f64| (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s));
        let h_x1 = h_integral(1.5) - 1.0;
        let h_n = h_integral(n as f64 + 0.5);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
        ZipfSampler {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    /// Number of pages.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.n
    }

    /// The Zipf exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    fn h_integral(&self, x: f64) -> f64 {
        (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
    }

    fn h(&self, x: f64) -> f64 {
        x.powf(-self.s)
    }

    fn h_integral_inverse(&self, x: f64) -> f64 {
        (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
    }

    /// Draws one 1-based rank.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let u = self.h_n + rng.uniform_f64() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k64 = x.clamp(1.0, self.n as f64);
            let k = (k64 + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64;
            }
        }
    }

    /// The theoretical probability of rank `k`:
    /// `k^-s / H_{n,s}` with `H` the generalized harmonic number
    /// (exact for n ≤ 10⁶, Euler–Maclaurin beyond).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    #[must_use]
    pub fn probability(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n, "rank out of range");
        (k as f64).powf(-self.s) / self.harmonic()
    }

    fn harmonic(&self) -> f64 {
        if self.n <= 1_000_000 {
            (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum()
        } else {
            let n = self.n as f64;
            (n.powf(1.0 - self.s) - 1.0) / (1.0 - self.s) + 0.5 + 0.5 * n.powf(-self.s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range() {
        let z = ZipfSampler::new(1000, 0.8);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn head_frequencies_match_theory() {
        let z = ZipfSampler::new(10_000, 0.8);
        let mut rng = SimRng::seed_from_u64(2);
        let n = 400_000;
        let mut counts = [0u64; 11];
        for _ in 0..n {
            let k = z.sample(&mut rng);
            if k <= 10 {
                counts[k as usize] += 1;
            }
        }
        for k in 1..=10u64 {
            let measured = counts[k as usize] as f64 / n as f64;
            let expected = z.probability(k);
            let err = (measured - expected).abs() / expected;
            assert!(
                err < 0.08,
                "rank {k}: measured {measured:.5} expected {expected:.5}"
            );
        }
    }

    #[test]
    fn tail_mass_matches_theory() {
        // P(rank > n/2) should match the harmonic tail, validating the
        // envelope across the whole support rather than just the head.
        let z = ZipfSampler::new(1000, 0.8);
        let expected: f64 = (501..=1000).map(|k| z.probability(k)).sum();
        let mut rng = SimRng::seed_from_u64(9);
        let n = 200_000;
        let tail = (0..n).filter(|_| z.sample(&mut rng) > 500).count();
        let measured = tail as f64 / n as f64;
        assert!(
            (measured - expected).abs() < 0.01,
            "tail measured {measured} expected {expected}"
        );
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let mild = ZipfSampler::new(10_000, 0.6);
        let steep = ZipfSampler::new(10_000, 1.2);
        let mut rng = SimRng::seed_from_u64(3);
        let mut top_share = |z: &ZipfSampler| {
            let n = 100_000;
            let mut top = 0u64;
            for _ in 0..n {
                if z.sample(&mut rng) <= 100 {
                    top += 1;
                }
            }
            top as f64 / n as f64
        };
        let a = top_share(&mild);
        let b = top_share(&steep);
        assert!(
            b > a + 0.1,
            "steep {b} should concentrate more than mild {a}"
        );
    }

    #[test]
    fn probability_sums_to_one() {
        let z = ZipfSampler::new(500, 0.9);
        let total: f64 = (1..=500).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    #[should_panic(expected = "removable singularity")]
    fn s_equal_one_rejected() {
        let _ = ZipfSampler::new(10, 1.0);
    }

    #[test]
    fn single_page_always_rank_one() {
        let z = ZipfSampler::new(1, 0.8);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = ZipfSampler::new(100_000, 0.8);
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
