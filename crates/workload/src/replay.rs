//! Wall-clock replay of a diurnal day at a time-compression factor.
//!
//! The paper's Figs. 10–11 run a full 24-hour day; a test cannot. This
//! module replays a [`DiurnalCurve`] over real sockets with **time
//! compressed and load levels kept real**: a [`CompressedDay`] maps
//! wall-clock elapsed time onto curve time (one simulated day passes in
//! `period / compression` of wall time), and the curve's rate values
//! are issued verbatim — so the cluster sees the same ops/s the curve
//! describes, just with morning arriving in seconds instead of hours.
//! A controller steering by measured ops/s and p99 therefore faces the
//! exact load levels of the uncompressed experiment.
//!
//! [`ReplayPacer`] turns the compressed curve into a request schedule:
//! each call to [`due`](ReplayPacer::due) integrates the rate since the
//! previous call (trapezoidal, with fractional carry) and says how many
//! requests to issue now, so an open-loop driver stays on the curve
//! regardless of its own loop jitter.

use std::time::Duration;

use proteus_sim::SimTime;

use crate::DiurnalCurve;

/// A [`DiurnalCurve`] bound to a wall-clock compression factor.
///
/// `compression = 7200` replays a 24 h curve in 12 s of wall time.
/// Rates are **not** scaled: the point of compression is to walk the
/// controller through a whole day's load shape quickly, not to
/// multiply the load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressedDay {
    curve: DiurnalCurve,
    compression: f64,
}

impl CompressedDay {
    /// Binds `curve` to a compression factor.
    ///
    /// # Panics
    ///
    /// Panics unless `compression >= 1` and finite (an expansion would
    /// make "a day in minutes" read as "a day in weeks").
    #[must_use]
    pub fn new(curve: DiurnalCurve, compression: f64) -> Self {
        assert!(
            compression >= 1.0 && compression.is_finite(),
            "compression factor must be a finite value >= 1"
        );
        CompressedDay { curve, compression }
    }

    /// The curve being replayed.
    #[must_use]
    pub fn curve(&self) -> &DiurnalCurve {
        &self.curve
    }

    /// The time-compression factor.
    #[must_use]
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// How long one simulated day takes on the wall clock.
    #[must_use]
    pub fn wall_day(&self) -> Duration {
        Duration::from_secs_f64(self.curve.period().as_secs_f64() / self.compression)
    }

    /// Maps wall-clock time since replay start onto curve ("simulated
    /// day") time — the axis for comparing a measured `n(t)` against
    /// the paper's oracle schedule.
    #[must_use]
    pub fn sim_time_at(&self, elapsed: Duration) -> SimTime {
        SimTime::from_nanos((elapsed.as_secs_f64() * self.compression * 1e9) as u64)
    }

    /// The request rate (requests per wall-clock second) the replay
    /// should be issuing `elapsed` into the run.
    #[must_use]
    pub fn rate_at_wall(&self, elapsed: Duration) -> f64 {
        self.curve.rate_at(self.sim_time_at(elapsed))
    }

    /// Requests one full compressed day issues in total
    /// (`mean_rate × wall_day`).
    #[must_use]
    pub fn expected_total(&self) -> f64 {
        self.curve.mean_rate() * self.wall_day().as_secs_f64()
    }
}

/// Open-loop pacer for a [`CompressedDay`]: tells a driver how many
/// requests are due at each visit, independent of the driver's loop
/// cadence.
///
/// The integral of the rate between visits is computed trapezoidally
/// and the fractional remainder carried forward, so the issued total
/// tracks `∫rate` exactly even when the rate swings within one visit
/// interval — no drift from polling at 1 ms vs 50 ms.
#[derive(Debug, Clone, Copy)]
pub struct ReplayPacer {
    day: CompressedDay,
    last: Duration,
    carry: f64,
    issued: u64,
}

impl ReplayPacer {
    /// A pacer starting at wall-clock zero of the replay.
    #[must_use]
    pub fn new(day: CompressedDay) -> Self {
        ReplayPacer {
            day,
            last: Duration::ZERO,
            carry: 0.0,
            issued: 0,
        }
    }

    /// The compressed day being paced.
    #[must_use]
    pub fn day(&self) -> &CompressedDay {
        &self.day
    }

    /// How many requests to issue now, given that `elapsed` wall time
    /// has passed since replay start. Time moving backwards (or not at
    /// all) yields zero; the pacer never re-issues an interval.
    pub fn due(&mut self, elapsed: Duration) -> u64 {
        if elapsed <= self.last {
            return 0;
        }
        let dt = (elapsed - self.last).as_secs_f64();
        let avg = 0.5 * (self.day.rate_at_wall(self.last) + self.day.rate_at_wall(elapsed));
        let owed = self.carry + avg * dt;
        let n = owed.floor();
        self.carry = owed - n;
        self.last = elapsed;
        let n = n as u64;
        self.issued += n;
        n
    }

    /// Requests issued so far across all [`due`](Self::due) calls.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_sim::SimDuration;

    fn curve() -> DiurnalCurve {
        DiurnalCurve::new(400.0, 3.0, SimDuration::from_secs(86_400))
    }

    #[test]
    fn wall_day_and_sim_mapping_agree_with_compression() {
        let day = CompressedDay::new(curve(), 7200.0);
        assert_eq!(day.wall_day(), Duration::from_secs(12));
        let end = day.sim_time_at(day.wall_day());
        let err = (end.as_secs_f64() - 86_400.0).abs();
        assert!(err < 1e-3, "wall day must map onto one full period");
        // Rates are replayed verbatim, not scaled by compression.
        let r = day.rate_at_wall(Duration::from_secs(6));
        let direct = curve().rate_at(SimTime::from_secs(6 * 7200));
        assert!((r - direct).abs() < 1e-9);
    }

    #[test]
    fn paced_total_matches_the_curve_integral() {
        let day = CompressedDay::new(curve(), 7200.0);
        let mut pacer = ReplayPacer::new(day);
        // Visit every 5 ms across the whole compressed day.
        let step = Duration::from_millis(5);
        let mut elapsed = Duration::ZERO;
        while elapsed < day.wall_day() {
            elapsed += step;
            pacer.due(elapsed);
        }
        let total = pacer.issued() as f64;
        let expected = day.expected_total();
        let rel = (total - expected).abs() / expected;
        assert!(
            rel < 0.01,
            "issued {total} vs expected {expected} (rel err {rel})"
        );
    }

    #[test]
    fn pacing_is_cadence_independent() {
        let day = CompressedDay::new(curve(), 7200.0);
        let mut fine = ReplayPacer::new(day);
        let mut coarse = ReplayPacer::new(day);
        let end = day.wall_day();
        let mut t = Duration::ZERO;
        while t < end {
            t += Duration::from_millis(2);
            fine.due(t);
        }
        let mut t = Duration::ZERO;
        while t < end {
            t += Duration::from_millis(40);
            coarse.due(t);
        }
        let (a, b) = (fine.issued() as f64, coarse.issued() as f64);
        assert!(
            (a - b).abs() / a < 0.01,
            "2 ms pacing issued {a}, 40 ms pacing issued {b}"
        );
    }

    #[test]
    fn peak_window_issues_more_than_nadir_window() {
        let day = CompressedDay::new(curve(), 7200.0);
        let wall = day.wall_day();
        // Find the busiest and quietest wall instants by scanning.
        let mut peak_at = Duration::ZERO;
        let mut nadir_at = Duration::ZERO;
        for i in 0..1000u32 {
            let t = wall.mul_f64(f64::from(i) / 1000.0);
            if day.rate_at_wall(t) > day.rate_at_wall(peak_at) {
                peak_at = t;
            }
            if day.rate_at_wall(t) < day.rate_at_wall(nadir_at) {
                nadir_at = t;
            }
        }
        let count_around = |at: Duration| {
            let mut p = ReplayPacer::new(day);
            p.due(at); // swallow everything before the window
            p.due(at + Duration::from_millis(500))
        };
        let peak = count_around(peak_at) as f64;
        let nadir = count_around(nadir_at) as f64;
        let ratio = peak / nadir;
        assert!(
            (ratio - 3.0).abs() < 0.35,
            "peak/nadir issue ratio {ratio} should be near the curve's 3.0"
        );
    }

    #[test]
    fn non_advancing_time_issues_nothing() {
        let mut pacer = ReplayPacer::new(CompressedDay::new(curve(), 7200.0));
        let issued = pacer.due(Duration::from_secs(1));
        assert!(issued > 0);
        assert_eq!(pacer.due(Duration::from_secs(1)), 0);
        assert_eq!(pacer.due(Duration::from_millis(900)), 0);
        assert_eq!(pacer.issued(), issued);
    }

    #[test]
    #[should_panic(expected = "compression factor")]
    fn sub_unity_compression_rejected() {
        let _ = CompressedDay::new(curve(), 0.5);
    }
}
