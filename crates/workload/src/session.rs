//! The user-session workload model (the paper's RBE emulation).

use proteus_sim::{SimDuration, SimRng, SimTime};

use crate::zipf::ZipfSampler;

/// Parameters of the session model, matching Section V-A1 and VI-C:
/// each emulated user has an independent, randomly selected page set,
/// exponentially distributed session duration, and a fixed think time
/// between requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Pages per user ("Each user has an independent page set of 50
    /// pages").
    pub pages_per_user: usize,
    /// Think time between a user's consecutive requests (0.5 s in the
    /// paper).
    pub think_time: SimDuration,
    /// Mean session duration (exponentially distributed).
    pub mean_session: SimDuration,
    /// Catalog size the page sets are drawn from.
    pub catalog_pages: u64,
    /// Zipf exponent of page popularity within the catalog.
    pub zipf_exponent: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            pages_per_user: 50,
            think_time: SimDuration::from_millis(500),
            mean_session: SimDuration::from_secs(120),
            catalog_pages: 2_560_000,
            zipf_exponent: 0.8,
        }
    }
}

/// Generates the requests of user sessions: sessions start at given
/// times, draw a personal Zipf-sampled page set, and then issue one
/// request per think-time until the (exponential) session ends.
///
/// # Example
///
/// ```
/// use proteus_sim::{SimRng, SimTime};
/// use proteus_workload::{SessionConfig, SessionWorkload};
///
/// let workload = SessionWorkload::new(SessionConfig::default());
/// let mut rng = SimRng::seed_from_u64(1);
/// let requests = workload.session_requests(SimTime::ZERO, &mut rng);
/// assert!(!requests.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SessionWorkload {
    config: SessionConfig,
    zipf: ZipfSampler,
}

impl SessionWorkload {
    /// Creates the workload model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero pages, zero
    /// think time, non-positive session duration, or an invalid Zipf
    /// exponent).
    #[must_use]
    pub fn new(config: SessionConfig) -> Self {
        assert!(config.pages_per_user > 0, "users need at least one page");
        assert!(
            config.think_time > SimDuration::ZERO,
            "think time must be positive"
        );
        assert!(
            config.mean_session > SimDuration::ZERO,
            "session duration must be positive"
        );
        let zipf = ZipfSampler::new(config.catalog_pages, config.zipf_exponent);
        SessionWorkload { config, zipf }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Draws one user's personal page set (1-based page ranks).
    pub fn draw_page_set(&self, rng: &mut SimRng) -> Vec<u64> {
        (0..self.config.pages_per_user)
            .map(|_| self.zipf.sample(rng))
            .collect()
    }

    /// Generates all `(time, page)` requests of one session starting at
    /// `start`: duration ~ Exp(mean_session), one request per think
    /// time, each for a uniformly chosen page from the user's set.
    pub fn session_requests(&self, start: SimTime, rng: &mut SimRng) -> Vec<(SimTime, u64)> {
        let pages = self.draw_page_set(rng);
        let duration_secs =
            -self.config.mean_session.as_secs_f64() * rng.positive_uniform_f64().ln();
        let duration = SimDuration::from_secs_f64(duration_secs);
        let mut out = Vec::new();
        let mut t = start;
        let end = start + duration;
        // A session always issues at least its first request.
        loop {
            let page = pages[rng.index(pages.len())];
            out.push((t, page));
            t += self.config.think_time;
            if t > end {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SessionConfig {
        SessionConfig {
            pages_per_user: 5,
            think_time: SimDuration::from_millis(500),
            mean_session: SimDuration::from_secs(10),
            catalog_pages: 1000,
            zipf_exponent: 0.8,
        }
    }

    #[test]
    fn sessions_respect_think_time_spacing() {
        let w = SessionWorkload::new(small_config());
        let mut rng = SimRng::seed_from_u64(1);
        let reqs = w.session_requests(SimTime::from_secs(5), &mut rng);
        assert!(!reqs.is_empty());
        for pair in reqs.windows(2) {
            assert_eq!(pair[1].0 - pair[0].0, SimDuration::from_millis(500));
        }
        assert_eq!(reqs[0].0, SimTime::from_secs(5));
    }

    #[test]
    fn requests_stay_within_the_page_set() {
        let w = SessionWorkload::new(small_config());
        let mut rng = SimRng::seed_from_u64(2);
        // Re-derive the page set by replaying the RNG stream.
        let mut rng_probe = SimRng::seed_from_u64(2);
        let pages = w.draw_page_set(&mut rng_probe);
        let reqs = w.session_requests(SimTime::ZERO, &mut rng);
        for (_, p) in &reqs {
            assert!(pages.contains(p), "page {p} outside the user's set");
        }
    }

    #[test]
    fn mean_session_length_converges() {
        let w = SessionWorkload::new(small_config());
        let mut rng = SimRng::seed_from_u64(3);
        let trials = 3000;
        let total: usize = (0..trials)
            .map(|_| w.session_requests(SimTime::ZERO, &mut rng).len())
            .sum();
        let mean_requests = total as f64 / trials as f64;
        // Expected ≈ mean_session / think_time = 20 requests.
        assert!(
            (mean_requests - 20.0).abs() < 2.0,
            "mean requests {mean_requests}"
        );
    }

    #[test]
    fn page_sets_favor_popular_pages() {
        let w = SessionWorkload::new(SessionConfig {
            catalog_pages: 100_000,
            ..small_config()
        });
        let mut rng = SimRng::seed_from_u64(4);
        let mut head = 0u64;
        let mut total = 0u64;
        for _ in 0..2000 {
            for p in w.draw_page_set(&mut rng) {
                total += 1;
                if p <= 1000 {
                    head += 1;
                }
            }
        }
        let share = head as f64 / total as f64;
        // Top 1% of a Zipf(0.8) catalog draws ~35-45% of traffic.
        assert!(share > 0.25, "head share {share}");
    }

    #[test]
    #[should_panic(expected = "think time must be positive")]
    fn zero_think_time_rejected() {
        let _ = SessionWorkload::new(SessionConfig {
            think_time: SimDuration::ZERO,
            ..small_config()
        });
    }
}
