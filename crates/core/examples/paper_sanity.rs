use proteus_core::*;
use proteus_workload::Trace;
use std::time::Instant;

fn main() {
    let config = ClusterConfig::paper_scale();
    let t0 = Instant::now();
    let trace = Trace::synthesize(&config.trace_config(3000.0), 42);
    println!("trace: {} requests in {:?}", trace.len(), t0.elapsed());
    let plan = ProvisioningPlan::load_proportional(
        &trace.requests_per_slot(config.slot, config.slots),
        config.cache_servers,
        4,
    );
    println!(
        "plan: {:?} transitions={}",
        plan.counts(),
        plan.transitions()
    );
    for sc in Scenario::all() {
        let t0 = Instant::now();
        let r = ClusterSim::new(config.clone(), sc, &trace, &plan, 5).run();
        let worst = r.worst_bucket_quantile(0.999).unwrap();
        let typical = r.typical_bucket_quantile(0.999).unwrap();
        let ratios: Vec<f64> = r.balance_ratio_per_slot().into_iter().flatten().collect();
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("{:15} hit={:.3} db={} mig={} fp={} worst_p999={:.0}ms typ_p999={:.0}ms balance={:.3} E_tot={:.1}Wh E_cache={:.1}Wh [{:?}]",
            sc.name(), r.counters.cache_hit_ratio(), r.counters.database,
            r.counters.migrated, r.counters.database_false_positive,
            worst.as_millis_f64(), typical.as_millis_f64(), mean_ratio,
            r.total_energy_wh(), r.cache_energy_wh(), t0.elapsed());
    }
}
