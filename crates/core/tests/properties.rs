//! Property-based tests for the core system's state machines.

use proptest::prelude::*;
use proteus_bloom::{BloomConfig, CountingBloomFilter};
use proteus_cache::{CacheConfig, CacheEngine};
use proteus_core::{
    FeedbackController, PowerState, ProvisioningPlan, Router, Scenario, TransitionManager,
};
use proteus_sim::{SimDuration, SimTime};
use proteus_store::{ShardedStore, StoreConfig};

fn empty_digest() -> proteus_bloom::BloomFilter {
    CountingBloomFilter::new(BloomConfig::new(64, 1, 2)).snapshot()
}

proptest! {
    /// The transition state machine keeps its invariants under any
    /// sequence of transitions: exactly `active` servers are
    /// On/Draining-free in the prefix, Off servers are outside, and
    /// Draining servers sit between `active` and `previous_active`.
    #[test]
    fn transition_state_machine_invariants(
        total in 2usize..12,
        targets in prop::collection::vec(1usize..12, 1..20),
        smooth in prop::collection::vec(any::<bool>(), 20),
    ) {
        let mut tm = TransitionManager::new(total, total);
        let mut now = SimTime::ZERO;
        for (step, (&target, &smooth)) in targets.iter().zip(&smooth).enumerate() {
            let target = target.min(total);
            now += SimDuration::from_secs(10);
            if smooth {
                tm.begin(now, target, SimDuration::from_secs(3), |_| empty_digest());
            } else {
                for _server in tm.switch_abrupt(target) {}
            }
            prop_assert_eq!(tm.active(), target, "step {}", step);
            // Active prefix is On or (transiently) never Off.
            for i in 0..tm.active() {
                prop_assert_eq!(tm.state(i), PowerState::On, "active server {} state", i);
            }
            // Servers beyond both mappings are Off or Draining.
            for i in tm.active().max(tm.previous_active())..total {
                prop_assert_eq!(tm.state(i), PowerState::Off, "outside server {}", i);
            }
            // Draining servers only exist between the two mappings.
            for i in 0..total {
                if tm.state(i) == PowerState::Draining {
                    prop_assert!(i >= tm.active() && i < tm.previous_active());
                }
            }
            // Finalize sometimes, mimicking drain deadlines.
            if step % 3 == 2 {
                for _server in tm.finalize(now) {}
                prop_assert_eq!(tm.previous_active(), tm.active());
            }
        }
    }

    /// Digest snapshots exist exactly for old-mapping servers while a
    /// window is open, and never after finalize.
    #[test]
    fn transition_digest_lifecycle(total in 2usize..10, target in 1usize..10) {
        let target = target.min(total);
        let mut tm = TransitionManager::new(total, total);
        tm.begin(SimTime::ZERO, target, SimDuration::from_secs(5), |_| empty_digest());
        if target != total {
            for i in 0..total {
                prop_assert_eq!(tm.digest(i).is_some(), i < total, "during window, server {}", i);
            }
        }
        tm.finalize(SimTime::from_secs(5));
        for i in 0..total {
            prop_assert!(tm.digest(i).is_none(), "after finalize, server {}", i);
        }
    }

    /// Load-proportional plans always respect bounds and track volume
    /// monotonically: a strictly larger volume never gets fewer servers.
    #[test]
    fn plan_respects_bounds_and_monotonicity(
        volumes in prop::collection::vec(1u64..1_000_000, 2..50),
        total in 2usize..32,
    ) {
        let min = (total / 3).max(1);
        let plan = ProvisioningPlan::load_proportional(&volumes, total, min);
        for (i, &n) in plan.counts().iter().enumerate() {
            prop_assert!((min..=total).contains(&n), "slot {} count {}", i, n);
        }
        for i in 0..volumes.len() {
            for j in 0..volumes.len() {
                if volumes[i] > volumes[j] {
                    prop_assert!(
                        plan.active_at(i) >= plan.active_at(j),
                        "volume {} > {} but servers {} < {}",
                        volumes[i], volumes[j], plan.active_at(i), plan.active_at(j)
                    );
                }
            }
        }
        // The peak slot gets everything.
        let peak = volumes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        prop_assert_eq!(plan.active_at(peak), total);
    }

    /// The feedback controller never leaves its bounds and always
    /// reacts in the correct direction.
    #[test]
    fn feedback_controller_direction(
        total in 2usize..20,
        current in 1usize..20,
        delay_ms in 0u64..5_000,
    ) {
        let current = current.min(total);
        let mut fc = FeedbackController::paper_defaults(total);
        let delay = SimDuration::from_millis(delay_ms);
        let next = fc.decide(current, delay);
        prop_assert!((1..=total).contains(&next));
        if delay > SimDuration::from_millis(500) {
            prop_assert!(next >= current, "over bound must not scale down");
        }
        if delay_ms < 100 {
            prop_assert!(next <= current, "deep headroom must not scale up");
        }
        prop_assert!((next as i64 - current as i64).abs() <= 1, "one step per slot");
    }

    /// Algorithm 2 always returns the authoritative value regardless of
    /// cache/transition state, for any interleaving of fetches and
    /// transitions.
    #[test]
    fn router_always_returns_authoritative_data(
        ops in prop::collection::vec((0u16..60, any::<bool>()), 1..60),
        servers in 2usize..6,
    ) {
        let router = Router::new(Scenario::Proteus.strategy(servers, 0));
        let mut caches: Vec<CacheEngine> = (0..servers)
            .map(|_| {
                CacheEngine::new(
                    CacheConfig::with_capacity(1 << 16)
                        .digest(BloomConfig::new(1 << 12, 4, 4)),
                )
            })
            .collect();
        let mut db = ShardedStore::new(StoreConfig { object_size: 64, ..StoreConfig::default() });
        let mut tm = TransitionManager::new(servers, servers);
        let mut now = SimTime::ZERO;
        let mut next_active = servers;
        for &(page, do_transition) in &ops {
            now += SimDuration::from_millis(200);
            if do_transition {
                next_active = if next_active > 1 { next_active - 1 } else { servers };
                let snapshots: Vec<_> =
                    caches.iter().map(CacheEngine::digest_snapshot).collect();
                tm.begin(now, next_active, SimDuration::from_secs(1), |i| {
                    snapshots[i].clone()
                });
            }
            let key = format!("page:{page}").into_bytes();
            let expect = proteus_store::generate_page_content(&key, 64);
            let out = router.fetch(&key, now, &mut caches, &mut db, &tm, true);
            prop_assert_eq!(&out.value, &expect, "wrong data for page {}", page);
            prop_assert!(out.new_server.index() < tm.active());
        }
    }
}
