//! Experiment metrics: fetch classification, counters, and the
//! end-of-run report.

use proteus_sim::{Histogram, SimDuration, SimTime};

/// How one request was ultimately served (Algorithm 2's branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchClass {
    /// Served from the key's (new-mapping) cache server.
    NewHit,
    /// Served from the old server during a transition window and
    /// migrated on demand — the amortized-migration path.
    Migrated,
    /// Fetched from the database because the data was cold.
    Database,
    /// Fetched from the database after the old server's digest answered
    /// "yes" but the lookup missed — a Bloom false positive.
    DatabaseFalsePositive,
}

/// Counters over all completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchCounters {
    /// New-server cache hits.
    pub new_hits: u64,
    /// On-demand migrations (old-server hits during transitions).
    pub migrated: u64,
    /// Cold fetches from the database.
    pub database: u64,
    /// Database fetches caused by digest false positives.
    pub database_false_positive: u64,
}

impl FetchCounters {
    /// Records one classified completion.
    pub fn record(&mut self, class: FetchClass) {
        match class {
            FetchClass::NewHit => self.new_hits += 1,
            FetchClass::Migrated => self.migrated += 1,
            FetchClass::Database => self.database += 1,
            FetchClass::DatabaseFalsePositive => self.database_false_positive += 1,
        }
    }

    /// Total completions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.new_hits + self.migrated + self.database + self.database_false_positive
    }

    /// Fraction of requests served by the cache tier (new hits plus
    /// migrations).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.new_hits + self.migrated) as f64 / total as f64
        }
    }

    /// Total database fetches.
    #[must_use]
    pub fn database_total(&self) -> u64 {
        self.database + self.database_false_positive
    }
}

/// Everything a [`ClusterSim`](crate::ClusterSim) run measures.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Scenario name the run used.
    pub scenario: String,
    /// Slot width.
    pub slot: SimDuration,
    /// Requests that arrived in each slot.
    pub requests_per_slot: Vec<u64>,
    /// Active cache servers in each slot (the applied plan).
    pub active_per_slot: Vec<usize>,
    /// Requests handled by each cache server per slot
    /// (`[slot][server]`) — the Fig. 5 load data.
    pub per_server_per_slot: Vec<Vec<u64>>,
    /// Response-time histogram per time bucket — the Fig. 9 data.
    pub latency_buckets: Vec<Histogram>,
    /// Fetch-path counters.
    pub counters: FetchCounters,
    /// `(time, total watts, cache-tier watts)` power samples — the
    /// Fig. 10 data.
    pub power_samples: Vec<(SimTime, f64, f64)>,
    /// Whole-cluster energy in joules — the Fig. 11 data.
    pub total_energy_j: f64,
    /// Cache-tier energy in joules.
    pub cache_energy_j: f64,
}

impl ClusterReport {
    /// Total completed requests.
    #[must_use]
    pub fn completed_requests(&self) -> u64 {
        self.counters.total()
    }

    /// Fig. 5's metric per slot: `min / max` requests over the servers
    /// active in that slot (`None` when a slot saw no traffic).
    #[must_use]
    pub fn balance_ratio_per_slot(&self) -> Vec<Option<f64>> {
        self.per_server_per_slot
            .iter()
            .zip(&self.active_per_slot)
            .map(|(counts, &n)| {
                let active = &counts[..n.min(counts.len())];
                let max = active.iter().copied().max().unwrap_or(0);
                if max == 0 {
                    None
                } else {
                    let min = active.iter().copied().min().unwrap_or(0);
                    Some(min as f64 / max as f64)
                }
            })
            .collect()
    }

    /// The `q`-quantile response time per bucket (Fig. 9 uses
    /// `q = 0.999`).
    #[must_use]
    pub fn quantile_per_bucket(&self, q: f64) -> Vec<Option<SimDuration>> {
        self.latency_buckets.iter().map(|h| h.quantile(q)).collect()
    }

    /// The worst `q`-quantile across all buckets.
    #[must_use]
    pub fn worst_bucket_quantile(&self, q: f64) -> Option<SimDuration> {
        self.quantile_per_bucket(q).into_iter().flatten().max()
    }

    /// The median of the per-bucket `q`-quantiles: the "steady-state"
    /// level against which Fig. 9's spikes stand out.
    #[must_use]
    pub fn typical_bucket_quantile(&self, q: f64) -> Option<SimDuration> {
        let mut values: Vec<SimDuration> =
            self.quantile_per_bucket(q).into_iter().flatten().collect();
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        Some(values[values.len() / 2])
    }

    /// Whole-cluster energy in watt-hours.
    #[must_use]
    pub fn total_energy_wh(&self) -> f64 {
        self.total_energy_j / 3600.0
    }

    /// Cache-tier energy in watt-hours.
    #[must_use]
    pub fn cache_energy_wh(&self) -> f64 {
        self.cache_energy_j / 3600.0
    }

    /// Mean active cache servers over the run.
    #[must_use]
    pub fn mean_active_servers(&self) -> f64 {
        if self.active_per_slot.is_empty() {
            return 0.0;
        }
        self.active_per_slot.iter().sum::<usize>() as f64 / self.active_per_slot.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ClusterReport {
        let mut h0 = Histogram::new();
        h0.record(SimDuration::from_millis(2));
        let mut h1 = Histogram::new();
        h1.record(SimDuration::from_millis(100));
        h1.record(SimDuration::from_millis(200));
        let mut counters = FetchCounters::default();
        counters.record(FetchClass::NewHit);
        counters.record(FetchClass::NewHit);
        counters.record(FetchClass::Migrated);
        counters.record(FetchClass::Database);
        ClusterReport {
            scenario: "test".into(),
            slot: SimDuration::from_secs(10),
            requests_per_slot: vec![3, 1],
            active_per_slot: vec![2, 1],
            per_server_per_slot: vec![vec![2, 1, 0], vec![1, 0, 0]],
            latency_buckets: vec![h0, h1],
            counters,
            power_samples: vec![],
            total_energy_j: 7200.0,
            cache_energy_j: 3600.0,
        }
    }

    #[test]
    fn counters_classify_and_total() {
        let r = sample_report();
        assert_eq!(r.completed_requests(), 4);
        assert_eq!(r.counters.new_hits, 2);
        assert!((r.counters.cache_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(r.counters.database_total(), 1);
    }

    #[test]
    fn balance_ratio_uses_only_active_servers() {
        let r = sample_report();
        let ratios = r.balance_ratio_per_slot();
        // Slot 0: active 2 servers with counts [2, 1] → 0.5.
        assert_eq!(ratios[0], Some(0.5));
        // Slot 1: single active server → 1.0.
        assert_eq!(ratios[1], Some(1.0));
    }

    #[test]
    fn quantiles_per_bucket() {
        let r = sample_report();
        let p999 = r.quantile_per_bucket(0.999);
        assert!(p999[0].unwrap() < SimDuration::from_millis(3));
        assert!(p999[1].unwrap() > SimDuration::from_millis(150));
        assert!(r.worst_bucket_quantile(0.999).unwrap() > SimDuration::from_millis(150));
        assert!(r.typical_bucket_quantile(0.999).unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn energy_conversions() {
        let r = sample_report();
        assert!((r.total_energy_wh() - 2.0).abs() < 1e-12);
        assert!((r.cache_energy_wh() - 1.0).abs() < 1e-12);
        assert!((r.mean_active_servers() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_slot_has_no_ratio() {
        let mut r = sample_report();
        r.per_server_per_slot = vec![vec![0, 0, 0]];
        r.active_per_slot = vec![2];
        assert_eq!(r.balance_ratio_per_slot(), vec![None]);
    }
}
