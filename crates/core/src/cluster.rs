//! The discrete-event simulation of the full cluster.
//!
//! Replays a request trace through web → cache → database with
//! queueing, executing one Table II scenario against a provisioning
//! plan, and collecting the Fig. 4/5/9/10/11 measurements. The
//! database shards' finite connection pools are the load-dependent
//! element: when a provisioning transition remaps keys and the cache
//! tier goes cold, the resulting miss storm queues up at the shards and
//! surfaces as the Naive/Consistent response-time spikes of Fig. 9 —
//! while Proteus's digest-guided migration keeps the storm away from
//! the database entirely.

use proteus_cache::{CacheConfig, CacheEngine};
use proteus_ring::{hash::KeyHasher, PlacementStrategy};
use proteus_sim::{EventQueue, Histogram, Resource, SimDuration, SimRng, SimTime, TimeSeries};
use proteus_store::{ShardedStore, StoreConfig};
use proteus_workload::{Trace, TraceRecord};

use std::collections::HashMap;

use crate::config::ClusterConfig;
use crate::controller::{FeedbackController, ProvisioningPlan};
use crate::metrics::{ClusterReport, FetchClass, FetchCounters};
use crate::power::{EnergyMeter, PowerState};
use crate::scenario::Scenario;
use crate::transition::TransitionManager;

/// Per-request context threaded through the event chain.
#[derive(Debug)]
struct Ctx {
    arrival: SimTime,
    key: Vec<u8>,
    new_server: usize,
    /// The old-mapping server whose digest matched, pinned at
    /// digest-check time so a slot boundary between the check and the
    /// old-server lookup cannot misroute the migration probe.
    old_server: Option<usize>,
    false_positive: bool,
}

#[derive(Debug)]
enum Event {
    /// The trace record at this index arrives at the web tier.
    Arrival(usize),
    /// The request reaches its new-mapping cache server.
    CacheLookup(Ctx),
    /// The request reaches the old-mapping cache server (migration
    /// attempt during a transition window).
    OldLookup(Ctx),
    /// The database shard finished the fetch.
    DbDone(Ctx),
    /// A provisioning slot begins.
    SlotStart(usize),
    /// A transition drain window ends.
    DrainEnd,
    /// Fault injection: wipe one server's cache (crash + fast restart).
    CacheWipe(usize),
    /// PDU power sample.
    PowerSample,
}

/// One cache server in the simulation.
struct CacheNode {
    engine: CacheEngine,
    service: Resource,
    /// Busy time at the previous power sample, for utilization deltas.
    sampled_busy: SimDuration,
}

/// The cluster simulator. Construct with a scenario, a trace, and a
/// provisioning plan; [`run`](Self::run) consumes it and returns the
/// [`ClusterReport`].
///
/// # Example
///
/// See the crate-level example.
pub struct ClusterSim {
    config: ClusterConfig,
    scenario: Scenario,
    strategy: Box<dyn PlacementStrategy + Send + Sync>,
    hasher: KeyHasher,
    records: Vec<TraceRecord>,
    plan: ProvisioningPlan,
    feedback: Option<FeedbackController>,
    rng: SimRng,

    nodes: Vec<CacheNode>,
    web_pools: Vec<Resource>,
    web_sampled_busy: Vec<SimDuration>,
    db: ShardedStore,
    db_pools: Vec<Resource>,
    transition: TransitionManager,
    /// Digests become consultable once the transition broadcast lands.
    digests_ready_at: SimTime,
    /// Keys with a database fetch in flight, and the requests waiting
    /// on it. The web tier coalesces concurrent misses for one key
    /// into a single fetch — the standard dog-pile countermeasure the
    /// paper cites ("Strategy: Break up the memcache dog pile"); an
    /// open-loop replay without it collapses unrecoverably where the
    /// paper's closed-loop RBE load self-throttled.
    inflight: HashMap<Vec<u8>, Vec<Ctx>>,

    queue: EventQueue<Event>,
    now: SimTime,
    current_slot: usize,

    // Metrics.
    requests_per_slot: Vec<u64>,
    active_per_slot: Vec<usize>,
    per_server_per_slot: Vec<Vec<u64>>,
    latency_buckets: Vec<Histogram>,
    counters: FetchCounters,
    power_samples: Vec<(SimTime, f64, f64)>,
    total_meter: EnergyMeter,
    cache_meter: EnergyMeter,
    arrivals_series: TimeSeries,
    peak_rate: f64,
}

impl ClusterSim {
    /// Builds a simulator for `scenario` over `trace`, applying `plan`
    /// (ignored by `Static`, which pins all servers on). `seed` drives
    /// all stochastic latencies.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`ClusterConfig::validate`])
    /// or the plan's slot count differs from the configuration's.
    #[must_use]
    pub fn new(
        config: ClusterConfig,
        scenario: Scenario,
        trace: &Trace,
        plan: &ProvisioningPlan,
        seed: u64,
    ) -> Self {
        config.validate();
        assert_eq!(
            plan.slots(),
            config.slots,
            "plan has {} slots, configuration expects {}",
            plan.slots(),
            config.slots
        );
        assert_eq!(
            plan.total_servers(),
            config.cache_servers,
            "plan sized for a different cluster"
        );
        let strategy = scenario.strategy(config.cache_servers, 0);
        let mut cache_cfg =
            CacheConfig::with_capacity(config.cache_capacity_bytes).hot_ttl(config.hot_ttl);
        if let Some(digest) = config.digest_override {
            cache_cfg = cache_cfg.digest(digest);
        }
        let nodes = (0..config.cache_servers)
            .map(|_| CacheNode {
                engine: CacheEngine::new(cache_cfg),
                service: Resource::new(config.cache_concurrency),
                sampled_busy: SimDuration::ZERO,
            })
            .collect();
        let db = ShardedStore::new(StoreConfig {
            shards: config.db_shards,
            object_size: config.object_size,
            placement_seed: 0x570_12e5,
        });
        let db_pools = (0..config.db_shards)
            .map(|_| Resource::new(config.db_pool_per_shard))
            .collect();
        let web_pools = (0..config.web_servers)
            .map(|_| Resource::new(config.web_concurrency))
            .collect();
        let initial_active = if scenario.is_dynamic() {
            plan.active_at(0)
        } else {
            config.cache_servers
        };
        let transition = TransitionManager::new(config.cache_servers, initial_active);
        let slots = config.slots;
        let buckets = config.response_buckets;
        let arrivals_series = TimeSeries::new(config.power_sample, {
            let n = (config.duration().as_nanos() / config.power_sample.as_nanos()) as usize;
            n.max(1)
        });
        let peak_rate = estimate_peak_rate(trace.records(), config.slot);
        ClusterSim {
            rng: SimRng::seed_from_u64(seed),
            strategy,
            hasher: KeyHasher::default(),
            records: trace.records().to_vec(),
            plan: plan.clone(),
            feedback: None,
            nodes,
            web_pools,
            web_sampled_busy: vec![SimDuration::ZERO; config.web_servers],
            db,
            db_pools,
            transition,
            digests_ready_at: SimTime::ZERO,
            inflight: HashMap::new(),
            queue: EventQueue::with_capacity(1024),
            now: SimTime::ZERO,
            current_slot: 0,
            requests_per_slot: vec![0; slots],
            active_per_slot: vec![0; slots],
            per_server_per_slot: vec![vec![0; config.cache_servers]; slots],
            latency_buckets: vec![Histogram::new(); buckets],
            counters: FetchCounters::default(),
            power_samples: Vec::new(),
            total_meter: EnergyMeter::new(),
            cache_meter: EnergyMeter::new(),
            arrivals_series,
            peak_rate,
            scenario,
            config,
        }
    }

    /// Replaces the fixed plan with a live feedback controller (used to
    /// derive the Fig. 4 `n(t)` curve): at each slot boundary the
    /// controller observes the previous slot's 99.9th-percentile
    /// response time and decides the next count.
    #[must_use]
    pub fn with_feedback(mut self, controller: FeedbackController) -> Self {
        self.feedback = Some(controller);
        self
    }

    fn bucket_of(&self, t: SimTime) -> usize {
        let total = self.config.duration().as_nanos();
        let idx = (t.as_nanos().min(total.saturating_sub(1)) as u128
            * self.config.response_buckets as u128
            / total as u128) as usize;
        idx.min(self.config.response_buckets - 1)
    }

    fn slot_of(&self, t: SimTime) -> usize {
        ((t.as_nanos() / self.config.slot.as_nanos()) as usize).min(self.config.slots - 1)
    }

    fn prewarm(&mut self) {
        if !self.config.prewarm {
            return;
        }
        let n0 = self.transition.active();
        let per_object = self.config.object_size as u64 + 64;
        let budget_per_node = self.config.cache_capacity_bytes;
        let max_objects = (budget_per_node / per_object) * n0 as u64;
        for page in 1..=self.config.pages.min(max_objects.saturating_mul(2)) {
            let key = page_key(page);
            let hash = self.hasher.hash_bytes(&key);
            let server = self.strategy.server_for(hash, n0).index();
            let node = &mut self.nodes[server];
            let cost = key.len() as u64 + self.config.object_size as u64 + 48;
            if node.engine.bytes_used() + cost <= budget_per_node {
                let value = vec![0u8; self.config.object_size];
                node.engine.put(&key, value, SimTime::ZERO);
            }
        }
    }

    fn record_completion(&mut self, arrival: SimTime, done: SimTime, class: FetchClass) {
        let latency = done.saturating_since(arrival);
        let bucket = self.bucket_of(done);
        self.latency_buckets[bucket].record(latency);
        self.counters.record(class);
    }

    fn count_server_request(&mut self, server: usize) {
        let slot = self.current_slot;
        self.per_server_per_slot[slot][server] += 1;
    }

    fn cache_round_trip(&mut self, server: usize) -> SimDuration {
        let svc = self.config.latency.cache_service.sample(&mut self.rng);
        let grant = self.nodes[server].service.acquire(self.now, svc);
        let rtt = self.config.latency.cache_rtt.sample(&mut self.rng);
        grant.end.saturating_since(self.now) + rtt
    }

    fn go_to_database(&mut self, ctx: Ctx) {
        if self.config.coalesce_db_fetches {
            // Coalesce with an in-flight fetch for the same key.
            if let Some(waiters) = self.inflight.get_mut(&ctx.key) {
                waiters.push(ctx);
                return;
            }
            self.inflight.insert(ctx.key.clone(), Vec::new());
        }
        let shard = self.db.shard_of(&ctx.key).index();
        let rtt = self.config.latency.db_rtt.sample(&mut self.rng);
        let svc = self.config.latency.db_service.sample(&mut self.rng);
        let arrive_at_shard = self.now + rtt;
        let grant = self.db_pools[shard].acquire(arrive_at_shard, svc);
        let rtt_back = self.config.latency.db_rtt.sample(&mut self.rng);
        self.queue
            .schedule(grant.end + rtt_back, Event::DbDone(ctx));
    }

    fn handle_arrival(&mut self, idx: usize) {
        // Chain the next arrival.
        if idx + 1 < self.records.len() {
            self.queue
                .schedule(self.records[idx + 1].at, Event::Arrival(idx + 1));
        }
        let rec = self.records[idx];
        self.requests_per_slot[self.current_slot] += 1;
        self.arrivals_series.add(self.now, 1.0);
        let key = page_key(rec.page);
        let hash = self.hasher.hash_bytes(&key);
        let new_server = self
            .strategy
            .server_for(hash, self.transition.active())
            .index();
        // "The user requests will be uniformly randomly directed to all
        // web servers" (Section VI-C); each has a finite servlet pool.
        let web_server = self.rng.index(self.config.web_servers);
        let web = self.config.latency.web_processing.sample(&mut self.rng);
        let grant = self.web_pools[web_server].acquire(self.now, web);
        let travel = self.config.latency.cache_rtt.sample(&mut self.rng);
        let ctx = Ctx {
            arrival: rec.at,
            key,
            new_server,
            old_server: None,
            false_positive: false,
        };
        self.queue
            .schedule(grant.end + travel, Event::CacheLookup(ctx));
    }

    fn handle_cache_lookup(&mut self, ctx: Ctx) {
        let server = ctx.new_server;
        self.count_server_request(server);
        let hit = self.nodes[server].engine.get(&ctx.key, self.now).is_some();
        if hit {
            let dt = self.cache_round_trip(server);
            self.record_completion(ctx.arrival, self.now + dt, FetchClass::NewHit);
            return;
        }
        // Miss at the new server. During a digest-scenario transition
        // window, consult the old server's digest (Algorithm 2 line 6)
        // — but only once the broadcast has reached the web tier.
        if self.scenario.uses_digests()
            && self.transition.in_transition(self.now)
            && self.now >= self.digests_ready_at
        {
            let hash = self.hasher.hash_bytes(&ctx.key);
            let old = self
                .strategy
                .server_for(hash, self.transition.previous_active())
                .index();
            if old != server {
                if let Some(digest) = self.transition.digest(old) {
                    if digest.contains(&ctx.key) {
                        let travel = self.config.latency.cache_rtt.sample(&mut self.rng);
                        let mut ctx = ctx;
                        ctx.old_server = Some(old);
                        self.queue
                            .schedule(self.now + travel, Event::OldLookup(ctx));
                        return;
                    }
                }
            }
        }
        self.go_to_database(ctx);
    }

    fn handle_old_lookup(&mut self, mut ctx: Ctx) {
        let old = ctx
            .old_server
            .expect("OldLookup is only scheduled after a digest match");
        self.count_server_request(old);
        let value = self.nodes[old]
            .engine
            .get(&ctx.key, self.now)
            .map(<[u8]>::to_vec);
        match value {
            Some(value) => {
                // Migrate on demand: install at the new server, then
                // answer. Costs: old server service + travel + the put
                // at the new server.
                let dt_old = self.cache_round_trip(old);
                self.nodes[ctx.new_server]
                    .engine
                    .put(&ctx.key, value, self.now);
                let dt_put = self.cache_round_trip(ctx.new_server);
                self.record_completion(
                    ctx.arrival,
                    self.now + dt_old + dt_put,
                    FetchClass::Migrated,
                );
            }
            None => {
                // Digest false positive (Algorithm 2 line 9).
                ctx.false_positive = true;
                self.go_to_database(ctx);
            }
        }
    }

    fn handle_db_done(&mut self, ctx: Ctx) {
        let value = self.db.fetch(&ctx.key);
        // Only running servers can accept the fill; a server that was
        // abruptly powered off mid-flight drops it (and must not be
        // charged service time).
        let state = self.transition.state(ctx.new_server);
        let dt_put = if matches!(state, PowerState::On | PowerState::Draining) {
            self.nodes[ctx.new_server]
                .engine
                .put(&ctx.key, value, self.now);
            self.cache_round_trip(ctx.new_server)
        } else {
            self.config.latency.cache_rtt.sample(&mut self.rng)
        };
        let class = if ctx.false_positive {
            FetchClass::DatabaseFalsePositive
        } else {
            FetchClass::Database
        };
        self.record_completion(ctx.arrival, self.now + dt_put, class);
        // Release every request that coalesced onto this fetch.
        if let Some(waiters) = self.inflight.remove(&ctx.key) {
            for waiter in waiters {
                let dt = self.cache_round_trip(waiter.new_server);
                let class = if waiter.false_positive {
                    FetchClass::DatabaseFalsePositive
                } else {
                    FetchClass::Database
                };
                self.record_completion(waiter.arrival, self.now + dt, class);
            }
        }
    }

    fn handle_slot_start(&mut self, slot: usize) {
        self.current_slot = slot;
        let target = if !self.scenario.is_dynamic() {
            self.config.cache_servers
        } else if let Some(fc) = &mut self.feedback {
            if slot == 0 {
                self.transition.active()
            } else {
                let prev_p999 = previous_slot_delay(
                    &self.latency_buckets,
                    self.config.response_buckets,
                    self.config.slots,
                    slot,
                );
                fc.decide(self.transition.active(), prev_p999)
            }
        } else {
            self.plan.active_at(slot)
        };
        self.active_per_slot[slot] = target;
        if target != self.transition.active() {
            if self.scenario.uses_digests() {
                let nodes = &self.nodes;
                self.transition
                    .begin(self.now, target, self.config.hot_ttl, |i| {
                        nodes[i].engine.digest_snapshot()
                    });
                self.digests_ready_at = self.now + self.config.digest_broadcast_delay;
                self.queue
                    .schedule(self.now + self.config.hot_ttl, Event::DrainEnd);
            } else {
                // Naive/Consistent: abrupt switch, contents lost.
                for server in self.transition.switch_abrupt(target) {
                    self.nodes[server].engine.clear();
                }
            }
        }
        if slot + 1 < self.config.slots {
            self.queue.schedule(
                SimTime::ZERO + self.config.slot * (slot as u64 + 1),
                Event::SlotStart(slot + 1),
            );
        }
    }

    fn handle_drain_end(&mut self) {
        for server in self.transition.finalize(self.now) {
            self.nodes[server].engine.clear();
        }
    }

    fn handle_power_sample(&mut self) {
        let interval = self.config.power_sample;
        // Cache tier: state-dependent draw with measured utilization.
        let mut cache_w = 0.0;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let busy = node.service.busy_time();
            let delta = busy.saturating_sub(node.sampled_busy);
            node.sampled_busy = busy;
            let util = delta.as_secs_f64()
                / (interval.as_secs_f64() * self.config.cache_concurrency as f64);
            cache_w += self
                .config
                .server_power(i)
                .draw(self.transition.state(i), util);
        }
        // Web tier: measured thread-pool utilization, amplified to a
        // realistic dynamic range (servlet work underestimates the real
        // web server's per-request cost; calibrate against arrival load).
        let window_slot = self.arrivals_series.slot_of(self.now).saturating_sub(1);
        let window_arrivals = self.arrivals_series.sum(window_slot);
        let load_fraction = if self.peak_rate > 0.0 {
            (window_arrivals / interval.as_secs_f64()) / self.peak_rate
        } else {
            0.0
        };
        let mut web_busy = SimDuration::ZERO;
        for (pool, sampled) in self.web_pools.iter().zip(&mut self.web_sampled_busy) {
            let busy = pool.busy_time();
            web_busy += busy.saturating_sub(*sampled);
            *sampled = busy;
        }
        let measured_web_util = web_busy.as_secs_f64()
            / (interval.as_secs_f64()
                * (self.config.web_servers * self.config.web_concurrency) as f64);
        let web_w = self
            .config
            .web_tier_power
            .draw(load_fraction.max(measured_web_util));
        let db_util: f64 = self
            .db_pools
            .iter()
            .map(|p| p.in_service(self.now) as f64)
            .sum::<f64>()
            / (self.config.db_shards * self.config.db_pool_per_shard) as f64;
        let db_w = self.config.db_tier_power.draw(db_util);
        let total = cache_w + web_w + db_w;
        self.total_meter.sample(self.now, total);
        self.cache_meter.sample(self.now, cache_w);
        self.power_samples.push((self.now, total, cache_w));
        let next = self.now + interval;
        if next < SimTime::ZERO + self.config.duration() {
            self.queue.schedule(next, Event::PowerSample);
        }
    }

    /// Runs the simulation to completion and returns the report.
    #[must_use]
    pub fn run(mut self) -> ClusterReport {
        self.prewarm();
        self.queue.schedule(SimTime::ZERO, Event::SlotStart(0));
        self.queue.schedule(SimTime::ZERO, Event::PowerSample);
        for &(at, server) in &self.config.cache_wipe_failures {
            self.queue.schedule(at, Event::CacheWipe(server));
        }
        if !self.records.is_empty() {
            self.queue.schedule(self.records[0].at, Event::Arrival(0));
        }
        while let Some((t, event)) = self.queue.pop() {
            self.now = t;
            // Keep the slot index in step even between SlotStart events.
            self.current_slot = self.slot_of(t);
            match event {
                Event::Arrival(idx) => self.handle_arrival(idx),
                Event::CacheLookup(ctx) => self.handle_cache_lookup(ctx),
                Event::OldLookup(ctx) => self.handle_old_lookup(ctx),
                Event::DbDone(ctx) => self.handle_db_done(ctx),
                Event::SlotStart(slot) => self.handle_slot_start(slot),
                Event::DrainEnd => self.handle_drain_end(),
                Event::CacheWipe(server) => self.nodes[server].engine.clear(),
                Event::PowerSample => self.handle_power_sample(),
            }
        }
        // Close the books: a final power sample at the horizon.
        let end = SimTime::ZERO + self.config.duration();
        self.now = end;
        let last_total = self.power_samples.last().map_or(0.0, |s| s.1);
        let last_cache = self.power_samples.last().map_or(0.0, |s| s.2);
        self.total_meter.sample(end, last_total);
        self.cache_meter.sample(end, last_cache);
        ClusterReport {
            scenario: self.scenario.name().to_string(),
            slot: self.config.slot,
            requests_per_slot: self.requests_per_slot,
            active_per_slot: self.active_per_slot,
            per_server_per_slot: self.per_server_per_slot,
            latency_buckets: self.latency_buckets,
            counters: self.counters,
            power_samples: self.power_samples,
            total_energy_j: self.total_meter.joules(),
            cache_energy_j: self.cache_meter.joules(),
        }
    }
}

/// Builds the canonical key bytes for a page.
#[must_use]
pub fn page_key(page: u64) -> Vec<u8> {
    let mut key = Vec::with_capacity(16);
    key.extend_from_slice(b"page:");
    key.extend_from_slice(page.to_string().as_bytes());
    key
}

fn previous_slot_delay(
    buckets: &[Histogram],
    total_buckets: usize,
    total_slots: usize,
    slot: usize,
) -> SimDuration {
    // Buckets covering the previous slot.
    let per_slot = (total_buckets / total_slots).max(1);
    let start = (slot - 1) * per_slot;
    let end = (start + per_slot).min(buckets.len());
    let mut merged = Histogram::new();
    for h in &buckets[start..end] {
        merged.merge(h);
    }
    merged.quantile(0.999).unwrap_or(SimDuration::ZERO)
}

fn estimate_peak_rate(records: &[TraceRecord], slot: SimDuration) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for r in records {
        *counts
            .entry(r.at.as_nanos() / slot.as_nanos())
            .or_insert(0u64) += 1;
    }
    let peak = counts.values().copied().max().unwrap_or(0);
    peak as f64 / slot.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workload::TraceConfig;

    fn small_run(scenario: Scenario, seed: u64) -> ClusterReport {
        let config = ClusterConfig::small();
        let trace = Trace::synthesize(&config.trace_config(150.0), 11);
        let plan = ProvisioningPlan::load_proportional(
            &trace.requests_per_slot(config.slot, config.slots),
            config.cache_servers,
            2,
        );
        ClusterSim::new(config, scenario, &trace, &plan, seed).run()
    }

    /// A run with forced down/up transitions at higher load — the
    /// stress case where hot-data loss and miss storms matter.
    fn stress_run(scenario: Scenario, seed: u64) -> ClusterReport {
        let config = ClusterConfig::small();
        let trace = Trace::synthesize(&config.trace_config(400.0), 13);
        let plan = ProvisioningPlan::from_counts(vec![4, 2, 4, 2, 3, 4], config.cache_servers);
        ClusterSim::new(config, scenario, &trace, &plan, seed).run()
    }

    #[test]
    fn all_scenarios_complete_every_request() {
        let config = ClusterConfig::small();
        let trace = Trace::synthesize(&config.trace_config(150.0), 11);
        for scenario in Scenario::all() {
            let report = small_run(scenario, 5);
            assert_eq!(
                report.completed_requests(),
                trace.len() as u64,
                "{scenario} lost requests"
            );
        }
    }

    #[test]
    fn static_scenario_keeps_all_servers_on() {
        let report = small_run(Scenario::Static, 5);
        assert!(report.active_per_slot.iter().all(|&n| n == 4));
    }

    #[test]
    fn dynamic_scenarios_follow_the_plan() {
        let config = ClusterConfig::small();
        let trace = Trace::synthesize(&config.trace_config(150.0), 11);
        let plan = ProvisioningPlan::load_proportional(
            &trace.requests_per_slot(config.slot, config.slots),
            config.cache_servers,
            2,
        );
        let report = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 5).run();
        assert_eq!(report.active_per_slot, plan.counts());
        assert!(report.mean_active_servers() < 4.0, "plan must scale down");
    }

    #[test]
    fn proteus_migrates_and_barely_touches_db_during_transitions() {
        let proteus = stress_run(Scenario::Proteus, 5);
        let naive = stress_run(Scenario::Naive, 5);
        assert!(proteus.counters.migrated > 0, "transitions must migrate");
        assert!(
            proteus.counters.database_total() < naive.counters.database_total(),
            "proteus {} vs naive {} database fetches",
            proteus.counters.database_total(),
            naive.counters.database_total()
        );
    }

    #[test]
    fn naive_spikes_exceed_proteus_spikes() {
        let proteus = stress_run(Scenario::Proteus, 5);
        let naive = stress_run(Scenario::Naive, 5);
        let p_worst = proteus.worst_bucket_quantile(0.999).unwrap();
        let n_worst = naive.worst_bucket_quantile(0.999).unwrap();
        assert!(
            n_worst.as_secs_f64() > 1.5 * p_worst.as_secs_f64(),
            "naive worst {n_worst} should clearly exceed proteus worst {p_worst}"
        );
    }

    #[test]
    fn dynamic_provisioning_saves_energy() {
        let static_run = small_run(Scenario::Static, 5);
        let proteus = small_run(Scenario::Proteus, 5);
        assert!(
            proteus.cache_energy_j < static_run.cache_energy_j,
            "proteus cache {} J vs static {} J",
            proteus.cache_energy_j,
            static_run.cache_energy_j
        );
        assert!(proteus.total_energy_j < static_run.total_energy_j);
    }

    #[test]
    fn hit_ratio_is_reasonable_after_prewarm() {
        let report = small_run(Scenario::Static, 5);
        assert!(
            report.counters.cache_hit_ratio() > 0.5,
            "hit ratio {}",
            report.counters.cache_hit_ratio()
        );
    }

    #[test]
    fn feedback_mode_produces_a_plan_shape() {
        let config = ClusterConfig::small();
        let trace = Trace::synthesize(&config.trace_config(150.0), 11);
        let plan = ProvisioningPlan::all_on(config.slots, config.cache_servers);
        let fc = FeedbackController::paper_defaults(config.cache_servers).min_servers(2);
        let report = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 5)
            .with_feedback(fc)
            .run();
        assert_eq!(report.active_per_slot.len(), 6);
        assert!(report.active_per_slot.iter().all(|&n| (2..=4).contains(&n)));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = small_run(Scenario::Proteus, 9);
        let b = small_run(Scenario::Proteus, 9);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.requests_per_slot, b.requests_per_slot);
        assert_eq!(a.total_energy_j, b.total_energy_j);
    }

    #[test]
    fn page_key_formats() {
        assert_eq!(page_key(42), b"page:42".to_vec());
    }

    #[test]
    fn empty_trace_still_runs() {
        let config = ClusterConfig::small();
        let trace = Trace::from_records(vec![]);
        let plan = ProvisioningPlan::all_on(config.slots, config.cache_servers);
        let report = ClusterSim::new(config, Scenario::Static, &trace, &plan, 1).run();
        assert_eq!(report.completed_requests(), 0);
        assert!(report.total_energy_j > 0.0, "idle power still accrues");
    }

    #[test]
    #[should_panic(expected = "plan has")]
    fn mismatched_plan_rejected() {
        let config = ClusterConfig::small();
        let trace = Trace::synthesize(&TraceConfig::default(), 1);
        let plan = ProvisioningPlan::all_on(3, config.cache_servers);
        let _ = ClusterSim::new(config, Scenario::Static, &trace, &plan, 1);
    }
}
