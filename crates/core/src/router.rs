//! Algorithm 2: digest-guided data retrieval.
//!
//! This is the synchronous reference implementation of the web-tier
//! fetch logic, used directly by the quickstart example and the TCP
//! tier; the discrete-event simulator re-implements the same decision
//! tree with latencies attached (`cluster.rs`), and tests cross-check
//! the two.

use proteus_cache::CacheEngine;
use proteus_ring::{hash::KeyHasher, PlacementStrategy, ServerId};
use proteus_sim::SimTime;
use proteus_store::ShardedStore;

use crate::metrics::FetchClass;
use crate::transition::TransitionManager;

/// The result of one Algorithm 2 fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchOutcome {
    /// The data (always retrieved; the database is authoritative).
    pub value: Vec<u8>,
    /// Which branch served it.
    pub class: FetchClass,
    /// The key's server under the new mapping.
    pub new_server: ServerId,
    /// The key's server under the old mapping, when a transition window
    /// was open and the mapping differed.
    pub old_server: Option<ServerId>,
}

/// The web tier's routing logic: consistent key→server mapping plus
/// Algorithm 2's transition-aware retrieval.
///
/// Every web server holds an identical `Router` (same strategy, same
/// hash seed), satisfying the paper's consistency objective without
/// coordination.
///
/// # Example
///
/// ```
/// use proteus_core::{Router, Scenario, TransitionManager};
/// use proteus_cache::{CacheConfig, CacheEngine};
/// use proteus_store::{ShardedStore, StoreConfig};
/// use proteus_sim::SimTime;
///
/// let router = Router::new(Scenario::Proteus.strategy(4, 0));
/// let mut caches: Vec<CacheEngine> = (0..4)
///     .map(|_| CacheEngine::new(CacheConfig::with_capacity(1 << 20)))
///     .collect();
/// let mut db = ShardedStore::new(StoreConfig::default());
/// let tm = TransitionManager::new(4, 4);
///
/// let out = router.fetch(b"page:1", SimTime::ZERO, &mut caches, &mut db, &tm, true);
/// assert_eq!(out.class, proteus_core::FetchClass::Database); // cold start
/// let out = router.fetch(b"page:1", SimTime::ZERO, &mut caches, &mut db, &tm, true);
/// assert_eq!(out.class, proteus_core::FetchClass::NewHit);
/// ```
pub struct Router {
    strategy: Box<dyn PlacementStrategy + Send + Sync>,
    hasher: KeyHasher,
}

impl Router {
    /// Creates a router over the given placement strategy, hashing keys
    /// with the default seed (all web servers must share it).
    #[must_use]
    pub fn new(strategy: Box<dyn PlacementStrategy + Send + Sync>) -> Self {
        Router {
            strategy,
            hasher: KeyHasher::default(),
        }
    }

    /// The key hash used for ring placement.
    #[must_use]
    pub fn key_hash(&self, key: &[u8]) -> u64 {
        self.hasher.hash_bytes(key)
    }

    /// The server responsible for `key` when `active` servers are on.
    #[must_use]
    pub fn server_for(&self, key: &[u8], active: usize) -> ServerId {
        self.strategy.server_for(self.key_hash(key), active)
    }

    /// The underlying strategy.
    #[must_use]
    pub fn strategy(&self) -> &(dyn PlacementStrategy + Send + Sync) {
        &*self.strategy
    }

    /// Algorithm 2, lines 1–15: fetch `key`, consulting the old
    /// server's digest during a transition window (when `use_digests`)
    /// and migrating hot data on demand; fall back to the database
    /// otherwise. The retrieved value is always (re)inserted into the
    /// new server's cache (line 12).
    pub fn fetch(
        &self,
        key: &[u8],
        now: SimTime,
        caches: &mut [CacheEngine],
        db: &mut ShardedStore,
        transition: &TransitionManager,
        use_digests: bool,
    ) -> FetchOutcome {
        let hash = self.key_hash(key);
        let new_server = self.strategy.server_for(hash, transition.active());
        // Line 2: try the new location first.
        if let Some(v) = caches[new_server.index()].get(key, now) {
            let value = v.to_vec();
            return FetchOutcome {
                value,
                class: FetchClass::NewHit,
                new_server,
                old_server: None,
            };
        }
        // Lines 6-8: during a transition, consult the old server's digest.
        let mut old_server = None;
        let mut false_positive = false;
        if use_digests && transition.in_transition(now) {
            let old = self.strategy.server_for(hash, transition.previous_active());
            if old != new_server {
                old_server = Some(old);
                if let Some(digest) = transition.digest(old.index()) {
                    if digest.contains(key) {
                        let migrated = caches[old.index()].get(key, now).map(<[u8]>::to_vec);
                        if let Some(value) = migrated {
                            // Line 12: install at the new location.
                            caches[new_server.index()].put(key, value.clone(), now);
                            return FetchOutcome {
                                value,
                                class: FetchClass::Migrated,
                                new_server,
                                old_server,
                            };
                        }
                        // Digest said yes, data was gone: false positive.
                        false_positive = true;
                    }
                }
            }
        }
        // Lines 9-11: the database tier is the last resort.
        let value = db.fetch(key);
        caches[new_server.index()].put(key, value.clone(), now);
        FetchOutcome {
            value,
            class: if false_positive {
                FetchClass::DatabaseFalsePositive
            } else {
                FetchClass::Database
            },
            new_server,
            old_server,
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use proteus_cache::CacheConfig;
    use proteus_sim::SimDuration;
    use proteus_store::StoreConfig;

    fn setup(servers: usize) -> (Router, Vec<CacheEngine>, ShardedStore) {
        let router = Router::new(Scenario::Proteus.strategy(servers, 0));
        let caches = (0..servers)
            .map(|_| CacheEngine::new(CacheConfig::with_capacity(1 << 22)))
            .collect();
        let db = ShardedStore::new(StoreConfig::default());
        (router, caches, db)
    }

    #[test]
    fn cold_then_hot() {
        let (router, mut caches, mut db) = setup(4);
        let tm = TransitionManager::new(4, 4);
        let a = router.fetch(b"k", SimTime::ZERO, &mut caches, &mut db, &tm, true);
        assert_eq!(a.class, FetchClass::Database);
        let b = router.fetch(b"k", SimTime::ZERO, &mut caches, &mut db, &tm, true);
        assert_eq!(b.class, FetchClass::NewHit);
        assert_eq!(a.value, b.value);
        assert_eq!(db.total_fetches(), 1, "second fetch never reached the DB");
    }

    #[test]
    fn transition_migrates_hot_data_without_db_traffic() {
        let (router, mut caches, mut db) = setup(4);
        let mut tm = TransitionManager::new(4, 4);
        // Find a key that moves when server 4 turns off.
        let moving_key = (0..10_000u64)
            .map(|i| format!("page:{i}").into_bytes())
            .find(|k| router.server_for(k, 4).index() == 3 && router.server_for(k, 3).index() != 3)
            .expect("some key lives on s4");
        // Warm it on its old server.
        let warm = router.fetch(&moving_key, SimTime::ZERO, &mut caches, &mut db, &tm, true);
        assert_eq!(warm.class, FetchClass::Database);
        let db_before = db.total_fetches();
        // Scale 4 → 3 with a digest broadcast.
        tm.begin(SimTime::from_secs(1), 3, SimDuration::from_secs(10), |i| {
            caches[i].digest_snapshot()
        });
        let t = SimTime::from_secs(2);
        let got = router.fetch(&moving_key, t, &mut caches, &mut db, &tm, true);
        assert_eq!(got.class, FetchClass::Migrated);
        assert_eq!(got.value, warm.value);
        assert_eq!(db.total_fetches(), db_before, "migration avoided the DB");
        // Subsequent requests hit the new server directly (the
        // "only the first request reaches the old server" property).
        let again = router.fetch(&moving_key, t, &mut caches, &mut db, &tm, true);
        assert_eq!(again.class, FetchClass::NewHit);
    }

    #[test]
    fn without_digests_transition_goes_to_db() {
        let (router, mut caches, mut db) = setup(4);
        let mut tm = TransitionManager::new(4, 4);
        let moving_key = (0..10_000u64)
            .map(|i| format!("page:{i}").into_bytes())
            .find(|k| router.server_for(k, 4).index() == 3)
            .unwrap();
        router.fetch(&moving_key, SimTime::ZERO, &mut caches, &mut db, &tm, false);
        tm.begin(SimTime::from_secs(1), 3, SimDuration::from_secs(10), |i| {
            caches[i].digest_snapshot()
        });
        let before = db.total_fetches();
        let got = router.fetch(
            &moving_key,
            SimTime::from_secs(2),
            &mut caches,
            &mut db,
            &tm,
            false,
        );
        assert_eq!(got.class, FetchClass::Database);
        assert_eq!(db.total_fetches(), before + 1);
    }

    #[test]
    fn cold_data_during_transition_is_database_not_false_positive() {
        let (router, mut caches, mut db) = setup(4);
        let mut tm = TransitionManager::new(4, 4);
        tm.begin(SimTime::ZERO, 3, SimDuration::from_secs(10), |i| {
            caches[i].digest_snapshot() // all empty
        });
        let got = router.fetch(
            b"never-seen",
            SimTime::from_secs(1),
            &mut caches,
            &mut db,
            &tm,
            true,
        );
        assert_eq!(got.class, FetchClass::Database);
    }

    #[test]
    fn after_window_digests_are_not_consulted() {
        let (router, mut caches, mut db) = setup(4);
        let mut tm = TransitionManager::new(4, 4);
        let moving_key = (0..10_000u64)
            .map(|i| format!("page:{i}").into_bytes())
            .find(|k| router.server_for(k, 4).index() == 3 && router.server_for(k, 3).index() != 3)
            .unwrap();
        router.fetch(&moving_key, SimTime::ZERO, &mut caches, &mut db, &tm, true);
        tm.begin(SimTime::from_secs(1), 3, SimDuration::from_secs(2), |i| {
            caches[i].digest_snapshot()
        });
        // Past the deadline: Algorithm 2 line 6 no longer fires.
        let t_late = SimTime::from_secs(10);
        let got = router.fetch(&moving_key, t_late, &mut caches, &mut db, &tm, true);
        assert_eq!(got.class, FetchClass::Database);
    }

    #[test]
    fn routing_is_consistent_across_router_instances() {
        let (a, _, _) = setup(8);
        let (b, _, _) = setup(8);
        for i in 0..1000u64 {
            let key = format!("page:{i}").into_bytes();
            for n in [2usize, 5, 8] {
                assert_eq!(a.server_for(&key, n), b.server_for(&key, n));
            }
        }
    }
}
