//! Hot-key detection and replica routing, shared by the DES
//! [`ReplicatedRouter`](crate::ReplicatedRouter) and the live TCP
//! cluster client in `proteus-net`.
//!
//! Algorithm 1 balances the *key space*, not the *request load*: under
//! Zipfian skew one viral key saturates its home server no matter how
//! many servers are powered on. The DistCache-style remedy implemented
//! here has three parts, each a small self-contained piece so both the
//! simulator and the TCP client can reuse them:
//!
//! - [`SpaceSaving`] — a bounded top-K heavy-hitter sketch (Metwally
//!   et al.): `O(k)` memory, every key's true count is bounded by
//!   `estimate - error ≤ true ≤ estimate`, so a threshold on the
//!   estimate never misses a genuinely hot key.
//! - [`ReplicaRings`] — derives `r` independent hash rings from one
//!   primary [`KeyHasher`]. Ring 0 **is** the primary hasher, so a
//!   key's first replica is exactly its ordinary home server and
//!   un-replicated keys behave identically with or without this layer.
//! - [`TwoChoices`] — the power-of-two-choices chooser: pick two
//!   pseudo-random candidates, route to the less loaded one. No RNG
//!   dependency; a relaxed atomic tick through `splitmix64` is enough.
//!
//! The free functions [`live_ring_order`] and [`distinct_live`] are
//! the placement logic promoted out of `replicated_router`: the probe
//! order for reads (ring order, down servers skipped) and the install
//! fan-out for fills (distinct live replicas, first-ring order).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proteus_ring::hash::{splitmix64, KeyHasher};

/// A space-saving top-K sketch: tracks (approximately) the `k` most
/// frequent keys of a stream in bounded memory.
///
/// Guarantees (Metwally et al., "Efficient Computation of Frequent and
/// Top-k Elements in Data Streams"): every monitored key's estimate
/// overcounts by at most its recorded `error`, and any key whose true
/// frequency exceeds the minimum monitored count is in the sketch.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    entries: HashMap<Vec<u8>, SketchEntry>,
}

#[derive(Debug, Clone, Copy)]
struct SketchEntry {
    count: u64,
    error: u64,
}

/// One monitored key with its estimated count and overcount bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotKeyEstimate {
    /// The monitored key.
    pub key: Vec<u8>,
    /// Estimated occurrence count (an upper bound on the true count).
    pub count: u64,
    /// Maximum overcount: `count - error` lower-bounds the true count.
    pub error: u64,
}

impl SpaceSaving {
    /// Creates a sketch monitoring at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch needs room for at least one key");
        SpaceSaving {
            capacity,
            entries: HashMap::with_capacity(capacity),
        }
    }

    /// Records one occurrence of `key` and returns its new estimated
    /// count. If the sketch is full and `key` is unmonitored, the
    /// minimum-count entry is evicted and `key` inherits its count as
    /// the error bound — the classic space-saving replacement.
    pub fn observe(&mut self, key: &[u8]) -> u64 {
        if let Some(e) = self.entries.get_mut(key) {
            e.count += 1;
            return e.count;
        }
        if self.entries.len() < self.capacity {
            self.entries
                .insert(key.to_vec(), SketchEntry { count: 1, error: 0 });
            return 1;
        }
        let evict = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.count)
            .map(|(k, e)| (k.clone(), e.count))
            .expect("capacity > 0, sketch full");
        self.entries.remove(&evict.0);
        let count = evict.1 + 1;
        self.entries.insert(
            key.to_vec(),
            SketchEntry {
                count,
                error: evict.1,
            },
        );
        count
    }

    /// The estimated count for `key`, or `None` if unmonitored.
    #[must_use]
    pub fn estimate(&self, key: &[u8]) -> Option<u64> {
        self.entries.get(key).map(|e| e.count)
    }

    /// Every monitored key with its estimate, most frequent first.
    #[must_use]
    pub fn top(&self) -> Vec<HotKeyEstimate> {
        let mut v: Vec<HotKeyEstimate> = self
            .entries
            .iter()
            .map(|(k, e)| HotKeyEstimate {
                key: k.clone(),
                count: e.count,
                error: e.error,
            })
            .collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        v
    }

    /// Number of monitored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// `r` independent hash rings derived from one primary hasher.
///
/// Ring 0 is the primary hasher itself, so replica 0 of any key is
/// its ordinary home server; rings `1..` use the same seed-derivation
/// schedule as [`proteus_ring::ReplicatedPlacement`]. More rings than
/// requested replicas are derived so [`replica_set`](Self::replica_set)
/// can skip hash conflicts (two rings landing on the same server) and
/// still reach the requested number of *distinct* servers.
#[derive(Debug, Clone)]
pub struct ReplicaRings {
    hashers: Vec<KeyHasher>,
    replicas: usize,
}

impl ReplicaRings {
    /// Over-derivation factor: enough extra rings that collisions
    /// almost never leave a key under-replicated on clusters where
    /// `replicas` distinct servers exist at all.
    const RING_SLACK: usize = 4;

    /// Creates rings targeting `replicas` distinct servers per key,
    /// with ring 0 fixed to `primary`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    #[must_use]
    pub fn new(primary: KeyHasher, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        let rings = replicas.saturating_mul(Self::RING_SLACK).max(replicas);
        let seed = primary.seed();
        let hashers = (0..rings)
            .map(|i| {
                if i == 0 {
                    primary
                } else {
                    KeyHasher::new(seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9) | 1)
                }
            })
            .collect();
        ReplicaRings { hashers, replicas }
    }

    /// The target number of distinct replicas per key.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The replica set for a key: up to [`replicas`](Self::replicas)
    /// *distinct* servers in ring order, the home server (ring 0)
    /// first. `server_of` maps a ring's key hash to a server index —
    /// callers plug in their placement strategy at the current active
    /// count. Fewer servers are returned only when the derived rings
    /// cannot produce enough distinct ones (e.g. `replicas > active`).
    #[must_use]
    pub fn replica_set(&self, key: &[u8], mut server_of: impl FnMut(u64) -> usize) -> Vec<usize> {
        let mut set = Vec::with_capacity(self.replicas);
        for hasher in &self.hashers {
            let server = server_of(hasher.hash_bytes(key));
            if !set.contains(&server) {
                set.push(server);
                if set.len() == self.replicas {
                    break;
                }
            }
        }
        set
    }
}

/// The read-probe order over a key's per-ring replica servers: ring
/// order with down servers skipped, duplicates preserved (a later ring
/// colliding with an earlier one is just probed once more). Returns
/// `(ring, server)` pairs.
#[must_use]
pub fn live_ring_order(
    ring_servers: &[usize],
    is_down: impl Fn(usize) -> bool,
) -> Vec<(usize, usize)> {
    ring_servers
        .iter()
        .enumerate()
        .filter(|&(_, &s)| !is_down(s))
        .map(|(ring, &s)| (ring, s))
        .collect()
}

/// The install fan-out after a database fill: every *distinct, live*
/// replica server, in first-ring order.
#[must_use]
pub fn distinct_live(ring_servers: &[usize], is_down: impl Fn(usize) -> bool) -> Vec<usize> {
    let mut out = Vec::with_capacity(ring_servers.len());
    for &s in ring_servers {
        if !is_down(s) && !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// A power-of-two-choices chooser: each call draws two pseudo-random
/// candidate indices and returns the one whose `load` is lower.
///
/// Deterministic and dependency-free: a relaxed atomic tick pushed
/// through `splitmix64` gives a well-mixed candidate pair per call,
/// so under equal loads the choice is (near-)uniform and under skewed
/// loads the loaded server is avoided with probability `1 - 1/n²` —
/// the classic "power of two choices" guarantee.
#[derive(Debug, Default)]
pub struct TwoChoices {
    tick: AtomicU64,
}

impl TwoChoices {
    /// Creates a chooser.
    #[must_use]
    pub fn new() -> Self {
        TwoChoices::default()
    }

    /// Picks an index in `0..n`, preferring the lower `load`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choose(&self, n: usize, load: impl Fn(usize) -> u64) -> usize {
        assert!(n > 0, "cannot choose among zero candidates");
        if n == 1 {
            return 0;
        }
        let h = splitmix64(self.tick.fetch_add(1, Ordering::Relaxed).wrapping_add(1));
        let a = (h % n as u64) as usize;
        let mut b = ((h >> 32) % n as u64) as usize;
        if b == a {
            b = (a + 1) % n;
        }
        if load(b) < load(a) {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_tracks_exact_counts_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.observe(b"a");
        }
        for _ in 0..3 {
            s.observe(b"b");
        }
        assert_eq!(s.estimate(b"a"), Some(5));
        assert_eq!(s.estimate(b"b"), Some(3));
        assert_eq!(s.estimate(b"c"), None);
        let top = s.top();
        assert_eq!(top[0].key, b"a");
        assert_eq!(top[0].error, 0, "no evictions, exact counts");
    }

    #[test]
    fn space_saving_never_loses_a_true_heavy_hitter() {
        // One key at 30% of a stream vastly wider than the sketch.
        let mut s = SpaceSaving::new(16);
        for i in 0..10_000u32 {
            if i % 10 < 3 {
                s.observe(b"celebrity");
            } else {
                s.observe(format!("tail:{i}").as_bytes());
            }
        }
        let est = s.estimate(b"celebrity").expect("heavy hitter monitored");
        assert!(est >= 3_000, "estimate {est} below true count");
        assert_eq!(s.len(), 16, "bounded memory");
    }

    #[test]
    fn space_saving_estimate_upper_bounds_truth() {
        let mut s = SpaceSaving::new(4);
        for i in 0..1_000u32 {
            s.observe(format!("k:{}", i % 13).as_bytes());
        }
        for e in s.top() {
            // count - error ≤ true ≤ count; true count of k:j is ~77.
            assert!(e.count >= e.count - e.error);
            assert!(e.count - e.error <= 1_000 / 13 + 1);
        }
    }

    #[test]
    fn ring_zero_is_the_primary_hasher() {
        let primary = KeyHasher::new(99);
        let rings = ReplicaRings::new(primary, 3);
        let set = rings.replica_set(b"page:1", |h| (h % 10) as usize);
        assert_eq!(
            set[0],
            (primary.hash_bytes(b"page:1") % 10) as usize,
            "replica 0 must be the ordinary home server"
        );
    }

    #[test]
    fn replica_set_is_distinct_and_sized() {
        let rings = ReplicaRings::new(KeyHasher::default(), 3);
        for k in 0..500u32 {
            let key = format!("page:{k}");
            let set = rings.replica_set(key.as_bytes(), |h| (h % 8) as usize);
            let mut dedup = set.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), set.len(), "no duplicate servers");
            assert_eq!(set.len(), 3, "slack rings absorb collisions");
        }
    }

    #[test]
    fn replica_set_caps_at_cluster_size() {
        let rings = ReplicaRings::new(KeyHasher::default(), 5);
        let set = rings.replica_set(b"k", |h| (h % 3) as usize);
        assert!(set.len() <= 3);
    }

    #[test]
    fn live_ring_order_skips_down_servers() {
        let order = live_ring_order(&[2, 5, 2, 7], |s| s == 5);
        assert_eq!(order, vec![(0, 2), (2, 2), (3, 7)]);
    }

    #[test]
    fn distinct_live_dedups_in_first_ring_order() {
        assert_eq!(distinct_live(&[2, 5, 2, 7], |_| false), vec![2, 5, 7]);
        assert_eq!(distinct_live(&[2, 5, 2, 7], |s| s == 2), vec![5, 7]);
    }

    #[test]
    fn two_choices_prefers_the_lighter_server() {
        let chooser = TwoChoices::new();
        let loads = [100u64, 0, 100, 100];
        let mut picked_light = 0;
        for _ in 0..1_000 {
            if chooser.choose(4, |i| loads[i]) == 1 {
                picked_light += 1;
            }
        }
        // Server 1 is picked whenever it is drawn: P ≈ 1 - (3/4)² ≈ 0.44.
        assert!(
            picked_light > 300,
            "light server picked only {picked_light}/1000"
        );
    }

    #[test]
    fn two_choices_spreads_equal_loads() {
        let chooser = TwoChoices::new();
        let mut counts = [0u32; 4];
        for _ in 0..4_000 {
            counts[chooser.choose(4, |_| 0)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (600..=1_400).contains(&c),
                "server {i} got {c}/4000 under equal load"
            );
        }
    }
}
