//! Provisioning planning: the feedback loop and the load-proportional
//! planner.
//!
//! The paper runs a feedback control loop (delay bound 0.5 s, reference
//! 0.4 s, 30-minute updates) once, on Proteus, to obtain the `n(t)`
//! curve of Fig. 4 — then applies that same curve to all four
//! scenarios so routing is the only difference. [`ProvisioningPlan`]
//! is that reusable curve; [`FeedbackController`] is the loop;
//! [`ProvisioningPlan::load_proportional`] is a deterministic planner
//! that derives a Fig. 4-like curve directly from trace volume.

use proteus_sim::SimDuration;

/// Where a measured high-percentile delay sits relative to the loop's
/// set points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelaySignal {
    /// Above the hard bound: the loop must add capacity.
    Overload,
    /// Inside the hysteresis band `[headroom · reference, bound]`:
    /// hold.
    InBand,
    /// Below the headroom fraction of the reference: capacity can be
    /// shed.
    Headroom,
}

/// The loop's set points, clock-agnostic: the reference delay, the
/// hard bound, and the hysteresis headroom fraction, all compared in
/// integer nanoseconds so the DES controller and the wall-clock
/// controller (`proteus-ctl`) share one classification.
///
/// # Example
///
/// ```
/// use proteus_core::{DelaySignal, SetPoints};
/// let sp = SetPoints::paper_defaults(); // 0.4 s reference, 0.5 s bound
/// assert_eq!(sp.classify(600_000_000), DelaySignal::Overload);
/// assert_eq!(sp.classify(450_000_000), DelaySignal::InBand);
/// assert_eq!(sp.classify(100_000_000), DelaySignal::Headroom);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetPoints {
    reference_ns: u64,
    bound_ns: u64,
    headroom_fraction_percent: u32,
}

impl SetPoints {
    /// Set points from explicit nanosecond values.
    ///
    /// # Panics
    ///
    /// Panics unless `reference_ns <= bound_ns` and the headroom
    /// fraction is within `1..=100`.
    #[must_use]
    pub fn new(reference_ns: u64, bound_ns: u64, headroom_fraction_percent: u32) -> Self {
        assert!(
            reference_ns <= bound_ns,
            "reference must not exceed the bound"
        );
        assert!(
            (1..=100).contains(&headroom_fraction_percent),
            "headroom fraction must be within 1..=100 percent"
        );
        SetPoints {
            reference_ns,
            bound_ns,
            headroom_fraction_percent,
        }
    }

    /// The paper's configuration: 0.4 s reference, 0.5 s bound, scale
    /// down only below 80% of the reference.
    #[must_use]
    pub fn paper_defaults() -> Self {
        SetPoints::new(400_000_000, 500_000_000, 80)
    }

    /// The reference (target) delay in nanoseconds.
    #[must_use]
    pub fn reference_ns(&self) -> u64 {
        self.reference_ns
    }

    /// The hard delay bound in nanoseconds.
    #[must_use]
    pub fn bound_ns(&self) -> u64 {
        self.bound_ns
    }

    /// The headroom fraction in percent: delays below this fraction of
    /// the reference classify as [`DelaySignal::Headroom`].
    #[must_use]
    pub fn headroom_fraction_percent(&self) -> u32 {
        self.headroom_fraction_percent
    }

    /// Classifies a measured delay against the set points. Monotone:
    /// a larger delay never classifies *less* urgently.
    #[must_use]
    pub fn classify(&self, measured_ns: u64) -> DelaySignal {
        if measured_ns > self.bound_ns {
            DelaySignal::Overload
        } else if u128::from(measured_ns) * 100
            < u128::from(self.reference_ns) * u128::from(self.headroom_fraction_percent)
        {
            DelaySignal::Headroom
        } else {
            DelaySignal::InBand
        }
    }

    /// How far above the bound a measured delay sits, as a ratio
    /// (`measured / bound`); `1.0` at the bound, larger when overloaded.
    /// The wall-clock controller scales its ramp step by this overshoot.
    #[must_use]
    pub fn overshoot(&self, measured_ns: u64) -> f64 {
        if self.bound_ns == 0 {
            return 1.0;
        }
        measured_ns as f64 / self.bound_ns as f64
    }
}

/// A per-slot active-server plan, shared by all scenarios of one
/// experiment.
///
/// # Example
///
/// ```
/// use proteus_core::ProvisioningPlan;
/// let plan = ProvisioningPlan::load_proportional(&[100, 200, 150, 50], 10, 3);
/// assert_eq!(plan.slots(), 4);
/// assert_eq!(plan.active_at(1), 10); // peak slot uses everything
/// assert!(plan.active_at(3) >= 3);   // floor respected
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisioningPlan {
    per_slot: Vec<usize>,
    total_servers: usize,
}

impl ProvisioningPlan {
    /// Builds a plan from explicit per-slot counts.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty, any entry is zero, or any entry
    /// exceeds `total_servers`.
    #[must_use]
    pub fn from_counts(per_slot: Vec<usize>, total_servers: usize) -> Self {
        assert!(!per_slot.is_empty(), "plan needs at least one slot");
        assert!(
            per_slot.iter().all(|&n| n >= 1 && n <= total_servers),
            "per-slot counts must be within 1..={total_servers}"
        );
        ProvisioningPlan {
            per_slot,
            total_servers,
        }
    }

    /// A plan pinning all servers on in every slot (the Static
    /// scenario).
    #[must_use]
    pub fn all_on(slots: usize, total_servers: usize) -> Self {
        ProvisioningPlan::from_counts(vec![total_servers; slots], total_servers)
    }

    /// Derives a plan proportional to per-slot request volume:
    /// `n = clamp(ceil(N · volume / peak_volume), min_servers, N)`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/zero or `min_servers` exceeds
    /// `total_servers`.
    #[must_use]
    pub fn load_proportional(
        requests_per_slot: &[u64],
        total_servers: usize,
        min_servers: usize,
    ) -> Self {
        assert!(!requests_per_slot.is_empty(), "need per-slot volumes");
        assert!(total_servers >= 1, "need at least one server");
        assert!(
            (1..=total_servers).contains(&min_servers),
            "min_servers must be within 1..={total_servers}"
        );
        let peak = requests_per_slot.iter().copied().max().unwrap_or(1).max(1);
        let per_slot = requests_per_slot
            .iter()
            .map(|&v| {
                let n = (total_servers as f64 * v as f64 / peak as f64).ceil() as usize;
                n.clamp(min_servers, total_servers)
            })
            .collect();
        ProvisioningPlan {
            per_slot,
            total_servers,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.per_slot.len()
    }

    /// Total servers available.
    #[must_use]
    pub fn total_servers(&self) -> usize {
        self.total_servers
    }

    /// Active servers in slot `i` (clamped to the last slot).
    #[must_use]
    pub fn active_at(&self, i: usize) -> usize {
        self.per_slot[i.min(self.per_slot.len() - 1)]
    }

    /// All per-slot counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.per_slot
    }

    /// Mean active-server count over the plan.
    #[must_use]
    pub fn mean_active(&self) -> f64 {
        self.per_slot.iter().sum::<usize>() as f64 / self.per_slot.len() as f64
    }

    /// Number of slot boundaries at which the count changes — each one
    /// is a provisioning transition the actuator must smooth.
    #[must_use]
    pub fn transitions(&self) -> usize {
        self.per_slot.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// The per-slot feedback loop of Section VI: hold the measured
/// 99.9th-percentile delay near the reference by adding servers when
/// delay is high and removing them when there is headroom.
///
/// # Example
///
/// ```
/// use proteus_core::FeedbackController;
/// use proteus_sim::SimDuration;
///
/// let mut fc = FeedbackController::paper_defaults(10);
/// // Delay above the 0.5 s bound: scale up.
/// let n = fc.decide(5, SimDuration::from_millis(700));
/// assert_eq!(n, 6);
/// // Comfortably below the reference: scale down.
/// let n = fc.decide(6, SimDuration::from_millis(80));
/// assert_eq!(n, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackController {
    total_servers: usize,
    min_servers: usize,
    /// Reference, bound, and hysteresis headroom (shared with the
    /// wall-clock controller).
    points: SetPoints,
}

impl FeedbackController {
    /// The paper's configuration: 0.4 s reference, 0.5 s bound.
    #[must_use]
    pub fn paper_defaults(total_servers: usize) -> Self {
        FeedbackController {
            total_servers,
            min_servers: 1,
            points: SetPoints::paper_defaults(),
        }
    }

    /// Sets the minimum server count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds the total.
    #[must_use]
    pub fn min_servers(mut self, min: usize) -> Self {
        assert!((1..=self.total_servers).contains(&min), "invalid minimum");
        self.min_servers = min;
        self
    }

    /// Sets the reference and bound (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `reference <= bound`.
    #[must_use]
    pub fn set_points(mut self, reference: SimDuration, bound: SimDuration) -> Self {
        self.points = SetPoints::new(
            reference.as_nanos(),
            bound.as_nanos(),
            self.points.headroom_fraction_percent(),
        );
        self
    }

    /// One control decision: given the current active count and the
    /// slot's measured high-percentile delay, return the next count.
    #[must_use]
    pub fn decide(&mut self, current: usize, measured_delay: SimDuration) -> usize {
        let current = current.clamp(self.min_servers, self.total_servers);
        match self.points.classify(measured_delay.as_nanos()) {
            // Overshoot: add capacity immediately.
            DelaySignal::Overload => (current + 1).min(self.total_servers),
            // Ample headroom: shed one server.
            DelaySignal::Headroom => current.saturating_sub(1).max(self.min_servers),
            DelaySignal::InBand => current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_proportional_tracks_volume_shape() {
        let volumes = [500u64, 1000, 900, 600, 400, 450];
        let plan = ProvisioningPlan::load_proportional(&volumes, 10, 4);
        assert_eq!(plan.counts(), &[5, 10, 9, 6, 4, 5]);
        assert_eq!(plan.transitions(), 5);
        assert!((plan.mean_active() - 39.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn load_proportional_respects_floor_and_ceiling() {
        let plan = ProvisioningPlan::load_proportional(&[1, 1_000_000], 8, 3);
        assert_eq!(plan.active_at(0), 3);
        assert_eq!(plan.active_at(1), 8);
    }

    #[test]
    fn all_on_is_flat() {
        let plan = ProvisioningPlan::all_on(5, 10);
        assert!(plan.counts().iter().all(|&n| n == 10));
        assert_eq!(plan.transitions(), 0);
    }

    #[test]
    fn active_at_clamps_past_the_end() {
        let plan = ProvisioningPlan::from_counts(vec![2, 3], 4);
        assert_eq!(plan.active_at(99), 3);
    }

    #[test]
    #[should_panic(expected = "within 1..=4")]
    fn from_counts_validates_range() {
        let _ = ProvisioningPlan::from_counts(vec![5], 4);
    }

    #[test]
    fn feedback_loop_converges_to_a_band() {
        // Simulated plant: delay inversely proportional to capacity.
        let mut fc = FeedbackController::paper_defaults(10).min_servers(2);
        let mut n = 10usize;
        let load = 6.0; // needs ~6 servers for 0.4 s
        let mut history = vec![];
        for _ in 0..30 {
            let delay = SimDuration::from_secs_f64(0.4 * load / n as f64);
            n = fc.decide(n, delay);
            history.push(n);
        }
        let settled = &history[10..];
        assert!(
            settled.iter().all(|&x| (5..=9).contains(&x)),
            "history {history:?}"
        );
    }

    #[test]
    fn feedback_never_leaves_bounds() {
        let mut fc = FeedbackController::paper_defaults(4).min_servers(2);
        assert_eq!(
            fc.decide(4, SimDuration::from_secs(10)),
            4,
            "capped at total"
        );
        assert_eq!(fc.decide(2, SimDuration::ZERO), 2, "floored at min");
    }

    #[test]
    fn set_points_classification_is_monotone() {
        let sp = SetPoints::paper_defaults();
        let mut last = DelaySignal::Headroom;
        let rank = |s: DelaySignal| match s {
            DelaySignal::Headroom => 0,
            DelaySignal::InBand => 1,
            DelaySignal::Overload => 2,
        };
        for ns in (0..1_000_000_000u64).step_by(1_000_000) {
            let signal = sp.classify(ns);
            assert!(
                rank(signal) >= rank(last),
                "classification regressed at {ns} ns"
            );
            last = signal;
        }
        assert_eq!(sp.classify(319_999_999), DelaySignal::Headroom);
        assert_eq!(sp.classify(320_000_000), DelaySignal::InBand);
        assert_eq!(sp.classify(500_000_000), DelaySignal::InBand);
        assert_eq!(sp.classify(500_000_001), DelaySignal::Overload);
    }

    #[test]
    fn set_points_overshoot_ratio() {
        let sp = SetPoints::new(100, 200, 80);
        assert!((sp.overshoot(200) - 1.0).abs() < 1e-12);
        assert!((sp.overshoot(500) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reference must not exceed")]
    fn set_points_reject_inverted_band() {
        let _ = SetPoints::new(200, 100, 80);
    }

    #[test]
    fn set_points_builder() {
        let mut fc = FeedbackController::paper_defaults(10)
            .set_points(SimDuration::from_millis(100), SimDuration::from_millis(200));
        assert_eq!(fc.decide(5, SimDuration::from_millis(250)), 6);
        assert_eq!(fc.decide(5, SimDuration::from_millis(150)), 5);
        assert_eq!(fc.decide(5, SimDuration::from_millis(10)), 4);
    }
}
