//! Cluster configuration and the latency model.

use proteus_bloom::BloomConfig;
use proteus_sim::{Distribution, SimDuration};
use proteus_workload::{SessionConfig, TraceConfig};

use crate::power::{PowerModel, TierPowerModel};

/// Service and network latency distributions for each hop of the
/// RBE → web → cache → database pipeline.
///
/// The defaults reflect the paper's testbed proportions: sub-millisecond
/// cache access, database fetches three orders of magnitude slower
/// (three sequential index lookups against InnoDB), gigabit-LAN round
/// trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Servlet-side processing per request.
    pub web_processing: Distribution,
    /// Web ↔ cache round trip.
    pub cache_rtt: Distribution,
    /// Cache-server service time per operation.
    pub cache_service: Distribution,
    /// Web ↔ database round trip.
    pub db_rtt: Distribution,
    /// Database service time for one full 3-stage fetch.
    pub db_service: Distribution,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            web_processing: Distribution::constant(0.0002),
            cache_rtt: Distribution::constant(0.0003),
            cache_service: Distribution::constant(0.0001),
            db_rtt: Distribution::constant(0.0005),
            db_service: Distribution::log_normal(0.040, 0.025),
        }
    }
}

/// Full configuration of one simulated cluster experiment.
///
/// The defaults ([`ClusterConfig::paper_scale`]) reproduce the paper's
/// deployment at 60:1 time compression: 10 cache servers, 7 database
/// shards, 10 web servers; 48 provisioning slots of 30 s stand in for
/// the 24-hour day of 30-minute slots; the 10 s hot-data TTL stands in
/// for a 10-minute window.
///
/// # Example
///
/// ```
/// use proteus_core::ClusterConfig;
/// let cfg = ClusterConfig::paper_scale();
/// assert_eq!(cfg.cache_servers, 10);
/// assert_eq!(cfg.db_shards, 7);
/// assert_eq!(cfg.slots, 48);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of cache servers (`N`).
    pub cache_servers: usize,
    /// Number of database shards.
    pub db_shards: usize,
    /// Number of web servers (power accounting only — web capacity is
    /// not a bottleneck in the paper's setup).
    pub web_servers: usize,
    /// Provisioning slot length.
    pub slot: SimDuration,
    /// Number of slots (total duration = `slot × slots`).
    pub slots: usize,
    /// The hot-data TTL: drain window length and hotness horizon.
    pub hot_ttl: SimDuration,
    /// Per-server cache capacity in bytes.
    pub cache_capacity_bytes: u64,
    /// Fixed object size (the paper's 4 KB page unit).
    pub object_size: usize,
    /// Page catalog size.
    pub pages: u64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Database connections per shard (the queueing bottleneck).
    pub db_pool_per_shard: usize,
    /// Concurrent operations per cache server.
    pub cache_concurrency: usize,
    /// Concurrent requests per web server (servlet thread pool).
    pub web_concurrency: usize,
    /// Time for digest snapshots to reach the web tier at a transition
    /// start; until it elapses, Algorithm 2 line 6 cannot fire and
    /// misses go straight to the database ("at the beginning of the
    /// transition stage, digests will be broadcasted to all web
    /// servers" — a few KB per digest, so tens of milliseconds).
    pub digest_broadcast_delay: SimDuration,
    /// Hop latencies.
    pub latency: LatencyModel,
    /// Cache-server power model (uniform fleet).
    pub power: PowerModel,
    /// Heterogeneous fleet: per-server power models, indexed by
    /// provisioning order. Overrides `power` when set. Section III-A:
    /// "the decreasing order of server efficiency should be better
    /// than a random order" — order efficient servers first so the
    /// always-on prefix is the cheap one.
    pub per_server_power: Option<Vec<PowerModel>>,
    /// Web-tier power model.
    pub web_tier_power: TierPowerModel,
    /// Database-tier power model.
    pub db_tier_power: TierPowerModel,
    /// PDU sampling interval.
    pub power_sample: SimDuration,
    /// Number of response-time buckets across the run (Fig. 9 groups
    /// into 480).
    pub response_buckets: usize,
    /// Pre-warm caches with the most popular pages before the run.
    pub prewarm: bool,
    /// Coalesce concurrent misses for one key into a single database
    /// fetch (the web tier's dog-pile countermeasure; see DESIGN.md).
    /// Disable only for the `ablation_coalescing` experiment.
    pub coalesce_db_fetches: bool,
    /// Override the per-server digest configuration (`None` sizes the
    /// digest automatically from the cache capacity). Used by the
    /// digest-size ablation.
    pub digest_override: Option<BloomConfig>,
    /// Fault injection: at each `(time, server)` the server's cache is
    /// wiped (a crash-and-fast-restart). Section III-A's argument —
    /// "if some server crashes, we have already lost the data in
    /// cache" — applies to every scenario equally; this knob measures
    /// how each recovers.
    pub cache_wipe_failures: Vec<(proteus_sim::SimTime, usize)>,
}

impl ClusterConfig {
    /// The paper-scale configuration (60:1 time compression).
    #[must_use]
    pub fn paper_scale() -> Self {
        ClusterConfig {
            cache_servers: 10,
            db_shards: 7,
            web_servers: 10,
            slot: SimDuration::from_secs(30),
            slots: 48,
            hot_ttl: SimDuration::from_secs(10),
            cache_capacity_bytes: 32 << 20,
            object_size: 4096,
            pages: 200_000,
            zipf_exponent: 0.8,
            db_pool_per_shard: 5,
            cache_concurrency: 16,
            web_concurrency: 64,
            digest_broadcast_delay: SimDuration::from_millis(50),
            latency: LatencyModel::default(),
            power: PowerModel::default(),
            per_server_power: None,
            web_tier_power: TierPowerModel {
                servers: 10,
                idle_w: 60.0,
                load_w: 25.0,
            },
            db_tier_power: TierPowerModel {
                servers: 7,
                idle_w: 65.0,
                load_w: 30.0,
            },
            power_sample: SimDuration::from_millis(500),
            response_buckets: 480,
            prewarm: true,
            coalesce_db_fetches: true,
            digest_override: None,
            cache_wipe_failures: Vec::new(),
        }
    }

    /// A small, fast configuration for tests and examples: 4 cache
    /// servers, 2 shards, short slots, a small catalog.
    #[must_use]
    pub fn small() -> Self {
        ClusterConfig {
            cache_servers: 4,
            db_shards: 2,
            web_servers: 2,
            slot: SimDuration::from_secs(10),
            slots: 6,
            hot_ttl: SimDuration::from_secs(6),
            cache_capacity_bytes: 2 << 20,
            object_size: 1024,
            pages: 20_000,
            zipf_exponent: 0.8,
            db_pool_per_shard: 3,
            cache_concurrency: 8,
            web_concurrency: 32,
            digest_broadcast_delay: SimDuration::from_millis(20),
            latency: LatencyModel::default(),
            power: PowerModel::default(),
            per_server_power: None,
            web_tier_power: TierPowerModel {
                servers: 2,
                idle_w: 60.0,
                load_w: 25.0,
            },
            db_tier_power: TierPowerModel {
                servers: 2,
                idle_w: 65.0,
                load_w: 30.0,
            },
            power_sample: SimDuration::from_millis(500),
            response_buckets: 60,
            prewarm: true,
            coalesce_db_fetches: true,
            digest_override: None,
            cache_wipe_failures: Vec::new(),
        }
    }

    /// Total simulated duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.slot * self.slots as u64
    }

    /// A matching trace configuration with the given mean request rate.
    #[must_use]
    pub fn trace_config(&self, mean_rate: f64) -> TraceConfig {
        TraceConfig {
            duration: self.duration(),
            mean_rate,
            peak_to_nadir: 2.0,
            pages: self.pages,
            zipf_exponent: self.zipf_exponent,
            session: SessionConfig {
                pages_per_user: 50,
                think_time: SimDuration::from_millis(500),
                mean_session: SimDuration::from_secs(20),
                catalog_pages: self.pages,
                zipf_exponent: self.zipf_exponent,
            },
        }
    }

    /// The power model of cache server `i` (the heterogeneous entry if
    /// configured, the uniform model otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for a heterogeneous fleet.
    #[must_use]
    pub fn server_power(&self, i: usize) -> PowerModel {
        match &self.per_server_power {
            Some(models) => models[i],
            None => self.power,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate settings (zero servers/shards/slots, TTL
    /// not shorter than a slot, etc.). Called by
    /// [`ClusterSim::new`](crate::ClusterSim::new).
    pub fn validate(&self) {
        assert!(self.cache_servers >= 1, "need at least one cache server");
        assert!(self.db_shards >= 1, "need at least one database shard");
        assert!(self.slots >= 1, "need at least one slot");
        assert!(self.slot > SimDuration::ZERO, "slot must be positive");
        assert!(
            self.hot_ttl < self.slot,
            "hot TTL must be shorter than a slot so transitions complete \
             before the next provisioning decision"
        );
        assert!(self.db_pool_per_shard >= 1, "shards need connections");
        assert!(self.cache_concurrency >= 1, "caches need workers");
        assert!(self.web_concurrency >= 1, "web servers need threads");
        assert!(self.web_servers >= 1, "need at least one web server");
        assert!(
            self.digest_broadcast_delay < self.hot_ttl,
            "digest broadcast must complete within the transition window"
        );
        assert!(self.response_buckets >= 1, "need response buckets");
        assert!(self.pages >= 1, "need a page catalog");
        assert!(
            self.cache_wipe_failures
                .iter()
                .all(|&(_, server)| server < self.cache_servers),
            "failure injection names an unknown server"
        );
        if let Some(models) = &self.per_server_power {
            assert_eq!(
                models.len(),
                self.cache_servers,
                "per-server power models must cover the whole fleet"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;

    #[test]
    fn paper_scale_validates() {
        let cfg = ClusterConfig::paper_scale();
        cfg.validate();
        assert_eq!(cfg.duration(), SimDuration::from_secs(1440));
    }

    #[test]
    fn small_validates() {
        ClusterConfig::small().validate();
    }

    #[test]
    fn trace_config_matches_duration_and_catalog() {
        let cfg = ClusterConfig::small();
        let tc = cfg.trace_config(100.0);
        assert_eq!(tc.duration, cfg.duration());
        assert_eq!(tc.pages, cfg.pages);
        assert_eq!(tc.mean_rate, 100.0);
    }

    #[test]
    fn server_power_uniform_and_heterogeneous() {
        let mut cfg = ClusterConfig::small();
        assert_eq!(cfg.server_power(0), cfg.power);
        assert_eq!(cfg.server_power(3), cfg.power);
        let models: Vec<PowerModel> = (0..cfg.cache_servers)
            .map(|i| PowerModel {
                idle_w: 40.0 + i as f64,
                ..PowerModel::default()
            })
            .collect();
        cfg.per_server_power = Some(models.clone());
        cfg.validate();
        assert_eq!(cfg.server_power(2), models[2]);
    }

    #[test]
    #[should_panic(expected = "cover the whole fleet")]
    fn short_power_fleet_rejected() {
        let mut cfg = ClusterConfig::small();
        cfg.per_server_power = Some(vec![PowerModel::default()]);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "hot TTL must be shorter")]
    fn ttl_longer_than_slot_rejected() {
        let mut cfg = ClusterConfig::small();
        cfg.hot_ttl = cfg.slot;
        cfg.validate();
    }
}
