//! Replication-aware routing (Section III-E).
//!
//! The paper sketches fault tolerance: run `r` consistent-hashing
//! rings with `r` hash functions over the *same* virtual-node
//! placement; a key is stored wherever any ring places it. This module
//! turns that sketch into a working router: writes go to every
//! replica, reads try replicas in ring order and skip servers marked
//! failed, and the database remains the backstop — so a single server
//! crash loses no data that a surviving replica holds (probability
//! `1 - Pnc` of co-location per key, Eq. 3).

use proteus_cache::CacheEngine;
use proteus_ring::{ReplicatedPlacement, ServerId};
use proteus_sim::SimTime;
use proteus_store::ShardedStore;

use crate::hot_key::{distinct_live, live_ring_order};

/// How a replicated fetch was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFetch {
    /// Served by the replica on ring `ring` (0-based).
    Hit {
        /// Which ring's placement answered.
        ring: usize,
        /// The serving server.
        server: ServerId,
    },
    /// All replicas missed (or were down); fetched from the database
    /// and re-installed on every live replica.
    Database,
}

/// A web-tier router over a [`ReplicatedPlacement`].
///
/// # Example
///
/// ```
/// use proteus_cache::{CacheConfig, CacheEngine};
/// use proteus_core::{ReplicaFetch, ReplicatedRouter};
/// use proteus_sim::SimTime;
/// use proteus_store::{ShardedStore, StoreConfig};
///
/// let router = ReplicatedRouter::new(4, 2, 42);
/// let mut caches: Vec<CacheEngine> = (0..4)
///     .map(|_| CacheEngine::new(CacheConfig::with_capacity(1 << 20)))
///     .collect();
/// let mut db = ShardedStore::new(StoreConfig::default());
/// let down = vec![false; 4];
///
/// let t = SimTime::ZERO;
/// let (_, how) = router.fetch(b"page:1", t, &mut caches, &mut db, &down, 4);
/// assert_eq!(how, ReplicaFetch::Database); // cold
/// let (_, how) = router.fetch(b"page:1", t, &mut caches, &mut db, &down, 4);
/// assert!(matches!(how, ReplicaFetch::Hit { ring: 0, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedRouter {
    placement: ReplicatedPlacement,
}

impl ReplicatedRouter {
    /// Creates a router for `servers` servers with `replicas` rings
    /// seeded from `seed` (all web servers must share the seed).
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or `servers` is invalid for
    /// [`proteus_ring::ProteusPlacement::generate`].
    #[must_use]
    pub fn new(servers: usize, replicas: usize, seed: u64) -> Self {
        ReplicatedRouter {
            placement: ReplicatedPlacement::new(servers, replicas, seed),
        }
    }

    /// The underlying replicated placement.
    #[must_use]
    pub fn placement(&self) -> &ReplicatedPlacement {
        &self.placement
    }

    /// Number of replica rings.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.placement.replicas()
    }

    /// The replica servers for `key` with `active` servers on, in ring
    /// order (may contain duplicates on hash conflicts).
    #[must_use]
    pub fn servers_for(&self, key: &[u8], active: usize) -> Vec<ServerId> {
        self.placement.servers_for(key, active)
    }

    /// Fetches `key`: replicas are probed in ring order, skipping
    /// servers flagged in `down`; a miss everywhere falls back to the
    /// database and re-installs the value on every *distinct, live*
    /// replica.
    ///
    /// # Panics
    ///
    /// Panics if `down.len()` differs from the cache count, or
    /// `active` exceeds it.
    pub fn fetch(
        &self,
        key: &[u8],
        now: SimTime,
        caches: &mut [CacheEngine],
        db: &mut ShardedStore,
        down: &[bool],
        active: usize,
    ) -> (Vec<u8>, ReplicaFetch) {
        assert_eq!(down.len(), caches.len(), "down-mask / cache count mismatch");
        assert!(active <= caches.len(), "more active servers than caches");
        let replicas: Vec<usize> = self
            .placement
            .servers_for(key, active)
            .iter()
            .map(|s| s.index())
            .collect();
        for (ring, server) in live_ring_order(&replicas, |s| down[s]) {
            if let Some(v) = caches[server].get(key, now) {
                let value = v.to_vec();
                return (
                    value,
                    ReplicaFetch::Hit {
                        ring,
                        server: ServerId::new(server as u32),
                    },
                );
            }
        }
        let value = db.fetch(key);
        for server in distinct_live(&replicas, |s| down[s]) {
            caches[server].put(key, value.clone(), now);
        }
        (value, ReplicaFetch::Database)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_cache::CacheConfig;
    use proteus_store::StoreConfig;

    fn setup(
        servers: usize,
        replicas: usize,
    ) -> (ReplicatedRouter, Vec<CacheEngine>, ShardedStore) {
        let router = ReplicatedRouter::new(servers, replicas, 42);
        let caches = (0..servers)
            .map(|_| CacheEngine::new(CacheConfig::with_capacity(16 << 20)))
            .collect();
        let db = ShardedStore::new(StoreConfig {
            object_size: 256,
            ..StoreConfig::default()
        });
        (router, caches, db)
    }

    const T: SimTime = SimTime::ZERO;

    #[test]
    fn fills_all_distinct_replicas_on_miss() {
        let (router, mut caches, mut db) = setup(8, 3);
        let all_up = vec![false; 8];
        let (value, how) = router.fetch(b"page:1", T, &mut caches, &mut db, &all_up, 8);
        assert_eq!(how, ReplicaFetch::Database);
        let replicas = router.servers_for(b"page:1", 8);
        for &s in &replicas {
            assert_eq!(caches[s.index()].peek(b"page:1"), Some(&value[..]));
        }
    }

    #[test]
    fn survives_primary_crash() {
        let (router, mut caches, mut db) = setup(8, 2);
        let all_up = vec![false; 8];
        // Warm 200 keys on both replicas.
        let keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            router.fetch(k, T, &mut caches, &mut db, &all_up, 8);
        }
        // Crash server 0: contents lost, marked down.
        caches[0].clear();
        let mut down = vec![false; 8];
        down[0] = true;
        let db_before = db.total_fetches();
        let mut served_by_replica = 0;
        let mut refetched = 0;
        for k in &keys {
            match router.fetch(k, T, &mut caches, &mut db, &down, 8).1 {
                ReplicaFetch::Hit { server, .. } => {
                    assert_ne!(server.index(), 0, "down server must not serve");
                    served_by_replica += 1;
                }
                ReplicaFetch::Database => refetched += 1,
            }
        }
        // Keys whose replicas were distinct survive; only co-located
        // keys (both rings → server 0) need the database. Eq. 3 with
        // r=2, n=8 predicts 1/8 co-location ≈ 25 keys; allow slack.
        assert!(
            served_by_replica > 150,
            "{served_by_replica} served by replicas"
        );
        assert!(refetched < 60, "{refetched} refetched");
        assert_eq!(db.total_fetches(), db_before + refetched as u64);
    }

    #[test]
    fn no_replication_degenerates_to_single_ring() {
        let (router, mut caches, mut db) = setup(4, 1);
        let all_up = vec![false; 4];
        assert_eq!(router.replicas(), 1);
        router.fetch(b"k", T, &mut caches, &mut db, &all_up, 4);
        let cached: usize = caches.iter().filter(|c| c.contains(b"k")).count();
        assert_eq!(cached, 1, "exactly one copy with r = 1");
    }

    #[test]
    fn reads_prefer_the_first_live_ring() {
        let (router, mut caches, mut db) = setup(6, 3);
        let all_up = vec![false; 6];
        router.fetch(b"page:9", T, &mut caches, &mut db, &all_up, 6);
        let (_, how) = router.fetch(b"page:9", T, &mut caches, &mut db, &all_up, 6);
        match how {
            ReplicaFetch::Hit { ring, .. } => assert_eq!(ring, 0),
            other => panic!("expected hit, got {other:?}"),
        }
        // With ring 0's server down, ring 1 takes over.
        let primary = router.servers_for(b"page:9", 6)[0];
        let mut down = vec![false; 6];
        down[primary.index()] = true;
        let (_, how) = router.fetch(b"page:9", T, &mut caches, &mut db, &down, 6);
        match how {
            ReplicaFetch::Hit { ring, server } => {
                assert!(ring >= 1);
                assert_ne!(server, primary);
            }
            ReplicaFetch::Database => {
                // Legal only if all replicas co-located on the primary.
                let distinct = router
                    .placement()
                    .distinct_servers_for(b"page:9", 6)
                    .into_iter()
                    .filter(|s| *s != primary)
                    .count();
                assert_eq!(distinct, 0, "live replicas must have served");
            }
        }
    }

    #[test]
    fn works_under_scale_down() {
        let (router, mut caches, mut db) = setup(8, 2);
        let all_up = vec![false; 8];
        let keys: Vec<Vec<u8>> = (0..100u32).map(|i| format!("p:{i}").into_bytes()).collect();
        for k in &keys {
            router.fetch(k, T, &mut caches, &mut db, &all_up, 8);
        }
        // Active count drops to 5: all replica lookups stay within the
        // active prefix.
        for k in &keys {
            let (_, how) = router.fetch(k, T, &mut caches, &mut db, &all_up, 5);
            if let ReplicaFetch::Hit { server, .. } = how {
                assert!(server.index() < 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "down-mask / cache count mismatch")]
    fn down_mask_must_match() {
        let (router, mut caches, mut db) = setup(4, 2);
        let _ = router.fetch(b"k", T, &mut caches, &mut db, &[false; 3], 4);
    }
}
