//! The four evaluation scenarios of Table II.

use std::fmt;

use proteus_ring::{ModuloStrategy, PlacementStrategy, ProteusPlacement, RandomRing};

/// Virtual-node budget for the `Consistent` baseline (Fig. 5 evaluates
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VnodeBudget {
    /// `O(log n)` virtual nodes per server.
    Logarithmic,
    /// `n²/2` virtual nodes in total (`n/2` per server) — the same
    /// budget Proteus's Algorithm 1 uses.
    #[default]
    Quadratic,
}

/// A Table II scenario: who provisions, and how keys map to servers.
///
/// | Scenario     | Server provisioning | Workload distribution        |
/// |--------------|---------------------|------------------------------|
/// | `Static`     | all servers on      | simple hash with modulo      |
/// | `Naive`      | dynamically tuned   | simple hash with modulo      |
/// | `Consistent` | dynamically tuned   | consistent hashing           |
/// | `Proteus`    | dynamically tuned   | Algorithm 1 + Algorithm 2    |
///
/// # Example
///
/// ```
/// use proteus_core::Scenario;
/// assert!(!Scenario::Static.is_dynamic());
/// assert!(Scenario::Proteus.uses_digests());
/// assert_eq!(Scenario::Naive.name(), "naive");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// All servers always on; `hash mod N`.
    Static,
    /// Dynamic provisioning; `hash mod n(t)` — the delay-spike strawman.
    Naive,
    /// Dynamic provisioning; classic consistent hashing with randomly
    /// placed virtual nodes.
    Consistent(VnodeBudget),
    /// Dynamic provisioning; Proteus placement + digest-guided smooth
    /// transitions.
    Proteus,
    /// Component ablation: Algorithm 1 placement *without* digests
    /// (abrupt transitions). Isolates how much of Proteus's win is the
    /// placement alone.
    ProteusBlind,
    /// Component ablation: random-vnode consistent hashing *with*
    /// Algorithm 2 digests. Isolates how much the smooth-transition
    /// machinery helps a conventional ring.
    ConsistentSmart(VnodeBudget),
}

impl Scenario {
    /// All four scenarios in Table II order (quadratic-budget
    /// `Consistent`).
    #[must_use]
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::Static,
            Scenario::Naive,
            Scenario::Consistent(VnodeBudget::Quadratic),
            Scenario::Proteus,
        ]
    }

    /// Whether provisioning follows the plan (`true`) or pins all
    /// servers on (`false`, Static only).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, Scenario::Static)
    }

    /// Whether the web tier consults cache digests during transitions.
    #[must_use]
    pub fn uses_digests(&self) -> bool {
        matches!(self, Scenario::Proteus | Scenario::ConsistentSmart(_))
    }

    /// Builds the key→server strategy for a cluster of `servers`
    /// servers. `seed` controls the random virtual-node layout of the
    /// `Consistent` baseline (the paper shares seed 0 across web
    /// servers).
    #[must_use]
    pub fn strategy(&self, servers: usize, seed: u64) -> Box<dyn PlacementStrategy + Send + Sync> {
        match self {
            Scenario::Static | Scenario::Naive => Box::new(ModuloStrategy::new(servers)),
            Scenario::Consistent(VnodeBudget::Logarithmic) => {
                Box::new(RandomRing::with_log_vnodes(servers, seed))
            }
            Scenario::Consistent(VnodeBudget::Quadratic) => {
                Box::new(RandomRing::with_quadratic_vnodes(servers, seed))
            }
            Scenario::Proteus | Scenario::ProteusBlind => {
                Box::new(ProteusPlacement::generate(servers))
            }
            Scenario::ConsistentSmart(VnodeBudget::Logarithmic) => {
                Box::new(RandomRing::with_log_vnodes(servers, seed))
            }
            Scenario::ConsistentSmart(VnodeBudget::Quadratic) => {
                Box::new(RandomRing::with_quadratic_vnodes(servers, seed))
            }
        }
    }

    /// A short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Static => "static",
            Scenario::Naive => "naive",
            Scenario::Consistent(VnodeBudget::Logarithmic) => "consistent-logn",
            Scenario::Consistent(VnodeBudget::Quadratic) => "consistent-n2",
            Scenario::Proteus => "proteus",
            Scenario::ProteusBlind => "proteus-blind",
            Scenario::ConsistentSmart(VnodeBudget::Logarithmic) => "consistent-digests-logn",
            Scenario::ConsistentSmart(VnodeBudget::Quadratic) => "consistent-digests",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_table2_order() {
        let names: Vec<&str> = Scenario::all().iter().map(Scenario::name).collect();
        assert_eq!(names, vec!["static", "naive", "consistent-n2", "proteus"]);
    }

    #[test]
    fn strategies_build_and_route() {
        for sc in Scenario::all() {
            let s = sc.strategy(10, 0);
            for n in [1usize, 5, 10] {
                assert!(s.server_for(0xFACE, n).index() < n, "{sc}");
            }
        }
        let log = Scenario::Consistent(VnodeBudget::Logarithmic).strategy(10, 0);
        assert_eq!(log.name(), "consistent");
    }

    #[test]
    fn dynamic_and_digest_flags() {
        assert!(!Scenario::Static.is_dynamic());
        assert!(Scenario::Naive.is_dynamic());
        assert!(Scenario::Consistent(VnodeBudget::Quadratic).is_dynamic());
        assert!(Scenario::Proteus.is_dynamic());
        for sc in Scenario::all() {
            assert_eq!(sc.uses_digests(), sc == Scenario::Proteus);
        }
        // The component-ablation variants split the two mechanisms.
        assert!(!Scenario::ProteusBlind.uses_digests());
        assert!(Scenario::ProteusBlind.is_dynamic());
        assert!(Scenario::ConsistentSmart(VnodeBudget::Quadratic).uses_digests());
        assert_eq!(Scenario::ProteusBlind.name(), "proteus-blind");
        assert_eq!(
            Scenario::ConsistentSmart(VnodeBudget::Quadratic).name(),
            "consistent-digests"
        );
    }

    #[test]
    fn display_matches_name() {
        for sc in Scenario::all() {
            assert_eq!(format!("{sc}"), sc.name());
        }
    }
}
