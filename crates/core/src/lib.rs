//! The Proteus system: a power-proportional memory cache cluster.
//!
//! This crate assembles the substrates (`proteus-ring`, `proteus-bloom`,
//! `proteus-cache`, `proteus-store`, `proteus-workload`, `proteus-sim`)
//! into the full system of the ICDCS 2013 paper:
//!
//! - [`Scenario`] — the four Table II configurations (Static, Naive,
//!   Consistent, Proteus) and their placement strategies.
//! - [`Router`] — **Algorithm 2** data retrieval: query the key's new
//!   server, consult the old server's digest during a transition,
//!   migrate hot data on demand, fall back to the database only when
//!   the data is genuinely cold (or a digest false-positive fires).
//! - [`TransitionManager`] — the smooth-provisioning state machine:
//!   digest broadcast at transition start, a TTL-long dual-mapping
//!   window, and safe power-off of drained servers (Section IV).
//! - [`ProvisioningPlan`] / [`FeedbackController`] — the paper's
//!   feedback provisioning loop (0.4 s reference, 0.5 s delay bound,
//!   per-slot updates) and the load-proportional planner used to derive
//!   the Fig. 4 `n(t)` curve that all scenarios replay.
//! - [`PowerModel`] / [`EnergyMeter`] — per-server power states and
//!   PDU-style sampling for the Fig. 10/11 energy accounting.
//! - [`ClusterSim`] — the discrete-event simulation of the whole
//!   RBE → web → cache → database pipeline, with queueing at the
//!   database connection pools (the mechanism that turns miss storms
//!   into the Fig. 9 delay spikes), producing a [`ClusterReport`].
//!
//! # Example
//!
//! ```
//! use proteus_core::{ClusterConfig, ClusterSim, Scenario};
//! use proteus_sim::SimDuration;
//! use proteus_workload::{Trace, TraceConfig};
//!
//! let mut config = ClusterConfig::small();
//! config.slots = 4;
//! config.slot = SimDuration::from_secs(10);
//! let trace = Trace::synthesize(&config.trace_config(200.0), 1);
//! let plan = proteus_core::ProvisioningPlan::load_proportional(
//!     &trace.requests_per_slot(config.slot, config.slots),
//!     config.cache_servers,
//!     2,
//! );
//! let report = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 7).run();
//! assert!(report.completed_requests() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod controller;
pub mod hot_key;
mod metrics;
mod power;
mod replicated_router;
mod router;
mod scenario;
mod transition;

pub use cluster::{page_key, ClusterSim};
pub use config::{ClusterConfig, LatencyModel};
pub use controller::{DelaySignal, FeedbackController, ProvisioningPlan, SetPoints};
pub use hot_key::{HotKeyEstimate, ReplicaRings, SpaceSaving, TwoChoices};
pub use metrics::{ClusterReport, FetchClass, FetchCounters};
pub use power::{energy_of_constant_draw, EnergyMeter, PowerModel, PowerState, TierPowerModel};
pub use replicated_router::{ReplicaFetch, ReplicatedRouter};
pub use router::{FetchOutcome, Router};
pub use scenario::{Scenario, VnodeBudget};
pub use transition::TransitionManager;
