//! Power modelling and energy accounting (Figs. 10 and 11).
//!
//! The paper measures real PDU readings of its 40-server cluster every
//! 15 seconds. We substitute a per-server power model with the usual
//! commodity-server shape — a large idle floor plus a roughly linear
//! load-dependent component — and integrate samples over simulated
//! time.

use proteus_sim::{SimDuration, SimTime};

/// A cache server's power state in the provisioning state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerState {
    /// Powered off (the low-power state dynamic provisioning buys).
    Off,
    /// Booting: drawing power but not yet serving.
    Booting,
    /// Serving traffic.
    #[default]
    On,
    /// In the TTL drain window: still serving (migration reads) but
    /// scheduled to power off.
    Draining,
}

/// Per-server power draw by state and utilization.
///
/// Defaults approximate the paper's Dell PowerEdge R210s: ~5 W "off"
/// (management controller), ~60 W idle, ~95 W at full load.
///
/// # Example
///
/// ```
/// use proteus_core::{PowerModel, PowerState};
/// let m = PowerModel::default();
/// assert!(m.draw(PowerState::Off, 0.0) < m.draw(PowerState::On, 0.0));
/// assert!(m.draw(PowerState::On, 1.0) > m.draw(PowerState::On, 0.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Watts when powered off (standby management hardware).
    pub off_w: f64,
    /// Watts when idle.
    pub idle_w: f64,
    /// Watts at 100% utilization.
    pub peak_w: f64,
    /// Watts while booting.
    pub boot_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            off_w: 5.0,
            idle_w: 60.0,
            peak_w: 95.0,
            boot_w: 80.0,
        }
    }
}

impl PowerModel {
    /// Instantaneous draw for a server in `state` at `utilization`
    /// (clamped to `[0, 1]`).
    #[must_use]
    pub fn draw(&self, state: PowerState, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        match state {
            PowerState::Off => self.off_w,
            PowerState::Booting => self.boot_w,
            PowerState::On | PowerState::Draining => self.idle_w + (self.peak_w - self.idle_w) * u,
        }
    }
}

/// Power of an always-on tier (web servers, database shards) with a
/// small load-dependent term: the paper's Static curve "actually
/// decreases slightly as the workload decreases".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPowerModel {
    /// Number of servers in the tier.
    pub servers: usize,
    /// Idle watts per server.
    pub idle_w: f64,
    /// Additional watts per server at the tier's peak request rate.
    pub load_w: f64,
}

impl TierPowerModel {
    /// Tier draw at `load_fraction` of its peak throughput.
    #[must_use]
    pub fn draw(&self, load_fraction: f64) -> f64 {
        let u = load_fraction.clamp(0.0, 1.0);
        self.servers as f64 * (self.idle_w + self.load_w * u)
    }
}

/// Integrates sampled power into energy, PDU-style.
///
/// # Example
///
/// ```
/// use proteus_core::EnergyMeter;
/// use proteus_sim::SimTime;
///
/// let mut meter = EnergyMeter::new();
/// meter.sample(SimTime::from_secs(0), 100.0);
/// meter.sample(SimTime::from_secs(10), 100.0);
/// assert!((meter.joules() - 1000.0).abs() < 1e-9);
/// assert!((meter.watt_hours() - 1000.0 / 3600.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    joules: f64,
    last: Option<(SimTime, f64)>,
}

impl EnergyMeter {
    /// A meter with no samples.
    #[must_use]
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records a power reading of `watts` at time `t`; energy is
    /// accumulated with the previous reading held constant over the
    /// interval (left Riemann sum, like a PDU's periodic sampling).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample.
    pub fn sample(&mut self, t: SimTime, watts: f64) {
        if let Some((prev_t, prev_w)) = self.last {
            let dt = t
                .checked_since(prev_t)
                .expect("power samples must be time-ordered");
            self.joules += prev_w * dt.as_secs_f64();
        }
        self.last = Some((t, watts));
    }

    /// Accumulated energy in joules.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Accumulated energy in watt-hours.
    #[must_use]
    pub fn watt_hours(&self) -> f64 {
        self.joules / 3600.0
    }

    /// Mean power over the sampled span, or `None` before two samples.
    #[must_use]
    pub fn mean_watts(&self, start: SimTime) -> Option<f64> {
        let (last_t, _) = self.last?;
        let span = last_t.checked_since(start)?.as_secs_f64();
        (span > 0.0).then(|| self.joules / span)
    }
}

/// Integrates a step function of power over a duration: convenience
/// for closed-form checks in tests and reports.
#[must_use]
pub fn energy_of_constant_draw(watts: f64, duration: SimDuration) -> f64 {
    watts * duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_states_order_sensibly() {
        let m = PowerModel::default();
        let off = m.draw(PowerState::Off, 0.0);
        let idle = m.draw(PowerState::On, 0.0);
        let busy = m.draw(PowerState::On, 1.0);
        let boot = m.draw(PowerState::Booting, 0.0);
        assert!(off < idle && idle < busy);
        assert!(boot > idle - 1.0);
        assert_eq!(
            m.draw(PowerState::Draining, 0.5),
            m.draw(PowerState::On, 0.5)
        );
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::default();
        assert_eq!(m.draw(PowerState::On, -3.0), m.draw(PowerState::On, 0.0));
        assert_eq!(m.draw(PowerState::On, 9.0), m.draw(PowerState::On, 1.0));
    }

    #[test]
    fn meter_integrates_step_function() {
        let mut meter = EnergyMeter::new();
        meter.sample(SimTime::from_secs(0), 50.0);
        meter.sample(SimTime::from_secs(10), 150.0);
        meter.sample(SimTime::from_secs(20), 0.0);
        // 50 W for 10 s + 150 W for 10 s.
        assert!((meter.joules() - 2000.0).abs() < 1e-9);
        let mean = meter.mean_watts(SimTime::from_secs(0)).unwrap();
        assert!((mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn meter_with_one_sample_has_no_energy() {
        let mut meter = EnergyMeter::new();
        meter.sample(SimTime::from_secs(5), 100.0);
        assert_eq!(meter.joules(), 0.0);
        assert_eq!(meter.mean_watts(SimTime::from_secs(5)), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn meter_rejects_time_travel() {
        let mut meter = EnergyMeter::new();
        meter.sample(SimTime::from_secs(10), 1.0);
        meter.sample(SimTime::from_secs(5), 1.0);
    }

    #[test]
    fn tier_power_scales_with_load() {
        let tier = TierPowerModel {
            servers: 7,
            idle_w: 55.0,
            load_w: 25.0,
        };
        assert!((tier.draw(0.0) - 385.0).abs() < 1e-9);
        assert!(tier.draw(1.0) > tier.draw(0.2));
        assert!((tier.draw(2.0) - tier.draw(1.0)).abs() < 1e-9, "clamped");
    }

    #[test]
    fn constant_draw_helper() {
        assert_eq!(
            energy_of_constant_draw(10.0, SimDuration::from_secs(60)),
            600.0
        );
    }
}
