//! The smooth-provisioning transition state machine (Section IV).

use proteus_bloom::BloomFilter;
use proteus_sim::SimTime;

use crate::power::PowerState;

/// Tracks the provisioning state machine of the cache tier: which
/// servers are on/draining/off, the old and new key mappings during a
/// transition window, and the digest snapshots broadcast to the web
/// tier at transition start.
///
/// Protocol (Section IV): when `n(t) → n(t+1)`,
///
/// 1. digests of the servers active under the *old* mapping are
///    snapshot and broadcast ("at the beginning of the transition
///    stage, digests will be broadcasted to all web servers");
/// 2. for `TTL` seconds both mappings are live: requests go to the new
///    server first, then (digest permitting) to the old one
///    (Algorithm 2);
/// 3. after `TTL`, any departing server is safely powered off — every
///    hot item has been migrated on demand, every cold item may be
///    dropped.
///
/// # Example
///
/// ```
/// use proteus_bloom::{BloomConfig, BloomFilter};
/// use proteus_core::TransitionManager;
/// use proteus_sim::{SimDuration, SimTime};
///
/// let mut tm = TransitionManager::new(4, 4);
/// let t0 = SimTime::from_secs(100);
/// tm.begin(t0, 3, SimDuration::from_secs(10), |_server| {
///     BloomFilter::new(BloomConfig::new(64, 1, 2))
/// });
/// assert!(tm.in_transition(t0 + SimDuration::from_secs(5)));
/// assert_eq!(tm.active(), 3);
/// assert_eq!(tm.previous_active(), 4);
/// ```
#[derive(Debug)]
pub struct TransitionManager {
    total: usize,
    active: usize,
    previous_active: usize,
    deadline: Option<SimTime>,
    states: Vec<PowerState>,
    digests: Vec<Option<BloomFilter>>,
}

impl TransitionManager {
    /// Creates the manager with `initial_active` of `total` servers on.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= initial_active <= total`.
    #[must_use]
    pub fn new(total: usize, initial_active: usize) -> Self {
        assert!(
            (1..=total).contains(&initial_active),
            "initial active count {initial_active} outside 1..={total}"
        );
        let mut states = vec![PowerState::Off; total];
        for s in states.iter_mut().take(initial_active) {
            *s = PowerState::On;
        }
        TransitionManager {
            total,
            active: initial_active,
            previous_active: initial_active,
            deadline: None,
            states,
            digests: vec![None; total],
        }
    }

    /// Total servers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Active servers under the *new* (current) mapping.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Active servers under the *old* mapping (equal to
    /// [`active`](Self::active) outside a transition window).
    #[must_use]
    pub fn previous_active(&self) -> usize {
        self.previous_active
    }

    /// The power state of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn state(&self, i: usize) -> PowerState {
        self.states[i]
    }

    /// Whether a transition window is open at time `now`.
    #[must_use]
    pub fn in_transition(&self, now: SimTime) -> bool {
        self.deadline.is_some_and(|d| now < d)
    }

    /// The open window's deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// The digest snapshot of server `i` taken at the start of the
    /// current window, if one is open and `i` was active under the old
    /// mapping.
    #[must_use]
    pub fn digest(&self, i: usize) -> Option<&BloomFilter> {
        self.digests.get(i).and_then(Option::as_ref)
    }

    /// Opens a transition to `new_active` servers at time `now` with a
    /// drain window of `ttl`. `snapshot` is called once per server
    /// active under the old mapping to capture its digest (the
    /// broadcast). A still-open previous window is finalized first.
    ///
    /// Calling with `new_active == active` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `new_active` is outside `1..=total`.
    pub fn begin<F>(
        &mut self,
        now: SimTime,
        new_active: usize,
        ttl: proteus_sim::SimDuration,
        mut snapshot: F,
    ) where
        F: FnMut(usize) -> BloomFilter,
    {
        assert!(
            (1..=self.total).contains(&new_active),
            "new active count {new_active} outside 1..={}",
            self.total
        );
        if self.deadline.is_some() {
            self.finalize(now);
        }
        if new_active == self.active {
            return;
        }
        let old_active = self.active;
        // Broadcast: snapshot every server of the old configuration.
        for i in 0..old_active {
            self.digests[i] = Some(snapshot(i));
        }
        if new_active < old_active {
            for i in new_active..old_active {
                self.states[i] = PowerState::Draining;
            }
        } else {
            for i in old_active..new_active {
                self.states[i] = PowerState::On;
            }
        }
        self.previous_active = old_active;
        self.active = new_active;
        self.deadline = Some(now + ttl);
    }

    /// Closes the current window: draining servers power off, digests
    /// are dropped, and the old mapping is retired. Returns the servers
    /// that powered off (their caches should be cleared).
    pub fn finalize(&mut self, _now: SimTime) -> Vec<usize> {
        let mut powered_off = Vec::new();
        for (i, s) in self.states.iter_mut().enumerate() {
            if *s == PowerState::Draining {
                *s = PowerState::Off;
                powered_off.push(i);
            }
        }
        self.digests.iter_mut().for_each(|d| *d = None);
        self.previous_active = self.active;
        self.deadline = None;
        powered_off
    }

    /// Immediate (non-smooth) switch, as the Naive and Consistent
    /// scenarios do: the mapping changes and departing servers power
    /// off at once, losing their contents. A still-open smooth window
    /// is finalized first (its draining servers power off too).
    /// Returns all powered-off servers.
    ///
    /// # Panics
    ///
    /// Panics if `new_active` is outside `1..=total`.
    pub fn switch_abrupt(&mut self, new_active: usize) -> Vec<usize> {
        assert!(
            (1..=self.total).contains(&new_active),
            "new active count {new_active} outside 1..={}",
            self.total
        );
        let mut powered_off = if self.deadline.is_some() {
            self.finalize(SimTime::ZERO)
        } else {
            Vec::new()
        };
        let old_active = self.active;
        if new_active < old_active {
            for i in new_active..old_active {
                self.states[i] = PowerState::Off;
                powered_off.push(i);
            }
        } else {
            for i in old_active..new_active {
                self.states[i] = PowerState::On;
            }
        }
        self.active = new_active;
        self.previous_active = new_active;
        self.deadline = None;
        powered_off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_bloom::{BloomConfig, CountingBloomFilter};
    use proteus_sim::SimDuration;

    fn digest_with(keys: &[&[u8]]) -> BloomFilter {
        let mut c = CountingBloomFilter::new(BloomConfig::new(1024, 4, 4));
        for k in keys {
            c.insert(k);
        }
        c.snapshot()
    }

    #[test]
    fn initial_states_follow_prefix() {
        let tm = TransitionManager::new(6, 4);
        for i in 0..4 {
            assert_eq!(tm.state(i), PowerState::On);
        }
        for i in 4..6 {
            assert_eq!(tm.state(i), PowerState::Off);
        }
        assert!(!tm.in_transition(SimTime::ZERO));
        assert_eq!(tm.digest(0), None);
    }

    #[test]
    fn scale_down_opens_window_with_digests() {
        let mut tm = TransitionManager::new(4, 4);
        let t = SimTime::from_secs(10);
        tm.begin(t, 2, SimDuration::from_secs(5), |i| {
            digest_with(&[format!("server{i}").as_bytes()])
        });
        assert_eq!(tm.active(), 2);
        assert_eq!(tm.previous_active(), 4);
        assert_eq!(tm.state(2), PowerState::Draining);
        assert_eq!(tm.state(3), PowerState::Draining);
        assert!(tm.in_transition(t + SimDuration::from_secs(4)));
        assert!(!tm.in_transition(t + SimDuration::from_secs(5)));
        // Digests exist for all four old-config servers.
        for i in 0..4 {
            assert!(tm.digest(i).is_some(), "digest {i}");
        }
        assert!(tm.digest(0).unwrap().contains(b"server0"));
    }

    #[test]
    fn finalize_powers_off_draining_servers() {
        let mut tm = TransitionManager::new(4, 4);
        tm.begin(SimTime::ZERO, 3, SimDuration::from_secs(5), |_| {
            digest_with(&[])
        });
        let off = tm.finalize(SimTime::from_secs(5));
        assert_eq!(off, vec![3]);
        assert_eq!(tm.state(3), PowerState::Off);
        assert_eq!(tm.previous_active(), 3);
        assert_eq!(tm.digest(0), None, "digests dropped");
        assert!(!tm.in_transition(SimTime::from_secs(6)));
    }

    #[test]
    fn scale_up_turns_servers_on_and_keeps_old_digests() {
        let mut tm = TransitionManager::new(5, 2);
        tm.begin(SimTime::ZERO, 4, SimDuration::from_secs(3), |i| {
            digest_with(&[format!("s{i}").as_bytes()])
        });
        assert_eq!(tm.state(2), PowerState::On);
        assert_eq!(tm.state(3), PowerState::On);
        assert_eq!(tm.previous_active(), 2);
        // Only the two old-config servers have digests.
        assert!(tm.digest(0).is_some() && tm.digest(1).is_some());
        assert!(tm.digest(2).is_none() && tm.digest(3).is_none());
    }

    #[test]
    fn overlapping_transition_finalizes_previous() {
        let mut tm = TransitionManager::new(6, 6);
        tm.begin(SimTime::ZERO, 5, SimDuration::from_secs(10), |_| {
            digest_with(&[])
        });
        // Second transition before the first drain ends.
        tm.begin(SimTime::from_secs(4), 4, SimDuration::from_secs(10), |_| {
            digest_with(&[])
        });
        assert_eq!(tm.state(5), PowerState::Off, "previous drain finalized");
        assert_eq!(tm.state(4), PowerState::Draining);
        assert_eq!(tm.active(), 4);
        assert_eq!(tm.previous_active(), 5);
    }

    #[test]
    fn no_op_transition_changes_nothing() {
        let mut tm = TransitionManager::new(4, 3);
        tm.begin(SimTime::ZERO, 3, SimDuration::from_secs(5), |_| {
            panic!("snapshot must not be called for a no-op")
        });
        assert!(!tm.in_transition(SimTime::ZERO));
        assert_eq!(tm.active(), 3);
    }

    #[test]
    fn abrupt_switch_has_no_window() {
        let mut tm = TransitionManager::new(4, 4);
        let off = tm.switch_abrupt(2);
        assert_eq!(off, vec![2, 3]);
        // An abrupt switch closes any open smooth window first.
        let mut tm2 = TransitionManager::new(4, 4);
        tm2.begin(SimTime::ZERO, 3, SimDuration::from_secs(10), |_| {
            digest_with(&[])
        });
        let off = tm2.switch_abrupt(3);
        assert_eq!(off, vec![3], "draining server powered off by abrupt switch");
        assert_eq!(tm2.state(3), PowerState::Off);
        assert!(!tm.in_transition(SimTime::ZERO));
        assert_eq!(tm.previous_active(), 2);
        let off = tm.switch_abrupt(3);
        assert!(off.is_empty());
        assert_eq!(tm.state(2), PowerState::On);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn begin_validates_range() {
        let mut tm = TransitionManager::new(4, 2);
        tm.begin(SimTime::ZERO, 5, SimDuration::from_secs(1), |_| {
            digest_with(&[])
        });
    }
}
