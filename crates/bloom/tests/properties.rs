//! Property-based tests for the Bloom filter digests.

use proptest::prelude::*;
use proteus_bloom::{
    config, BloomConfig, BloomFilter, CountingBloomFilter, DigestSnapshot, OverflowPolicy,
};

fn keys_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 1..300)
}

proptest! {
    /// The defining Bloom guarantee: a plain filter never false-negatives.
    #[test]
    fn plain_filter_has_no_false_negatives(keys in keys_strategy(), l in 64usize..8192, h in 1u32..8) {
        let mut f = BloomFilter::new(BloomConfig::new(l, 1, h));
        for k in &keys {
            f.insert(&k.to_le_bytes());
        }
        for k in &keys {
            prop_assert!(f.contains(&k.to_le_bytes()));
        }
    }

    /// Saturating counting filters never false-negative for currently
    /// present keys, regardless of interleaved inserts/removes of other
    /// keys and regardless of overflow pressure.
    #[test]
    fn saturating_filter_has_no_false_negatives(
        present in prop::collection::hash_set(any::<u64>(), 1..150),
        churn in prop::collection::vec(any::<u64>(), 0..150),
        l in 32usize..4096,
        b in 1u32..5,
    ) {
        let cfg = BloomConfig::new(l, b, 4);
        let mut f = CountingBloomFilter::with_policy(cfg, OverflowPolicy::Saturate);
        for k in &present {
            f.insert(&k.to_le_bytes());
        }
        // Insert and remove unrelated keys (cache churn).
        for k in &churn {
            if !present.contains(k) {
                f.insert(&k.to_le_bytes());
            }
        }
        for k in &churn {
            if !present.contains(k) {
                f.remove(&k.to_le_bytes());
            }
        }
        for k in &present {
            prop_assert!(f.contains(&k.to_le_bytes()), "lost key {k}");
        }
    }

    /// Inserting then removing every key returns the filter to an
    /// all-absent state (modulo saturation stickiness, which requires
    /// overflow; keep load below the counter maximum to avoid it).
    #[test]
    fn counting_filter_delete_is_exact_without_overflow(
        keys in prop::collection::hash_set(any::<u64>(), 1..100),
    ) {
        // Wide counters + generous table: no counter can saturate.
        let cfg = BloomConfig::new(1 << 14, 8, 4);
        let mut f = CountingBloomFilter::new(cfg);
        for k in &keys {
            f.insert(&k.to_le_bytes());
        }
        for k in &keys {
            f.remove(&k.to_le_bytes());
        }
        prop_assert!(f.is_empty());
        prop_assert_eq!(f.overflow_events(), 0);
        for k in &keys {
            prop_assert!(!f.contains(&k.to_le_bytes()), "ghost key {k}");
        }
    }

    /// A snapshot agrees with its source filter on every probed key.
    #[test]
    fn snapshot_membership_equivalence(
        inserted in prop::collection::vec(any::<u64>(), 1..200),
        probes in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let cfg = BloomConfig::new(1 << 12, 4, 4);
        let mut f = CountingBloomFilter::new(cfg);
        for k in &inserted {
            f.insert(&k.to_le_bytes());
        }
        let snap = f.snapshot();
        for k in probes.iter().chain(&inserted) {
            prop_assert_eq!(snap.contains(&k.to_le_bytes()), f.contains(&k.to_le_bytes()));
        }
    }

    /// Snapshot wire serialization round-trips exactly.
    #[test]
    fn snapshot_bytes_roundtrip(
        inserted in prop::collection::vec(any::<u64>(), 0..100),
        l in 64usize..4096,
        seed in any::<u64>(),
    ) {
        let cfg = BloomConfig::new(l, 4, 4).with_seed(seed);
        let mut f = CountingBloomFilter::new(cfg);
        for k in &inserted {
            f.insert(&k.to_le_bytes());
        }
        let snap = DigestSnapshot::from_filter(&f.snapshot());
        let decoded = DigestSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(decoded.filter(), snap.filter());
    }

    /// Decoding arbitrary bytes never panics — it either succeeds or
    /// returns a structured error.
    #[test]
    fn snapshot_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = DigestSnapshot::from_bytes(&bytes);
    }

    /// Eq. 4's predictor is monotone: more counters never raise the
    /// predicted false-positive rate; more keys never lower it.
    #[test]
    fn eq4_is_monotone(l in 1000usize..100_000, kappa in 100u64..10_000, h in 1u32..8) {
        let base = config::false_positive_rate(l, h, kappa);
        prop_assert!(config::false_positive_rate(l * 2, h, kappa) <= base + 1e-12);
        prop_assert!(config::false_positive_rate(l, h, kappa * 2) >= base - 1e-12);
    }

    /// The optimizer always returns a configuration meeting both bounds.
    #[test]
    fn optimal_config_is_feasible(
        kappa in 100u64..200_000,
        h in 2u32..8,
        pp_exp in 1u32..6,
        pn_exp in 1u32..6,
    ) {
        let pp = 10f64.powi(-(pp_exp as i32));
        let pn = 10f64.powi(-(pn_exp as i32));
        let cfg = BloomConfig::optimal(kappa, h, pp, pn);
        prop_assert!(config::false_positive_rate(cfg.counters, h, kappa) <= pp * 1.001);
        prop_assert!(config::false_negative_bound(cfg.counters, cfg.counter_bits, h, kappa) <= pn);
        prop_assert!(cfg.counter_bits >= 1 && cfg.counter_bits <= 16);
    }

    /// Lambert W satisfies its defining identity across its domain.
    #[test]
    fn lambert_w_identity(x in -0.36f64..1e6) {
        let w = config::lambert_w(x);
        prop_assert!((w * w.exp() - x).abs() <= 1e-8 * (1.0 + x.abs()), "x={x} w={w}");
    }

    /// Sharding invariance: partition any key set across any shard
    /// count, snapshot each shard's digest, and merge — the result is
    /// bit-identical to one digest over the whole set. This is the
    /// property that lets a sharded cache answer `SET_BLOOM_FILTER`
    /// one shard at a time.
    #[test]
    fn merged_shard_snapshots_equal_unsharded_digest(
        keys in keys_strategy(),
        shard_count in 1usize..9,
        l in 64usize..8192,
        h in 1u32..8,
    ) {
        let cfg = BloomConfig::new(l, 4, h);
        let mut whole = CountingBloomFilter::new(cfg);
        let mut shards: Vec<CountingBloomFilter> =
            (0..shard_count).map(|_| CountingBloomFilter::new(cfg)).collect();
        for k in &keys {
            whole.insert(&k.to_le_bytes());
            // Any deterministic key→shard map works; mirror the
            // cache's hash-based choice with a cheap mix.
            let shard = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shard_count;
            shards[shard].insert(&k.to_le_bytes());
        }
        let mut merged = DigestSnapshot::from_filter(&shards[0].snapshot());
        for shard in &shards[1..] {
            merged.merge(&DigestSnapshot::from_filter(&shard.snapshot())).unwrap();
        }
        prop_assert_eq!(merged.filter(), &whole.snapshot());
        prop_assert_eq!(merged.filter().set_bits(), whole.snapshot().set_bits());
    }
}
