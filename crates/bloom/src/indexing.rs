//! Shared hashing/index derivation for both filter kinds.
//!
//! Counting filters (on cache servers) and plain filters (broadcast to
//! web servers) must agree bit-for-bit on which counters/bits a key
//! touches; both derive indices from this one plan.

/// FNV-1a, 64-bit (kept local so this crate stays dependency-free).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the `h` counter indices for a key via double hashing:
/// `index_i = (a + i·b) mod l`, with `a`, `b` mixed from the key and
/// the filter seed. Double hashing gives `h` practically independent
/// functions from two base hashes (the standard Kirsch–Mitzenmacher
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IndexPlan {
    pub counters: usize,
    pub hashes: u32,
    pub seed: u64,
}

impl IndexPlan {
    pub(crate) fn indices(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let base = fnv1a64(key);
        let a = splitmix64(base ^ self.seed);
        let b = splitmix64(base ^ self.seed.wrapping_add(0xA5A5_A5A5)) | 1;
        let l = self.counters as u64;
        (0..u64::from(self.hashes)).map(move |i| (a.wrapping_add(i.wrapping_mul(b)) % l) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_deterministic_and_in_range() {
        let plan = IndexPlan {
            counters: 1000,
            hashes: 4,
            seed: 7,
        };
        let a: Vec<usize> = plan.indices(b"key").collect();
        let b: Vec<usize> = plan.indices(b"key").collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&i| i < 1000));
    }

    #[test]
    fn different_keys_touch_different_indices() {
        let plan = IndexPlan {
            counters: 1 << 20,
            hashes: 4,
            seed: 0,
        };
        let a: Vec<usize> = plan.indices(b"alpha").collect();
        let b: Vec<usize> = plan.indices(b"beta").collect();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_changes_the_function_family() {
        let p1 = IndexPlan {
            counters: 1 << 16,
            hashes: 4,
            seed: 1,
        };
        let p2 = IndexPlan {
            counters: 1 << 16,
            hashes: 4,
            seed: 2,
        };
        let a: Vec<usize> = p1.indices(b"key").collect();
        let b: Vec<usize> = p2.indices(b"key").collect();
        assert_ne!(a, b);
    }
}
