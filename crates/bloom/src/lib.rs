//! Bloom-filter cache digests for smooth provisioning transitions.
//!
//! Section IV of the Proteus paper (ICDCS 2013) gives each cache
//! server a **counting Bloom filter** tracking its in-cache keys. At a
//! provisioning transition the digests are broadcast to the web tier,
//! which uses them (Algorithm 2) to decide whether a missing object is
//! still "hot" on its old server — migrating it on demand — or must be
//! fetched from the database.
//!
//! This crate provides:
//!
//! - [`CountingBloomFilter`] — `l` packed `b`-bit counters with `h`
//!   hash functions, supporting insert *and* delete (kept in sync with
//!   the cache's item link/unlink path), with a choice of
//!   [`OverflowPolicy`]: saturating (the safe system default) or
//!   wrapping (the behaviour Eq. 5's false-negative analysis models).
//! - [`BloomFilter`] — a plain bit-array filter, used as the compact
//!   broadcast form of a digest ("a few KB each", Section IV-A).
//! - [`DigestSnapshot`] — the serialized wire form exchanged via the
//!   paper's `SET_BLOOM_FILTER` / `BLOOM_FILTER` protocol keys.
//! - [`config`] — the Eq. 4 false-positive and Eq. 5 false-negative
//!   predictors and the Eq. 10 memory-optimal `(l, b)` solver, with an
//!   in-repo Lambert-W implementation.
//!
//! # Example
//!
//! ```
//! use proteus_bloom::{BloomConfig, CountingBloomFilter};
//!
//! // Configure for 10,000 keys, 4 hashes, 10^-4 error bounds — the
//! // paper's worked example, which lands on b = 3, ~150 KB.
//! let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
//! assert_eq!(cfg.counter_bits, 3);
//!
//! let mut digest = CountingBloomFilter::new(cfg);
//! digest.insert(b"Main_Page");
//! assert!(digest.contains(b"Main_Page"));
//! digest.remove(b"Main_Page");
//! assert!(!digest.contains(b"Main_Page"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod counting;
mod filter;
mod indexing;
mod snapshot;

pub use config::BloomConfig;
pub use counting::{CountingBloomFilter, OverflowPolicy};
pub use filter::BloomFilter;
pub use snapshot::{DigestSnapshot, SnapshotError};
