//! Bloom filter configuration: the Eq. 4/5 error-rate predictors and
//! the Eq. 10 memory-optimal `(l, b)` solver from Section IV-B.
//!
//! Table I symbols: `h` hash functions, `κ` inserted keys, `l`
//! counters, `b` bits per counter.

/// A complete counting-Bloom-filter configuration.
///
/// Produced by [`BloomConfig::optimal`]; consumed by
/// [`CountingBloomFilter::new`](crate::CountingBloomFilter::new).
///
/// # Example
///
/// ```
/// use proteus_bloom::BloomConfig;
/// // The paper's worked example: κ = 10⁴, h = 4, p_p = p_n = 10⁻⁴
/// // yields b = 3 and ~150 KB ("l = 4×10⁵, b = 3 is more than
/// // enough, which takes about 150KB memory per digest").
/// let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
/// assert_eq!(cfg.counter_bits, 3);
/// assert!(cfg.counters <= 400_000);
/// assert!(cfg.memory_bytes() < 160 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BloomConfig {
    /// `l`: number of counters.
    pub counters: usize,
    /// `b`: bits per counter (1..=16).
    pub counter_bits: u32,
    /// `h`: number of hash functions.
    pub hashes: u32,
    /// Seed for the hash family.
    pub seed: u64,
}

impl BloomConfig {
    /// A configuration with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `counters == 0`, `hashes == 0`, or
    /// `counter_bits ∉ 1..=16`.
    #[must_use]
    pub fn new(counters: usize, counter_bits: u32, hashes: u32) -> Self {
        assert!(counters > 0, "need at least one counter");
        assert!(hashes > 0, "need at least one hash function");
        assert!(
            (1..=16).contains(&counter_bits),
            "counter_bits must be in 1..=16, got {counter_bits}"
        );
        BloomConfig {
            counters,
            counter_bits,
            hashes,
            seed: 0,
        }
    }

    /// Sets the hash-family seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Solves Eq. 10: the minimum-memory `(l, b)` meeting false
    /// positive bound `pp` and false negative bound `pn` for `kappa`
    /// keys and `h` hash functions.
    ///
    /// `l` comes from the closed form
    /// `l = -κh / ln(1 - pp^{1/h})`; `b` is found by enumerating the
    /// small integer range `1..=16` exactly as the paper suggests
    /// ("enumerate all possible values of b and pick the optimal one").
    ///
    /// # Panics
    ///
    /// Panics if `kappa == 0`, `h == 0`, either bound is outside
    /// `(0, 1)`, or no `b ≤ 16` satisfies the false-negative bound.
    #[must_use]
    pub fn optimal(kappa: u64, h: u32, pp: f64, pn: f64) -> Self {
        assert!(kappa > 0, "need at least one key");
        assert!(h > 0, "need at least one hash function");
        assert!((0.0..1.0).contains(&pp) && pp > 0.0, "pp must be in (0,1)");
        assert!((0.0..1.0).contains(&pn) && pn > 0.0, "pn must be in (0,1)");
        let l = min_counters_for_fp(kappa, h, pp);
        let b = (1..=16u32)
            .find(|&b| false_negative_bound(l, b, h, kappa) <= pn)
            .expect("no counter width up to 16 bits meets the false-negative bound");
        BloomConfig::new(l, b, h)
    }

    /// Total digest memory in bits (`l · b`).
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        self.counters as u64 * u64::from(self.counter_bits)
    }

    /// Total digest memory in bytes, rounded up.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bits().div_ceil(8)
    }

    /// Memory of the *broadcast* form (1 bit per counter), in bytes.
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        (self.counters as u64).div_ceil(8)
    }
}

/// Eq. 4: predicted false-positive rate
/// `(1 - e^{-κh/l})^h` after inserting `kappa` distinct keys.
#[must_use]
pub fn false_positive_rate(l: usize, h: u32, kappa: u64) -> f64 {
    let exponent = -(kappa as f64) * f64::from(h) / l as f64;
    (1.0 - exponent.exp()).powi(h as i32)
}

/// Eq. 5: upper bound on the probability that *any* counter reaches
/// `2^b` (and may then underflow to a false negative):
/// `l · (e κ h / (2^b l))^{2^b}`.
#[must_use]
pub fn false_negative_bound(l: usize, b: u32, h: u32, kappa: u64) -> f64 {
    let two_b = 2f64.powi(b as i32);
    let base = std::f64::consts::E * kappa as f64 * f64::from(h) / (two_b * l as f64);
    // Guard against overflow for tiny bases raised to large powers.
    let log = (l as f64).ln() + two_b * base.ln();
    log.exp()
}

/// The smallest `l` with `false_positive_rate(l, h, κ) ≤ pp`
/// (the closed form `l = -κh / ln(1 - pp^{1/h})`, rounded up).
#[must_use]
pub fn min_counters_for_fp(kappa: u64, h: u32, pp: f64) -> usize {
    let denominator = (1.0 - pp.powf(1.0 / f64::from(h))).ln();
    let l = -(kappa as f64) * f64::from(h) / denominator;
    l.ceil() as usize
}

/// The principal branch of the Lambert W function (`W(x)·e^{W(x)} = x`)
/// for `x ≥ -1/e`, via Halley iteration.
///
/// Used by the paper's closed-form expression for the optimal counter
/// width (Eq. 10); the crate's solver enumerates `b` instead, but the
/// function is exposed so the closed form can be cross-checked.
///
/// # Panics
///
/// Panics if `x < -1/e` (outside the principal branch's domain).
#[must_use]
pub fn lambert_w(x: f64) -> f64 {
    assert!(
        x >= -1.0 / std::f64::consts::E - 1e-12,
        "lambert_w defined for x >= -1/e, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess: ln(1+x) works well for x > 0; near the branch
    // point use the series around -1/e.
    let mut w = if x > 0.0 {
        x.ln_1p() * 0.75
    } else {
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).max(0.0).sqrt();
        -1.0 + p
    };
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        if f == 0.0 {
            return w;
        }
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        if !denom.is_finite() || denom == 0.0 {
            return w;
        }
        let next = w - f / denom;
        if (next - w).abs() <= 1e-14 * (1.0 + next.abs()) {
            return next;
        }
        w = next;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambert_w_identity_holds() {
        for x in [-0.3, -0.1, 0.0, 0.5, 1.0, std::f64::consts::E, 10.0, 1e6] {
            let w = lambert_w(x);
            assert!(
                (w * w.exp() - x).abs() <= 1e-9 * (1.0 + x.abs()),
                "x={x} w={w}"
            );
        }
    }

    #[test]
    fn lambert_w_known_values() {
        assert!((lambert_w(std::f64::consts::E) - 1.0).abs() < 1e-12);
        assert!(lambert_w(0.0).abs() < 1e-12);
        // W(-1/e) = -1 at the branch point.
        let w = lambert_w(-1.0 / std::f64::consts::E);
        assert!((w + 1.0).abs() < 1e-5, "w={w}");
    }

    #[test]
    #[should_panic(expected = "lambert_w defined")]
    fn lambert_w_rejects_below_branch_point() {
        let _ = lambert_w(-1.0);
    }

    #[test]
    fn paper_worked_example_matches() {
        // §IV-B: (κ=10⁴, h=4, pp=pn=10⁻⁴) → (l≈4×10⁵, b=3), ~150 KB.
        let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
        assert_eq!(cfg.counter_bits, 3);
        assert!(
            (350_000..=400_000).contains(&cfg.counters),
            "l = {}",
            cfg.counters
        );
        let kb = cfg.memory_bytes() as f64 / 1024.0;
        assert!((130.0..=155.0).contains(&kb), "{kb} KB");
    }

    #[test]
    fn eq4_matches_textbook_values() {
        // With l = 10κ and h = 4: (1 - e^{-0.4})^4 ≈ 0.0118.
        let fp = false_positive_rate(100_000, 4, 10_000);
        assert!((fp - 0.01181).abs() < 0.0005, "fp {fp}");
        // More counters, lower rate.
        assert!(false_positive_rate(200_000, 4, 10_000) < fp);
    }

    #[test]
    fn eq5_decreases_in_b_and_l() {
        let base = false_negative_bound(100_000, 2, 4, 10_000);
        assert!(false_negative_bound(100_000, 3, 4, 10_000) < base);
        assert!(false_negative_bound(200_000, 2, 4, 10_000) < base);
    }

    #[test]
    fn min_counters_satisfies_the_bound_tightly() {
        for (kappa, h, pp) in [
            (10_000u64, 4u32, 1e-4),
            (1_000, 2, 1e-2),
            (100_000, 6, 1e-6),
        ] {
            let l = min_counters_for_fp(kappa, h, pp);
            assert!(false_positive_rate(l, h, kappa) <= pp * 1.0001);
            // One less counter (scaled) should violate the bound.
            assert!(false_positive_rate(l * 99 / 100, h, kappa) > pp);
        }
    }

    #[test]
    fn optimal_config_meets_both_bounds() {
        for (kappa, h, pp, pn) in [
            (10_000u64, 4u32, 1e-4, 1e-4),
            (2_560_000, 4, 1e-3, 1e-3),
            (500, 2, 1e-2, 1e-5),
        ] {
            let cfg = BloomConfig::optimal(kappa, h, pp, pn);
            assert!(false_positive_rate(cfg.counters, h, kappa) <= pp * 1.0001);
            assert!(false_negative_bound(cfg.counters, cfg.counter_bits, h, kappa) <= pn);
        }
    }

    #[test]
    fn closed_form_b_agrees_with_enumeration() {
        // Eq. 10's closed form (via Lambert W) should land within one
        // bit of the enumerated optimum.
        let kappa = 10_000u64;
        let h = 4u32;
        let pn = 1e-4f64;
        let l = min_counters_for_fp(kappa, h, 1e-4) as f64;
        let beta = std::f64::consts::E * kappa as f64 * f64::from(h) / l;
        let gamma = pn / l;
        let closed = (beta * (lambert_w(-gamma.ln() / beta)).exp()).ln() / 2f64.ln();
        let enumerated = BloomConfig::optimal(kappa, h, 1e-4, pn).counter_bits;
        assert!(
            (closed.ceil() as i64 - i64::from(enumerated)).abs() <= 1,
            "closed {closed} vs enumerated {enumerated}"
        );
    }

    #[test]
    fn snapshot_is_smaller_than_digest() {
        let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
        assert!(
            cfg.snapshot_bytes() * u64::from(cfg.counter_bits) == cfg.memory_bytes()
                || cfg.snapshot_bytes() < cfg.memory_bytes()
        );
        assert!(cfg.snapshot_bytes() < cfg.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "pp must be in (0,1)")]
    fn optimal_rejects_bad_bounds() {
        let _ = BloomConfig::optimal(100, 4, 0.0, 0.5);
    }
}
