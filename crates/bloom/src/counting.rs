//! The counting Bloom filter used as each cache server's digest.

use std::fmt;

use crate::config::BloomConfig;
use crate::filter::BloomFilter;
use crate::indexing::IndexPlan;

/// What to do when a `b`-bit counter would overflow or underflow.
///
/// The paper's Eq. 5 analyzes the *wrapping* behaviour, where an
/// overflowed counter can later underflow through zero and cause false
/// negatives. Production deployments prefer *saturating* counters: a
/// counter that reaches its maximum sticks there (never decremented),
/// trading a few extra false positives for **zero**
/// overflow-induced false negatives. Both are implemented so the Fig. 8
/// experiment can measure the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowPolicy {
    /// Counters stick at `2^b - 1`; sticky counters are never
    /// decremented (no false negatives; slightly higher false
    /// positives). The system default.
    #[default]
    Saturate,
    /// Counters wrap modulo `2^b` — the model behind Eq. 5's
    /// false-negative bound.
    Wrap,
}

/// A counting Bloom filter: `l` packed `b`-bit counters and `h` hash
/// functions, supporting insertion, deletion, and membership queries.
///
/// In Proteus each cache server keeps one of these in sync with its
/// contents: the analogue of the paper's modified memcached, which
/// inserts into the digest from `do_item_link` and removes from
/// `do_item_unlink`.
///
/// # Example
///
/// ```
/// use proteus_bloom::{BloomConfig, CountingBloomFilter};
///
/// let mut f = CountingBloomFilter::new(BloomConfig::new(1 << 16, 4, 4));
/// f.insert(b"page:42");
/// assert!(f.contains(b"page:42"));
/// f.remove(b"page:42");
/// assert!(!f.contains(b"page:42"));
/// ```
#[derive(Clone)]
pub struct CountingBloomFilter {
    config: BloomConfig,
    policy: OverflowPolicy,
    words: Vec<u64>,
    items: u64,
    overflows: u64,
}

impl CountingBloomFilter {
    /// Creates an empty filter with saturating counters.
    #[must_use]
    pub fn new(config: BloomConfig) -> Self {
        Self::with_policy(config, OverflowPolicy::Saturate)
    }

    /// Creates an empty filter with an explicit overflow policy.
    #[must_use]
    pub fn with_policy(config: BloomConfig, policy: OverflowPolicy) -> Self {
        let total_bits = config.counters as u64 * u64::from(config.counter_bits);
        // One spare word so two-word reads at the tail never bounds-check.
        let words = (total_bits.div_ceil(64) + 1) as usize;
        CountingBloomFilter {
            config,
            policy,
            words: vec![0; words],
            items: 0,
            overflows: 0,
        }
    }

    /// The filter's configuration.
    #[must_use]
    pub fn config(&self) -> BloomConfig {
        self.config
    }

    /// The overflow policy in effect.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Net number of items inserted (inserts minus removes).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.items
    }

    /// Whether no items are currently tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// How many counter increments hit the counter maximum so far
    /// (saturations or wraps, depending on policy).
    #[must_use]
    pub fn overflow_events(&self) -> u64 {
        self.overflows
    }

    fn plan(&self) -> IndexPlan {
        IndexPlan {
            counters: self.config.counters,
            hashes: self.config.hashes,
            seed: self.config.seed,
        }
    }

    fn counter_max(&self) -> u64 {
        (1u64 << self.config.counter_bits) - 1
    }

    fn get_counter(&self, i: usize) -> u64 {
        let b = u64::from(self.config.counter_bits);
        let bit = i as u64 * b;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = self.counter_max();
        if off as u64 + b <= 64 {
            (self.words[word] >> off) & mask
        } else {
            let lo = self.words[word] >> off;
            let hi = self.words[word + 1] << (64 - off);
            (lo | hi) & mask
        }
    }

    fn set_counter(&mut self, i: usize, value: u64) {
        let b = u64::from(self.config.counter_bits);
        debug_assert!(value <= self.counter_max());
        let bit = i as u64 * b;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = self.counter_max();
        if off as u64 + b <= 64 {
            self.words[word] &= !(mask << off);
            self.words[word] |= value << off;
        } else {
            let low_bits = 64 - off;
            self.words[word] &= !(mask << off);
            self.words[word] |= value << off;
            self.words[word + 1] &= !(mask >> low_bits);
            self.words[word + 1] |= value >> low_bits;
        }
    }

    /// Inserts a key (the `do_item_link` path).
    pub fn insert(&mut self, key: &[u8]) {
        let plan = self.plan();
        let max = self.counter_max();
        let indices: Vec<usize> = plan.indices(key).collect();
        for i in indices {
            let c = self.get_counter(i);
            if c == max {
                self.overflows += 1;
                match self.policy {
                    OverflowPolicy::Saturate => {}
                    OverflowPolicy::Wrap => self.set_counter(i, 0),
                }
            } else {
                self.set_counter(i, c + 1);
            }
        }
        self.items += 1;
    }

    /// Removes a key (the `do_item_unlink` path).
    ///
    /// The caller must only remove keys it previously inserted — in
    /// Proteus "the deletion from digest is only triggered by the
    /// deletion from Memcached", which knows its contents exactly, so
    /// deleting an absent element never happens. A zero counter is
    /// left at zero; with [`OverflowPolicy::Wrap`] it wraps to the
    /// maximum (modelling Eq. 5's underflow).
    pub fn remove(&mut self, key: &[u8]) {
        let plan = self.plan();
        let max = self.counter_max();
        let indices: Vec<usize> = plan.indices(key).collect();
        for i in indices {
            let c = self.get_counter(i);
            match (c, self.policy) {
                (0, OverflowPolicy::Saturate) => {}
                (0, OverflowPolicy::Wrap) => self.set_counter(i, max),
                (c, OverflowPolicy::Saturate) if c == max => {
                    // Sticky: the true count is unknown, so never
                    // decrement a saturated counter.
                }
                (c, _) => self.set_counter(i, c - 1),
            }
        }
        self.items = self.items.saturating_sub(1);
    }

    /// Membership query: `true` if every counter for `key` is nonzero.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.plan().indices(key).all(|i| self.get_counter(i) != 0)
    }

    /// Estimates how many distinct keys are in the filter from its
    /// zero-counter fraction: `-l/h · ln(z/l)` (the classic Bloom
    /// cardinality estimator; Swamidass & Baldi 2007). Useful for
    /// digest-based remote statistics — a web server can size a
    /// transition from digests alone, without a stats round-trip.
    ///
    /// Returns `None` when no counter is zero (the filter is beyond
    /// estimation range).
    #[must_use]
    pub fn estimate_cardinality(&self) -> Option<f64> {
        let zeros = (0..self.config.counters)
            .filter(|&i| self.get_counter(i) == 0)
            .count();
        if zeros == 0 {
            return None;
        }
        let l = self.config.counters as f64;
        Some(-(l / f64::from(self.config.hashes)) * (zeros as f64 / l).ln())
    }

    /// Collapses the counters to a plain bit-array [`BloomFilter`] —
    /// the compact broadcast form of the digest (Section IV-A).
    ///
    /// Membership answers of the snapshot equal the counting filter's
    /// at snapshot time.
    #[must_use]
    pub fn snapshot(&self) -> BloomFilter {
        let mut bits = BloomFilter::new(self.config);
        for i in 0..self.config.counters {
            if self.get_counter(i) != 0 {
                bits.set_raw_bit(i);
            }
        }
        bits
    }

    /// Clears all counters.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.items = 0;
        self.overflows = 0;
    }
}

impl fmt::Debug for CountingBloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CountingBloomFilter")
            .field("counters", &self.config.counters)
            .field("counter_bits", &self.config.counter_bits)
            .field("hashes", &self.config.hashes)
            .field("policy", &self.policy)
            .field("items", &self.items)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BloomConfig {
        BloomConfig::new(1 << 14, 3, 4)
    }

    #[test]
    fn insert_then_contains() {
        let mut f = CountingBloomFilter::new(small());
        for i in 0..1000u64 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..1000u64 {
            assert!(f.contains(&i.to_le_bytes()), "key {i}");
        }
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn remove_restores_absence() {
        let mut f = CountingBloomFilter::new(small());
        for i in 0..500u64 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..250u64 {
            f.remove(&i.to_le_bytes());
        }
        // Removed keys are (almost always) gone; retained keys never are.
        for i in 250..500u64 {
            assert!(f.contains(&i.to_le_bytes()), "retained {i}");
        }
        let still_present = (0..250u64).filter(|i| f.contains(&i.to_le_bytes())).count();
        assert!(
            still_present < 10,
            "only false positives may remain: {still_present}"
        );
        assert_eq!(f.len(), 250);
    }

    #[test]
    fn no_false_negatives_with_saturation() {
        // Tiny 1-bit counters overflow immediately; saturation must
        // still never produce a false negative for present keys.
        let cfg = BloomConfig::new(256, 1, 4);
        let mut f = CountingBloomFilter::with_policy(cfg, OverflowPolicy::Saturate);
        for i in 0..200u64 {
            f.insert(&i.to_le_bytes());
        }
        assert!(f.overflow_events() > 0, "test must exercise overflow");
        for i in 0..200u64 {
            assert!(f.contains(&i.to_le_bytes()), "key {i}");
        }
    }

    #[test]
    fn wrap_policy_can_false_negative() {
        // 1-bit wrapping counters: inserting the same slot twice wraps
        // to zero — the failure mode Eq. 5 bounds.
        let cfg = BloomConfig::new(64, 1, 2);
        let mut f = CountingBloomFilter::with_policy(cfg, OverflowPolicy::Wrap);
        let mut saw_false_negative = false;
        for i in 0..64u64 {
            f.insert(&i.to_le_bytes());
            if !f.contains(&i.to_le_bytes()) {
                saw_false_negative = true;
            }
        }
        assert!(saw_false_negative, "wrapping must eventually lose a key");
    }

    #[test]
    fn saturating_remove_keeps_sticky_counters() {
        let cfg = BloomConfig::new(16, 1, 1);
        let mut f = CountingBloomFilter::with_policy(cfg, OverflowPolicy::Saturate);
        // Two keys share a counter with high probability at l=16... use
        // the same key twice to force it.
        f.insert(b"k");
        f.insert(b"k"); // saturates at 1
        f.remove(b"k"); // sticky: stays 1
        assert!(f.contains(b"k"), "sticky counter preserves membership");
    }

    #[test]
    fn counter_packing_survives_word_boundaries() {
        // b=3 over 64-bit words: counters regularly straddle words.
        let cfg = BloomConfig::new(1000, 3, 1);
        let mut f = CountingBloomFilter::new(cfg);
        for i in 0..1000usize {
            f.set_counter(i, (i % 8) as u64);
        }
        for i in 0..1000usize {
            assert_eq!(f.get_counter(i), (i % 8) as u64, "counter {i}");
        }
    }

    #[test]
    fn counter_packing_all_widths() {
        for b in 1..=16u32 {
            let cfg = BloomConfig::new(257, b, 1);
            let mut f = CountingBloomFilter::new(cfg);
            let max = (1u64 << b) - 1;
            for i in 0..257usize {
                f.set_counter(i, (i as u64 * 7 + 3) & max);
            }
            for i in 0..257usize {
                assert_eq!(f.get_counter(i), (i as u64 * 7 + 3) & max, "b={b} i={i}");
            }
        }
    }

    #[test]
    fn snapshot_membership_matches_counting_filter() {
        let mut f = CountingBloomFilter::new(small());
        for i in 0..2000u64 {
            f.insert(&i.to_le_bytes());
        }
        for i in 500..700u64 {
            f.remove(&i.to_le_bytes());
        }
        let snap = f.snapshot();
        for i in 0..3000u64 {
            let key = i.to_le_bytes();
            assert_eq!(
                f.contains(&key),
                snap.contains(&key),
                "divergence at key {i}"
            );
        }
    }

    #[test]
    fn clear_empties_everything() {
        let mut f = CountingBloomFilter::new(small());
        f.insert(b"a");
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(b"a"));
        assert_eq!(f.overflow_events(), 0);
    }

    #[test]
    fn cardinality_estimate_is_accurate() {
        let cfg = BloomConfig::new(1 << 16, 4, 4);
        let mut f = CountingBloomFilter::new(cfg);
        for kappa in [100u64, 1_000, 5_000] {
            f.clear();
            for i in 0..kappa {
                f.insert(&i.to_le_bytes());
            }
            let est = f.estimate_cardinality().expect("in range");
            let err = (est - kappa as f64).abs() / kappa as f64;
            assert!(err < 0.05, "κ={kappa}: estimated {est}");
        }
        // Deletions are reflected.
        for i in 0..2_500u64 {
            f.remove(&i.to_le_bytes());
        }
        let est = f.estimate_cardinality().unwrap();
        assert!(
            (est - 2_500.0).abs() / 2_500.0 < 0.05,
            "after removes {est}"
        );
    }

    #[test]
    fn cardinality_saturates_to_none() {
        // A tiny filter crammed full has no zero counters left.
        let cfg = BloomConfig::new(32, 4, 4);
        let mut f = CountingBloomFilter::new(cfg);
        for i in 0..200u64 {
            f.insert(&i.to_le_bytes());
        }
        assert_eq!(f.estimate_cardinality(), None);
    }

    #[test]
    fn measured_false_positive_rate_tracks_eq4() {
        use crate::config::false_positive_rate;
        let cfg = BloomConfig::new(40_000, 4, 4);
        let mut f = CountingBloomFilter::new(cfg);
        let kappa = 4_000u64;
        for i in 0..kappa {
            f.insert(&i.to_le_bytes());
        }
        let probes = 100_000u64;
        let fps = (kappa..kappa + probes)
            .filter(|i| f.contains(&i.to_le_bytes()))
            .count();
        let measured = fps as f64 / probes as f64;
        let predicted = false_positive_rate(cfg.counters, cfg.hashes, kappa);
        assert!(
            (measured - predicted).abs() < predicted * 0.35 + 2e-4,
            "measured {measured}, Eq.4 predicts {predicted}"
        );
    }
}
