//! Plain bit-array Bloom filter: the broadcast form of a digest.

use std::fmt;

use crate::config::BloomConfig;
use crate::indexing::IndexPlan;

/// A standard Bloom filter over `l` bits with `h` hash functions.
///
/// Web servers hold one of these per (draining) cache server: the
/// [`CountingBloomFilter::snapshot`](crate::CountingBloomFilter::snapshot)
/// of that server's digest, answering "is this key hot over there?"
/// during a provisioning transition (Algorithm 2 line 6).
///
/// # Example
///
/// ```
/// use proteus_bloom::{BloomConfig, BloomFilter};
/// let mut f = BloomFilter::new(BloomConfig::new(1 << 16, 4, 4));
/// f.insert(b"page:7");
/// assert!(f.contains(b"page:7"));
/// assert!(!f.contains(b"page:8"));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BloomFilter {
    config: BloomConfig,
    words: Vec<u64>,
    set_bits: usize,
}

impl BloomFilter {
    /// Creates an empty filter. Only `counters`, `hashes`, and `seed`
    /// of the configuration are used; `counter_bits` is normalized to 1
    /// (a bit filter has no counter width), so filters from different
    /// counting-filter widths compare equal when their bits agree.
    #[must_use]
    pub fn new(mut config: BloomConfig) -> Self {
        config.counter_bits = 1;
        let words = (config.counters as u64).div_ceil(64) as usize;
        BloomFilter {
            config,
            words: vec![0; words],
            set_bits: 0,
        }
    }

    /// The filter's configuration.
    #[must_use]
    pub fn config(&self) -> BloomConfig {
        self.config
    }

    /// Number of bits set.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        self.set_bits
    }

    /// Fill factor in `[0, 1]`.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.set_bits as f64 / self.config.counters as f64
    }

    fn plan(&self) -> IndexPlan {
        IndexPlan {
            counters: self.config.counters,
            hashes: self.config.hashes,
            seed: self.config.seed,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let plan = self.plan();
        let indices: Vec<usize> = plan.indices(key).collect();
        for i in indices {
            self.set_raw_bit(i);
        }
    }

    /// Membership query (false positives possible, false negatives not).
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.plan()
            .indices(key)
            .all(|i| self.words[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Sets bit `i` directly; used when collapsing a counting filter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub(crate) fn set_raw_bit(&mut self, i: usize) {
        assert!(i < self.config.counters, "bit {i} out of range");
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask == 0 {
            self.words[i / 64] |= mask;
            self.set_bits += 1;
        }
    }

    /// Estimates the number of distinct keys from the unset-bit
    /// fraction (`-l/h · ln(z/l)`), matching
    /// [`CountingBloomFilter::estimate_cardinality`](crate::CountingBloomFilter::estimate_cardinality)
    /// so web servers can size transitions from broadcast digests.
    /// Returns `None` if every bit is set.
    #[must_use]
    pub fn estimate_cardinality(&self) -> Option<f64> {
        let zeros = self.config.counters - self.set_bits;
        if zeros == 0 {
            return None;
        }
        let l = self.config.counters as f64;
        Some(-(l / f64::from(self.config.hashes)) * (zeros as f64 / l).ln())
    }

    /// The raw bit words (for serialization).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a filter from its configuration and raw words.
    ///
    /// # Panics
    ///
    /// Panics if `words` has the wrong length for the configuration.
    #[must_use]
    pub fn from_words(config: BloomConfig, words: Vec<u64>) -> Self {
        let expect = (config.counters as u64).div_ceil(64) as usize;
        assert_eq!(words.len(), expect, "word count mismatch");
        let set_bits = words.iter().map(|w| w.count_ones() as usize).sum();
        BloomFilter {
            config,
            words,
            set_bits,
        }
    }

    /// Whether `other` has the same dimensions and hashing (and thus
    /// can be meaningfully compared or combined with this filter).
    #[must_use]
    pub fn same_shape(&self, other: &BloomFilter) -> bool {
        self.config.counters == other.config.counters
            && self.config.hashes == other.config.hashes
            && self.config.seed == other.config.seed
    }

    /// Unions `other` into this filter (bitwise OR). Because every key
    /// hashes identically in same-shape filters, the union answers
    /// `contains` exactly as if all keys had been inserted into one
    /// filter — this is how per-shard digests collapse into one
    /// server-wide digest.
    ///
    /// # Panics
    ///
    /// Panics if the filters differ in counters, hashes, or seed.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert!(
            self.same_shape(other),
            "cannot union differently-shaped filters: {:?} vs {:?}",
            self.config,
            other.config
        );
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.set_bits = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.set_bits = 0;
    }
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &self.config.counters)
            .field("hashes", &self.config.hashes)
            .field("set_bits", &self.set_bits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_ever() {
        let mut f = BloomFilter::new(BloomConfig::new(4096, 1, 4));
        for i in 0..2000u64 {
            f.insert(&i.to_le_bytes());
        }
        // Massively overloaded, yet every inserted key still answers yes.
        for i in 0..2000u64 {
            assert!(f.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn fill_ratio_and_set_bits_track_insertions() {
        let mut f = BloomFilter::new(BloomConfig::new(1 << 12, 1, 4));
        assert_eq!(f.set_bits(), 0);
        f.insert(b"one");
        assert!(f.set_bits() > 0 && f.set_bits() <= 4);
        assert!(f.fill_ratio() > 0.0 && f.fill_ratio() < 0.01);
    }

    #[test]
    fn words_roundtrip() {
        let mut f = BloomFilter::new(BloomConfig::new(1000, 1, 3));
        for i in 0..100u64 {
            f.insert(&i.to_le_bytes());
        }
        let rebuilt = BloomFilter::from_words(f.config(), f.words().to_vec());
        assert_eq!(rebuilt, f);
        assert_eq!(rebuilt.set_bits(), f.set_bits());
        for i in 0..200u64 {
            assert_eq!(
                rebuilt.contains(&i.to_le_bytes()),
                f.contains(&i.to_le_bytes())
            );
        }
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_validates_length() {
        let _ = BloomFilter::from_words(BloomConfig::new(1000, 1, 3), vec![0; 2]);
    }

    #[test]
    fn cardinality_matches_counting_twin() {
        use crate::CountingBloomFilter;
        let cfg = BloomConfig::new(1 << 14, 4, 4);
        let mut counting = CountingBloomFilter::new(cfg);
        for i in 0..2_000u64 {
            counting.insert(&i.to_le_bytes());
        }
        let snap = counting.snapshot();
        let a = counting.estimate_cardinality().unwrap();
        let b = snap.estimate_cardinality().unwrap();
        assert!((a - b).abs() < 1e-9, "counting {a} vs snapshot {b}");
        assert!((b - 2_000.0).abs() / 2_000.0 < 0.05);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(BloomConfig::new(512, 1, 2));
        f.insert(b"x");
        f.clear();
        assert!(!f.contains(b"x"));
        assert_eq!(f.set_bits(), 0);
    }
}
