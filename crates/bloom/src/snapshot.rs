//! Wire serialization of digest snapshots.
//!
//! The paper reserves the keys `SET_BLOOM_FILTER` (take a snapshot of
//! the digest) and `BLOOM_FILTER` (retrieve the snapshot as ordinary
//! value bytes) in its modified memcached, so digests travel over the
//! unmodified cache protocol. [`DigestSnapshot`] is the byte format
//! those retrievals carry in this reproduction.

use std::error::Error;
use std::fmt;

use crate::config::BloomConfig;
use crate::filter::BloomFilter;

/// Magic prefix identifying a serialized digest (`"PBF1"`).
const MAGIC: [u8; 4] = *b"PBF1";

/// A serializable snapshot of one cache server's digest.
///
/// # Example
///
/// ```
/// use proteus_bloom::{BloomConfig, CountingBloomFilter, DigestSnapshot};
///
/// let mut digest = CountingBloomFilter::new(BloomConfig::new(1 << 12, 4, 4));
/// digest.insert(b"hot-page");
/// let bytes = DigestSnapshot::from_filter(&digest.snapshot()).to_bytes();
/// let restored = DigestSnapshot::from_bytes(&bytes).unwrap().into_filter();
/// assert!(restored.contains(b"hot-page"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestSnapshot {
    filter: BloomFilter,
}

/// Errors decoding a serialized digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte buffer is shorter than its header or payload claims.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The magic prefix did not match.
    BadMagic,
    /// A header field held an impossible value.
    BadHeader(&'static str),
    /// Two snapshots could not be merged because their filters differ
    /// in counters, hashes, or seed.
    ShapeMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: need {needed} bytes, got {got}")
            }
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::BadHeader(field) => write!(f, "invalid snapshot header field: {field}"),
            SnapshotError::ShapeMismatch => {
                write!(f, "cannot merge snapshots with different filter shapes")
            }
        }
    }
}

impl Error for SnapshotError {}

impl DigestSnapshot {
    /// Wraps an existing broadcast filter.
    #[must_use]
    pub fn from_filter(filter: &BloomFilter) -> Self {
        DigestSnapshot {
            filter: filter.clone(),
        }
    }

    /// The wrapped filter.
    #[must_use]
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// Unwraps into the filter.
    #[must_use]
    pub fn into_filter(self) -> BloomFilter {
        self.filter
    }

    /// Serializes to the wire format:
    /// `magic(4) ‖ counters(u64 LE) ‖ hashes(u32 LE) ‖ seed(u64 LE) ‖ words(u64 LE …)`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let cfg = self.filter.config();
        let words = self.filter.words();
        let mut out = Vec::with_capacity(4 + 8 + 4 + 8 + words.len() * 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(cfg.counters as u64).to_le_bytes());
        out.extend_from_slice(&cfg.hashes.to_le_bytes());
        out.extend_from_slice(&cfg.seed.to_le_bytes());
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the buffer is truncated, has the
    /// wrong magic, or declares impossible dimensions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        const HEADER: usize = 4 + 8 + 4 + 8;
        if bytes.len() < HEADER {
            return Err(SnapshotError::Truncated {
                needed: HEADER,
                got: bytes.len(),
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let counters = u64::from_le_bytes(bytes[4..12].try_into().expect("sized"));
        let hashes = u32::from_le_bytes(bytes[12..16].try_into().expect("sized"));
        let seed = u64::from_le_bytes(bytes[16..24].try_into().expect("sized"));
        if counters == 0 || counters > (1 << 40) {
            return Err(SnapshotError::BadHeader("counters"));
        }
        if hashes == 0 || hashes > 64 {
            return Err(SnapshotError::BadHeader("hashes"));
        }
        let word_count = counters.div_ceil(64) as usize;
        let needed = HEADER + word_count * 8;
        if bytes.len() < needed {
            return Err(SnapshotError::Truncated {
                needed,
                got: bytes.len(),
            });
        }
        let words: Vec<u64> = bytes[HEADER..needed]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        // `counter_bits` is irrelevant to a bit filter; carry 1.
        let cfg = BloomConfig::new(counters as usize, 1, hashes).with_seed(seed);
        Ok(DigestSnapshot {
            filter: BloomFilter::from_words(cfg, words),
        })
    }

    /// Merges `other` into this snapshot (bitwise union of the
    /// filters). Each key lives in exactly one cache shard, so the
    /// union of same-shape per-shard snapshots is identical to the
    /// snapshot an unsharded digest of the same contents would give.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::ShapeMismatch`] if the filters differ
    /// in counters, hashes, or seed.
    pub fn merge(&mut self, other: &DigestSnapshot) -> Result<(), SnapshotError> {
        if !self.filter.same_shape(&other.filter) {
            return Err(SnapshotError::ShapeMismatch);
        }
        self.filter.union_with(&other.filter);
        Ok(())
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        4 + 8 + 4 + 8 + self.filter.words().len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingBloomFilter;

    fn sample_digest() -> BloomFilter {
        let mut c = CountingBloomFilter::new(BloomConfig::new(5000, 4, 4).with_seed(11));
        for i in 0..800u64 {
            c.insert(&i.to_le_bytes());
        }
        c.snapshot()
    }

    #[test]
    fn roundtrip_preserves_membership_and_config() {
        let f = sample_digest();
        let bytes = DigestSnapshot::from_filter(&f).to_bytes();
        let restored = DigestSnapshot::from_bytes(&bytes).unwrap().into_filter();
        assert_eq!(restored.config().counters, 5000);
        assert_eq!(restored.config().hashes, 4);
        assert_eq!(restored.config().seed, 11);
        for i in 0..1600u64 {
            assert_eq!(
                restored.contains(&i.to_le_bytes()),
                f.contains(&i.to_le_bytes()),
                "key {i}"
            );
        }
    }

    #[test]
    fn encoded_len_matches_reality() {
        let f = sample_digest();
        let snap = DigestSnapshot::from_filter(&f);
        assert_eq!(snap.to_bytes().len(), snap.encoded_len());
    }

    #[test]
    fn snapshot_is_a_few_kilobytes() {
        // Section IV-A claims digests are "a few KB each" at realistic
        // settings; check the broadcast form of the paper's example
        // config is ~48 KB (l = 380k bits).
        let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
        let filter = BloomFilter::new(cfg);
        let snap = DigestSnapshot::from_filter(&filter);
        let kb = snap.encoded_len() as f64 / 1024.0;
        assert!(kb < 50.0, "snapshot is {kb} KB");
        // 3-8x smaller than the full counting digest.
        assert!((snap.encoded_len() as u64) < cfg.memory_bytes());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            DigestSnapshot::from_bytes(b"xx"),
            Err(SnapshotError::Truncated { needed: 24, got: 2 })
        );
        let mut bytes = DigestSnapshot::from_filter(&sample_digest()).to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            DigestSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        );
        let mut ok = DigestSnapshot::from_filter(&sample_digest()).to_bytes();
        ok.truncate(30);
        assert!(matches!(
            DigestSnapshot::from_bytes(&ok),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_impossible_headers() {
        let mut bytes = vec![];
        bytes.extend_from_slice(b"PBF1");
        bytes.extend_from_slice(&0u64.to_le_bytes()); // zero counters
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            DigestSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadHeader("counters"))
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = SnapshotError::Truncated { needed: 10, got: 2 };
        assert!(e.to_string().contains("10"));
        assert!(!SnapshotError::BadMagic.to_string().is_empty());
        assert!(!SnapshotError::ShapeMismatch.to_string().is_empty());
    }

    #[test]
    fn merge_unions_membership() {
        let cfg = BloomConfig::new(5000, 4, 4).with_seed(11);
        let mut a = CountingBloomFilter::new(cfg);
        let mut b = CountingBloomFilter::new(cfg);
        for i in 0..300u64 {
            a.insert(&i.to_le_bytes());
        }
        for i in 300..600u64 {
            b.insert(&i.to_le_bytes());
        }
        let mut merged = DigestSnapshot::from_filter(&a.snapshot());
        merged
            .merge(&DigestSnapshot::from_filter(&b.snapshot()))
            .unwrap();
        for i in 0..600u64 {
            assert!(merged.filter().contains(&i.to_le_bytes()), "key {i}");
        }
    }

    #[test]
    fn merge_equals_unsharded_digest() {
        // Partition one key set across 4 "shards"; the union of the
        // shard snapshots must be bit-identical to a single digest of
        // all keys (each key lives in exactly one shard).
        let cfg = BloomConfig::new(5000, 4, 4).with_seed(7);
        let mut whole = CountingBloomFilter::new(cfg);
        let mut shards: Vec<CountingBloomFilter> =
            (0..4).map(|_| CountingBloomFilter::new(cfg)).collect();
        for i in 0..1000u64 {
            let key = i.to_le_bytes();
            whole.insert(&key);
            shards[(i % 4) as usize].insert(&key);
        }
        let mut merged = DigestSnapshot::from_filter(&shards[0].snapshot());
        for shard in &shards[1..] {
            merged
                .merge(&DigestSnapshot::from_filter(&shard.snapshot()))
                .unwrap();
        }
        assert_eq!(merged.filter(), &whole.snapshot());
    }

    #[test]
    fn merge_rejects_shape_mismatch() {
        let a = DigestSnapshot::from_filter(&BloomFilter::new(BloomConfig::new(5000, 4, 4)));
        let wrong_size =
            DigestSnapshot::from_filter(&BloomFilter::new(BloomConfig::new(4096, 4, 4)));
        let wrong_seed = DigestSnapshot::from_filter(&BloomFilter::new(
            BloomConfig::new(5000, 4, 4).with_seed(99),
        ));
        let mut m = a.clone();
        assert_eq!(m.merge(&wrong_size), Err(SnapshotError::ShapeMismatch));
        assert_eq!(m.merge(&wrong_seed), Err(SnapshotError::ShapeMismatch));
        assert_eq!(m, a, "failed merges must leave the snapshot untouched");
    }
}
