//! The web-tier cluster client: Algorithm 2 over live TCP servers,
//! degrading to the database when cache servers fail.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_bloom::BloomFilter;
use proteus_cache::SharedBytes;
use proteus_core::hot_key::{ReplicaRings, SpaceSaving, TwoChoices};
use proteus_obs::{
    trace_metrics, Counter, EventTracer, FetchClassKind, FetchLatencies, Gauge, Metric,
    MetricSource, TraceKind,
};
use proteus_ring::{hash::KeyHasher, PlacementStrategy, ServerId};
use proteus_store::ShardedStore;

use crate::client::{CacheClient, ClientConfig, ClientStats};
use crate::error::NetError;

/// The authoritative backing store a [`ClusterClient`] falls back to
/// when data is not in cache.
///
/// Implemented for [`ShardedStore`] out of the box; applications plug
/// in their own databases.
pub trait DbFallback {
    /// Fetches `key` from the authoritative store.
    ///
    /// # Errors
    ///
    /// Implementations surface their own transport failures as
    /// [`NetError`].
    fn fetch(&self, key: &[u8]) -> Result<Vec<u8>, NetError>;
}

impl DbFallback for Mutex<ShardedStore> {
    fn fetch(&self, key: &[u8]) -> Result<Vec<u8>, NetError> {
        Ok(self.lock().fetch(key))
    }
}

/// How a [`ClusterClient::fetch`] was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterFetch {
    /// Hit at the key's new-mapping server.
    Hit,
    /// Migrated on demand from the old server during a transition.
    Migrated,
    /// Fetched from the backing store (ordinary miss).
    Database,
    /// Fetched from the backing store because a cache server was
    /// unreachable: the paper's failure model — a dead cache reads as
    /// a miss, never as an outage. Counted separately so callers and
    /// benches can see failure-induced database load.
    Degraded,
    /// Fetched from the backing store after the old server's digest
    /// claimed the key but the old server missed: a Bloom-filter false
    /// positive (or a racing eviction on the departing server). The
    /// request pays one wasted cache round trip on top of the DB
    /// fetch, which is exactly the cost the paper's digest sizing
    /// trades against — so it gets its own class.
    FalsePositive,
    /// Hit at a non-home replica of a hot key: power-of-two-choices
    /// routing picked (or replica failover fell through to) a server
    /// other than the key's ring-0 owner. Only possible when the
    /// client was built with [`ClusterClient::connect_replicated`].
    ReplicaHit,
}

/// Maps the wire-level fetch classification onto the telemetry
/// registry's [`FetchClassKind`].
fn class_kind(class: ClusterFetch) -> FetchClassKind {
    match class {
        ClusterFetch::Hit => FetchClassKind::NewHit,
        ClusterFetch::Migrated => FetchClassKind::Migrated,
        ClusterFetch::Database => FetchClassKind::Database,
        ClusterFetch::Degraded => FetchClassKind::Degraded,
        ClusterFetch::FalsePositive => FetchClassKind::FalsePositive,
        ClusterFetch::ReplicaHit => FetchClassKind::ReplicaHit,
    }
}

/// Hot-key replication knobs for
/// [`ClusterClient::connect_replicated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotKeyConfig {
    /// Target number of distinct servers holding each hot key
    /// (including its home server). `1` disables replication.
    pub replicas: usize,
    /// Estimated fetch count at which a key is promoted to hot and
    /// replicated.
    pub hot_key_threshold: u64,
    /// Keys the space-saving sketch monitors; bounds detector memory.
    pub sketch_capacity: usize,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        HotKeyConfig {
            replicas: 2,
            hot_key_threshold: 64,
            sketch_capacity: 128,
        }
    }
}

/// Cumulative hot-key replication counters (see
/// [`ClusterClient::hot_key_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotKeyStats {
    /// Keys currently replicated (the hot-key gauge).
    pub replicated_keys: i64,
    /// Keys ever promoted to hot.
    pub promotions: u64,
    /// Replica invalidations issued by writes (one per key per
    /// non-home target server).
    pub invalidations: u64,
    /// Fetches served by a non-home replica
    /// ([`ClusterFetch::ReplicaHit`]).
    pub replica_hits: u64,
}

/// Per-server load estimate feeding the power-of-two-choices routing:
/// requests currently in flight plus an EWMA of recent get latency,
/// both maintained purely client-side.
#[derive(Debug, Default)]
struct ServerLoad {
    in_flight: AtomicU64,
    ewma_nanos: AtomicU64,
}

impl ServerLoad {
    /// A single comparable score: queue depth dominates, smoothed
    /// latency breaks ties between equally idle servers.
    fn score(&self) -> u64 {
        let in_flight = self.in_flight.load(Ordering::Relaxed);
        let ewma = self.ewma_nanos.load(Ordering::Relaxed);
        in_flight
            .saturating_add(1)
            .saturating_mul(ewma.saturating_add(1))
    }

    fn record(&self, elapsed_nanos: u64) {
        // EWMA with alpha = 1/4: old - old/4 + sample/4, relaxed (a
        // lost race just loses one smoothing step).
        let old = self.ewma_nanos.load(Ordering::Relaxed);
        self.ewma_nanos
            .store(old - old / 4 + elapsed_nanos / 4, Ordering::Relaxed);
    }
}

/// Everything the hot-key layer owns. Interior-mutable because
/// [`ClusterClient::fetch`] takes `&self`.
struct HotKeyState {
    config: HotKeyConfig,
    rings: ReplicaRings,
    sketch: Mutex<SpaceSaving>,
    /// Hot key → its distinct replica servers under the **current**
    /// active count, home server first. Recomputed against the new
    /// ring by `begin_transition`.
    replicated: Mutex<std::collections::HashMap<Vec<u8>, Vec<usize>>>,
    chooser: TwoChoices,
    loads: Vec<ServerLoad>,
    promotions: Counter,
    invalidations: Counter,
    hot_keys: Gauge,
}

/// Cumulative cluster-level fault counters (see
/// [`ClusterClient::fault_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Fetches served from the database because a cache server was
    /// unreachable ([`ClusterFetch::Degraded`]).
    pub degraded_fetches: u64,
    /// On-demand migrations skipped because the old-mapping server was
    /// unreachable during a transition.
    pub skipped_migrations: u64,
    /// Cache-install writes (the `set` after a DB fetch or migration)
    /// dropped because the target server was unreachable.
    pub dropped_installs: u64,
    /// Digest snapshots that could not be fetched at
    /// `begin_transition` (the affected server's keys fall through to
    /// the database instead of migrating).
    pub missing_digests: u64,
    /// Per-op retries summed over every server's client.
    pub retries: u64,
    /// Breaker trips summed over every server's client.
    pub breaker_trips: u64,
    /// Fast-fails summed over every server's client.
    pub fast_fails: u64,
}

#[derive(Debug, Default)]
struct AtomicClusterStats {
    degraded_fetches: AtomicU64,
    skipped_migrations: AtomicU64,
    dropped_installs: AtomicU64,
    missing_digests: AtomicU64,
}

/// The shape of an open (or just-closed) transition window: the
/// mapping it moved from/to and when the digest broadcast completed.
///
/// Returned by [`ClusterClient::transition_status`] while a window is
/// open and by [`ClusterClient::end_transition`] for the window it
/// closed, so a control loop can size drain timers off `since` and
/// log the from→to pair it actually actuated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionStatus {
    /// Active-server count under the old mapping.
    pub from: usize,
    /// Active-server count under the new mapping.
    pub to: usize,
    /// When the window opened (the digest broadcast finished and the
    /// mapping switched).
    pub since: Instant,
}

impl TransitionStatus {
    /// How long the window has been (or was) open.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.since.elapsed()
    }
}

/// A web server's view of the live cache cluster: one pooled client
/// per cache server, the placement strategy, the current and previous
/// active counts, and the digests broadcast at the last transition.
///
/// This is the TCP twin of [`proteus_core::Router`]: the same
/// Algorithm 2 decision tree, with real sockets underneath — plus the
/// failure model the paper's power policy demands. A power policy
/// turns cache servers off *mid-traffic*, so an unreachable server is
/// business as usual here: transport failures degrade to the
/// authoritative store ([`ClusterFetch::Degraded`]) instead of
/// erroring, and each server's [`CacheClient`] retries, reconnects,
/// and fails fast through its circuit breaker.
///
/// [`proteus_core::Router`]: https://docs.rs/proteus-core
pub struct ClusterClient {
    clients: Vec<CacheClient>,
    strategy: Box<dyn PlacementStrategy + Send + Sync>,
    hasher: KeyHasher,
    active: usize,
    previous_active: usize,
    digests: Vec<Option<BloomFilter>>,
    in_transition: bool,
    transition_since: Option<Instant>,
    stats: Arc<AtomicClusterStats>,
    fetches: Arc<FetchLatencies>,
    tracer: Arc<EventTracer>,
    hot: Option<HotKeyState>,
}

impl ClusterClient {
    /// Connects to every cache server (in provisioning order) with the
    /// default [`ClientConfig`] and starts with all of them active.
    ///
    /// # Errors
    ///
    /// Returns the first connection failure.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or its length differs from the
    /// strategy's `max_servers()`.
    pub fn connect(
        addrs: &[std::net::SocketAddr],
        strategy: Box<dyn PlacementStrategy + Send + Sync>,
    ) -> Result<ClusterClient, NetError> {
        ClusterClient::connect_with(addrs, strategy, ClientConfig::default())
    }

    /// [`connect`](Self::connect) with explicit per-server
    /// fault-tolerance tunables.
    ///
    /// # Errors
    ///
    /// Returns the first connection failure.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or its length differs from the
    /// strategy's `max_servers()`.
    pub fn connect_with(
        addrs: &[std::net::SocketAddr],
        strategy: Box<dyn PlacementStrategy + Send + Sync>,
        config: ClientConfig,
    ) -> Result<ClusterClient, NetError> {
        assert!(!addrs.is_empty(), "need at least one cache server");
        assert_eq!(
            addrs.len(),
            strategy.max_servers(),
            "strategy sized for a different cluster"
        );
        let clients = addrs
            .iter()
            .map(|&a| CacheClient::connect_with(a, config))
            .collect::<Result<Vec<_>, _>>()?;
        let tracer = Arc::new(EventTracer::default());
        for (i, client) in clients.iter().enumerate() {
            // One shared ring: breaker transitions interleave with the
            // cluster's own transition/migration events in seq order.
            client.attach_tracer(Arc::clone(&tracer), i as u32);
        }
        let n = clients.len();
        Ok(ClusterClient {
            clients,
            strategy,
            hasher: KeyHasher::default(),
            active: n,
            previous_active: n,
            digests: vec![None; n],
            in_transition: false,
            transition_since: None,
            stats: Arc::new(AtomicClusterStats::default()),
            fetches: Arc::new(FetchLatencies::default()),
            tracer,
            hot: None,
        })
    }

    /// [`connect_with`](Self::connect_with) plus hot-key replication:
    /// the client tracks its own per-key fetch counts in a bounded
    /// space-saving sketch, replicates keys whose estimated count
    /// crosses `hot.hot_key_threshold` to `hot.replicas` distinct
    /// servers, routes replicated reads with power-of-two-choices by
    /// its own in-flight/latency load estimate, and invalidates every
    /// replica on [`put`](Self::put).
    ///
    /// Replica 0 of any key is its ordinary home server, so keys that
    /// never get hot behave exactly as with
    /// [`connect_with`](Self::connect_with).
    ///
    /// # Errors
    ///
    /// Returns the first connection failure.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or its length differs from the
    /// strategy's `max_servers()`, or if `hot.replicas == 0` or
    /// `hot.sketch_capacity == 0`.
    pub fn connect_replicated(
        addrs: &[std::net::SocketAddr],
        strategy: Box<dyn PlacementStrategy + Send + Sync>,
        config: ClientConfig,
        hot: HotKeyConfig,
    ) -> Result<ClusterClient, NetError> {
        let mut client = ClusterClient::connect_with(addrs, strategy, config)?;
        let n = client.clients.len();
        client.hot = Some(HotKeyState {
            config: hot,
            rings: ReplicaRings::new(client.hasher, hot.replicas),
            sketch: Mutex::new(SpaceSaving::new(hot.sketch_capacity)),
            replicated: Mutex::new(std::collections::HashMap::new()),
            chooser: TwoChoices::new(),
            loads: (0..n).map(|_| ServerLoad::default()).collect(),
            promotions: Counter::new(),
            invalidations: Counter::new(),
            hot_keys: Gauge::new(),
        });
        Ok(client)
    }

    /// Currently active servers.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// The server responsible for `key` at the current active count.
    #[must_use]
    pub fn server_for(&self, key: &[u8]) -> ServerId {
        self.strategy
            .server_for(self.hasher.hash_bytes(key), self.active)
    }

    /// The per-server client, for inspecting breaker state and
    /// fault counters.
    #[must_use]
    pub fn client(&self, server: usize) -> &CacheClient {
        &self.clients[server]
    }

    /// Cluster-level fault counters, with the per-server client
    /// counters (retries, breaker trips, fast fails) summed in.
    #[must_use]
    pub fn fault_stats(&self) -> ClusterStats {
        let per_server: Vec<ClientStats> =
            self.clients.iter().map(CacheClient::fault_stats).collect();
        ClusterStats {
            degraded_fetches: self.stats.degraded_fetches.load(Ordering::Relaxed),
            skipped_migrations: self.stats.skipped_migrations.load(Ordering::Relaxed),
            dropped_installs: self.stats.dropped_installs.load(Ordering::Relaxed),
            missing_digests: self.stats.missing_digests.load(Ordering::Relaxed),
            retries: per_server.iter().map(|s| s.retries).sum(),
            breaker_trips: per_server.iter().map(|s| s.breaker_trips).sum(),
            fast_fails: per_server.iter().map(|s| s.fast_fails).sum(),
        }
    }

    /// Per-fetch-class counters and latency histograms: every
    /// [`fetch`](Self::fetch) records its end-to-end latency under its
    /// [`ClusterFetch`] class; batched hits from
    /// [`fetch_many`](Self::fetch_many) are counted but not timed
    /// (their latency is per-batch, not per-key).
    #[must_use]
    pub fn fetch_stats(&self) -> &FetchLatencies {
        &self.fetches
    }

    /// The transition/breaker event ring shared by this client and
    /// every per-server [`CacheClient`]. Inspect after a transition to
    /// see the ordered begin → digest broadcast → per-key migration →
    /// drain lifecycle.
    #[must_use]
    pub fn tracer(&self) -> &Arc<EventTracer> {
        &self.tracer
    }

    /// A pull-based registry source for this client's web-tier view of
    /// the cluster, suitable for [`proteus_obs::MetricsServer::spawn`]
    /// (pair with [`MetricsServer::spawn_traced`] and
    /// [`tracer`](Self::tracer) to also serve the transition trace at
    /// `/trace.jsonl`): per-fetch-class counters and latency
    /// histograms, the cluster fault counters, and trace ring health.
    ///
    /// [`MetricsServer::spawn_traced`]: proteus_obs::MetricsServer::spawn_traced
    #[must_use]
    pub fn metric_source(&self) -> MetricSource {
        let stats = Arc::clone(&self.stats);
        let fetches = Arc::clone(&self.fetches);
        let tracer = Arc::clone(&self.tracer);
        Arc::new(move || {
            let mut out = Vec::new();
            for (class, count, snap) in fetches.snapshot_all() {
                out.push(
                    Metric::counter("proteus_client_fetches_total", count)
                        .with_label("class", class.name()),
                );
                out.push(
                    Metric::histogram("proteus_client_fetch_latency_seconds", snap)
                        .with_label("class", class.name()),
                );
            }
            out.push(Metric::counter(
                "proteus_client_degraded_fetches_total",
                stats.degraded_fetches.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "proteus_client_skipped_migrations_total",
                stats.skipped_migrations.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "proteus_client_dropped_installs_total",
                stats.dropped_installs.load(Ordering::Relaxed),
            ));
            out.push(Metric::counter(
                "proteus_client_missing_digests_total",
                stats.missing_digests.load(Ordering::Relaxed),
            ));
            out.extend(trace_metrics(&tracer));
            out
        })
    }

    /// Hot-key replication counters, or `None` if this client was not
    /// built with [`connect_replicated`](Self::connect_replicated).
    #[must_use]
    pub fn hot_key_stats(&self) -> Option<HotKeyStats> {
        self.hot.as_ref().map(|hot| HotKeyStats {
            replicated_keys: hot.hot_keys.get(),
            promotions: hot.promotions.get(),
            invalidations: hot.invalidations.get(),
            replica_hits: self.fetches.count(FetchClassKind::ReplicaHit),
        })
    }

    /// The distinct replica servers currently assigned to `key`, home
    /// first, or `None` if the key is not replicated (or replication
    /// is off).
    #[must_use]
    pub fn replicas_of(&self, key: &[u8]) -> Option<Vec<usize>> {
        self.hot.as_ref()?.replicated.lock().get(key).cloned()
    }

    /// Begins a provisioning transition to `new_active` servers: pulls
    /// a fresh digest snapshot from every server active under the old
    /// mapping (the broadcast, issued to all servers **in parallel**,
    /// so the wall time is one server's round trips, not the sum),
    /// then switches the mapping. Call
    /// [`end_transition`](Self::end_transition) after the hot-TTL
    /// window elapses and the departing servers have powered off.
    ///
    /// Overlapping transitions are **rejected**: chaining 4→3→2
    /// without an intervening `end_transition` would overwrite the old
    /// mapping and the digest broadcast, stranding keys that only live
    /// on the original old server. Callers drive one window at a time
    /// (the paper's Algorithm 2 likewise assumes a single old/new
    /// mapping pair); finish the first window, then start the next.
    ///
    /// A server whose digest cannot be fetched (powered off early,
    /// crashed) does not fail the transition: its digest is recorded
    /// as missing, and keys that only lived there fall through to the
    /// database — a dead cache reads as a miss.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::TransitionInProgress`] if a transition
    /// window is already open.
    ///
    /// # Panics
    ///
    /// Panics if `new_active` is outside `1..=total`.
    pub fn begin_transition(&mut self, new_active: usize) -> Result<(), NetError> {
        assert!(
            (1..=self.clients.len()).contains(&new_active),
            "active count {new_active} outside 1..={}",
            self.clients.len()
        );
        if new_active == self.active {
            return Ok(());
        }
        if self.in_transition {
            return Err(NetError::TransitionInProgress);
        }
        self.tracer.record(TraceKind::TransitionBegin {
            from: self.active as u32,
            to: new_active as u32,
        });
        let mut digests = vec![None; self.clients.len()];
        // Broadcast in parallel: every server snapshots and uploads its
        // digest concurrently (scoped threads borrowing the clients),
        // so the wall time of the broadcast is the *slowest* server's
        // round trips, not the sum over servers — at paper scale the
        // difference between a transition that starts in milliseconds
        // and one that takes seconds. Results are joined in server
        // order, so the trace stream stays deterministic.
        let results: Vec<Result<Option<BloomFilter>, NetError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self.clients[..self.active]
                .iter()
                .map(|client| scope.spawn(move || client.snapshot_digest()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("digest broadcast thread panicked"))
                .collect()
        });
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(digest) => {
                    self.tracer.record(TraceKind::DigestBroadcast {
                        server: i as u32,
                        ok: true,
                    });
                    digests[i] = digest;
                }
                Err(e) if e.is_transport() => {
                    self.tracer.record(TraceKind::DigestBroadcast {
                        server: i as u32,
                        ok: false,
                    });
                    self.stats.missing_digests.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
        self.digests = digests;
        self.previous_active = self.active;
        self.active = new_active;
        self.in_transition = true;
        self.transition_since = Some(Instant::now());
        // Replica sets are a function of the active prefix: recompute
        // every hot key's set against the new ring so no replica points
        // at a drained/powered-off server. Newly added replicas start
        // cold and are backfilled lazily by the next read that misses
        // there (`try_replicas` re-installs on the servers it probed
        // and missed), so no bulk copy happens at transition time.
        if let Some(hot) = &self.hot {
            let mut map = hot.replicated.lock();
            let keys: Vec<Vec<u8>> = map.keys().cloned().collect();
            for key in keys {
                let set = hot
                    .rings
                    .replica_set(&key, |h| self.strategy.server_for(h, self.active).index());
                map.insert(key, set);
            }
        }
        Ok(())
    }

    /// Whether a transition window is currently open. A control loop
    /// polls this before [`begin_transition`](Self::begin_transition)
    /// and backs off instead of eating a
    /// [`NetError::TransitionInProgress`] rejection.
    #[must_use]
    pub fn transition_active(&self) -> bool {
        self.in_transition
    }

    /// The open transition window's shape, or `None` when no window is
    /// open. The `since` timestamp is when the digest broadcast
    /// completed, so `status.elapsed()` is how long keys have been
    /// draining under the dual mapping.
    #[must_use]
    pub fn transition_status(&self) -> Option<TransitionStatus> {
        let since = self.transition_since?;
        Some(TransitionStatus {
            from: self.previous_active,
            to: self.active,
            since,
        })
    }

    /// Ends the transition window: digests are dropped and the old
    /// mapping is retired. On a scale-down this is the point the
    /// departing servers can power off, so the tracer records a
    /// [`TraceKind::PowerOff`] per departing server after the drain.
    ///
    /// Returns the window it closed — the drain-completion signal a
    /// controller forwards to its power actuator — or `None` if no
    /// window was open (the call is then a no-op).
    pub fn end_transition(&mut self) -> Option<TransitionStatus> {
        let closed = if self.in_transition {
            self.tracer.record(TraceKind::TransitionDrain {
                from: self.previous_active as u32,
                to: self.active as u32,
            });
            for server in self.active..self.previous_active {
                self.tracer.record(TraceKind::PowerOff {
                    server: server as u32,
                });
            }
            self.transition_status()
        } else {
            None
        };
        self.digests.iter_mut().for_each(|d| *d = None);
        self.previous_active = self.active;
        self.in_transition = false;
        self.transition_since = None;
        closed
    }

    /// Installs `value` at `server` on a best-effort basis: an
    /// unreachable server just costs the cache fill, never the
    /// request. Semantic errors still surface. The shared buffer is
    /// written to the wire directly — a migration re-`set` reuses the
    /// allocation the `get` handed back, so the value crosses the web
    /// tier without ever being copied.
    fn install(&self, server: usize, key: &[u8], value: SharedBytes) -> Result<(), NetError> {
        match self.clients[server].set_shared(key, value) {
            Ok(()) => Ok(()),
            Err(e) if e.is_transport() => {
                self.stats.dropped_installs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Fetches from the database and best-effort installs at the
    /// new-mapping server.
    fn db_fetch<D: DbFallback + ?Sized>(
        &self,
        key: &[u8],
        db: &D,
        new_server: usize,
        class: ClusterFetch,
    ) -> Result<(SharedBytes, ClusterFetch), NetError> {
        if class == ClusterFetch::Degraded {
            self.stats.degraded_fetches.fetch_add(1, Ordering::Relaxed);
        }
        let value: SharedBytes = db.fetch(key)?.into();
        self.install(new_server, key, SharedBytes::clone(&value))?;
        Ok((value, class))
    }

    /// [`db_fetch`](Self::db_fetch) with the end-to-end latency
    /// recorded under the resulting class — the batch path's
    /// equivalent of [`fetch`](Self::fetch)'s instrumentation for keys
    /// that fall back to genuinely per-key database work.
    fn timed_db_fetch<D: DbFallback + ?Sized>(
        &self,
        key: &[u8],
        db: &D,
        new_server: usize,
        class: ClusterFetch,
    ) -> Result<(SharedBytes, ClusterFetch), NetError> {
        let begin = Instant::now();
        let result = self.db_fetch(key, db, new_server, class);
        if let Ok((_, class)) = &result {
            self.fetches.record(class_kind(*class), begin.elapsed());
        }
        result
    }

    /// Algorithm 2 against live servers: new server first; during a
    /// transition the old server's digest decides whether to migrate on
    /// demand; the backing store is the last resort. The value is
    /// installed at the new server on every non-hit path.
    ///
    /// Failure semantics: a transport failure at the new-mapping
    /// server degrades straight to the database
    /// ([`ClusterFetch::Degraded`]); a transport failure at the old
    /// server mid-transition skips the migration and falls through to
    /// the database likewise. A request only errors if the **database**
    /// errors (or a server returns a semantic error).
    ///
    /// # Errors
    ///
    /// Returns backing-store failures and semantic (non-transport)
    /// cache-server errors.
    pub fn fetch<D: DbFallback + ?Sized>(
        &self,
        key: &[u8],
        db: &D,
    ) -> Result<(SharedBytes, ClusterFetch), NetError> {
        let begin = Instant::now();
        let result = self.fetch_uninstrumented(key, db);
        if let Ok((_, class)) = &result {
            self.fetches.record(class_kind(*class), begin.elapsed());
        }
        result
    }

    /// The decision tree proper, without the latency bookkeeping:
    /// the hot-key replica path first (replicated keys route
    /// power-of-two-choices among their replicas), then the standard
    /// Algorithm 2 tree, then hot-key bookkeeping (sketch update,
    /// promotion, re-replication) on whatever the tree resolved.
    fn fetch_uninstrumented<D: DbFallback + ?Sized>(
        &self,
        key: &[u8],
        db: &D,
    ) -> Result<(SharedBytes, ClusterFetch), NetError> {
        let hash = self.hasher.hash_bytes(key);
        let new_server = self.strategy.server_for(hash, self.active).index();
        if let Some(hit) = self.try_replicas(key, new_server)? {
            if let Some(hot) = &self.hot {
                hot.sketch.lock().observe(key);
            }
            return Ok(hit);
        }
        let (value, class) = self.algorithm2_fetch(key, hash, new_server, db)?;
        self.hot_key_after_fetch(key, &value, new_server, class)?;
        Ok((value, class))
    }

    /// Probes a replicated key's replica set: power-of-two-choices
    /// picks the first server by the client's own load estimate, the
    /// remaining replicas serve as failover (a miss or a dead server
    /// just moves to the next replica). On a hit, replicas that were
    /// probed and missed are backfilled best-effort — this is how
    /// replicas added by a transition's recompute warm up without a
    /// bulk copy.
    ///
    /// Returns `None` when the key is not replicated or no replica
    /// could serve it (the standard tree then resolves the fetch).
    fn try_replicas(
        &self,
        key: &[u8],
        home: usize,
    ) -> Result<Option<(SharedBytes, ClusterFetch)>, NetError> {
        let Some(hot) = &self.hot else {
            return Ok(None);
        };
        let Some(replicas) = hot.replicated.lock().get(key).cloned() else {
            return Ok(None);
        };
        if replicas.len() < 2 {
            return Ok(None);
        }
        let first = replicas[hot
            .chooser
            .choose(replicas.len(), |i| hot.loads[replicas[i]].score())];
        let order = std::iter::once(first).chain(replicas.iter().copied().filter(|&s| s != first));
        let mut missed = Vec::new();
        for server in order {
            let load = &hot.loads[server];
            load.in_flight.fetch_add(1, Ordering::Relaxed);
            let begin = Instant::now();
            let result = self.clients[server].get(key);
            load.in_flight.fetch_sub(1, Ordering::Relaxed);
            match result {
                Ok(found) => {
                    load.record(u64::try_from(begin.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    match found {
                        Some(value) => {
                            for &m in &missed {
                                self.install(m, key, SharedBytes::clone(&value))?;
                            }
                            let class = if server == home {
                                ClusterFetch::Hit
                            } else {
                                ClusterFetch::ReplicaHit
                            };
                            return Ok(Some((value, class)));
                        }
                        None => missed.push(server),
                    }
                }
                // A dead replica is routed around, not degraded: the
                // surviving replicas (or the standard tree) serve.
                Err(e) if e.is_transport() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Sketch update, hot-key promotion, and re-replication after the
    /// standard tree resolved a fetch. A key crossing the threshold is
    /// promoted: its distinct replica set is computed against the
    /// current ring and the just-fetched value is installed on every
    /// non-home replica. For an already-replicated key that the
    /// standard tree resolved (every replica missed or the value was
    /// just migrated/refetched), the non-home replicas are re-filled —
    /// excluding the home server the tree already installed at, so a
    /// migration install is never duplicated.
    fn hot_key_after_fetch(
        &self,
        key: &[u8],
        value: &SharedBytes,
        home: usize,
        class: ClusterFetch,
    ) -> Result<(), NetError> {
        let Some(hot) = &self.hot else {
            return Ok(());
        };
        if hot.config.replicas < 2 {
            return Ok(());
        }
        let count = hot.sketch.lock().observe(key);
        let existing = hot.replicated.lock().get(key).cloned();
        let set = match existing {
            Some(set) => {
                if class == ClusterFetch::Hit {
                    // Home served directly (e.g. the p2c probe raced a
                    // concurrent promotion): nothing to re-fill.
                    return Ok(());
                }
                set
            }
            None => {
                if count < hot.config.hot_key_threshold {
                    return Ok(());
                }
                let set = hot
                    .rings
                    .replica_set(key, |h| self.strategy.server_for(h, self.active).index());
                if set.len() < 2 {
                    return Ok(());
                }
                let mut map = hot.replicated.lock();
                map.insert(key.to_vec(), set.clone());
                hot.promotions.inc();
                hot.hot_keys.set(map.len() as i64);
                set
            }
        };
        for &server in set.iter().filter(|&&s| s != home) {
            self.install(server, key, SharedBytes::clone(value))?;
        }
        Ok(())
    }

    /// Stores `value` at `key`'s home server and invalidates every
    /// other copy a reader could still find: the non-home replicas of
    /// a hot key, and — mid-transition — the old-mapping server whose
    /// digest could otherwise resurrect the stale value through an
    /// on-demand migration.
    ///
    /// The home write and the invalidations are best-effort on
    /// transport failures (a dead server serves nothing; the paper's
    /// failure model treats it as a miss), so a write never errors
    /// because a replica is down.
    ///
    /// # Errors
    ///
    /// Returns semantic (non-transport) cache-server errors.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), NetError> {
        let home = self.server_for(key).index();
        self.install(home, key, value.into())?;
        self.invalidate_many(&[key])?;
        Ok(())
    }

    /// Invalidates every non-home copy of each key — hot-key replicas
    /// plus, mid-transition, the old-mapping server — batched into one
    /// pipelined [`CacheClient::delete_many`] per target server.
    /// Returns how many copies were actually deleted. Unreachable
    /// targets are skipped (best effort, like every install path).
    ///
    /// # Errors
    ///
    /// Returns semantic (non-transport) cache-server errors.
    pub fn invalidate_many(&self, keys: &[&[u8]]) -> Result<u64, NetError> {
        let mut per_server: std::collections::HashMap<usize, Vec<&[u8]>> =
            std::collections::HashMap::new();
        for &key in keys {
            let hash = self.hasher.hash_bytes(key);
            let home = self.strategy.server_for(hash, self.active).index();
            if self.in_transition {
                let old = self.strategy.server_for(hash, self.previous_active).index();
                if old != home {
                    per_server.entry(old).or_default().push(key);
                }
            }
            if let Some(hot) = &self.hot {
                if let Some(set) = hot.replicated.lock().get(key) {
                    for &server in set.iter().filter(|&&s| s != home) {
                        let group = per_server.entry(server).or_default();
                        if !group.contains(&key) {
                            group.push(key);
                        }
                    }
                }
            }
        }
        let mut deleted = 0;
        for (server, group) in per_server {
            if let Some(hot) = &self.hot {
                hot.invalidations.add(group.len() as u64);
            }
            match self.clients[server].delete_many(&group) {
                Ok(n) => deleted += n,
                Err(e) if e.is_transport() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(deleted)
    }

    /// The standard Algorithm 2 tree: new server, then the old
    /// server's digest mid-transition, then the database.
    fn algorithm2_fetch<D: DbFallback + ?Sized>(
        &self,
        key: &[u8],
        hash: u64,
        new_server: usize,
        db: &D,
    ) -> Result<(SharedBytes, ClusterFetch), NetError> {
        match self.clients[new_server].get(key) {
            Ok(Some(value)) => return Ok((value, ClusterFetch::Hit)),
            Ok(None) => {}
            Err(e) if e.is_transport() => {
                // The key's cache server is down: serve from the
                // authoritative store. No point attempting a migration
                // either — there is nowhere to install it.
                self.tracer.record(TraceKind::Degraded {
                    server: new_server as u32,
                });
                return self.db_fetch(key, db, new_server, ClusterFetch::Degraded);
            }
            Err(e) => return Err(e),
        }
        if self.in_transition {
            let old = self.strategy.server_for(hash, self.previous_active).index();
            if old != new_server {
                if let Some(digest) = &self.digests[old] {
                    if digest.contains(key) {
                        match self.clients[old].get(key) {
                            Ok(Some(value)) => {
                                // Same allocation all the way through:
                                // the buffer read off the old server's
                                // socket is the one re-`set` at the new
                                // server — a refcount bump, not a copy.
                                self.install(new_server, key, SharedBytes::clone(&value))?;
                                self.tracer.record(TraceKind::KeyMigrated {
                                    from: old as u32,
                                    to: new_server as u32,
                                });
                                return Ok((value, ClusterFetch::Migrated));
                            }
                            Ok(None) => {
                                // The digest vouched for the key but
                                // the old server missed: a Bloom false
                                // positive (or the departing server
                                // evicted it). The wasted round trip
                                // is classified, not hidden.
                                return self.db_fetch(
                                    key,
                                    db,
                                    new_server,
                                    ClusterFetch::FalsePositive,
                                );
                            }
                            Err(e) if e.is_transport() => {
                                // The departing server died early; its
                                // hot keys fall through to the database.
                                self.stats
                                    .skipped_migrations
                                    .fetch_add(1, Ordering::Relaxed);
                                self.tracer
                                    .record(TraceKind::MigrationSkipped { server: old as u32 });
                                return self.db_fetch(key, db, new_server, ClusterFetch::Degraded);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        self.db_fetch(key, db, new_server, ClusterFetch::Database)
    }

    /// Batched Algorithm 2: fetches many keys with one pipelined
    /// multi-key get per involved server instead of one round trip per
    /// key. Keys are grouped by their new-mapping server and all
    /// requests are written before any response is awaited. The misses
    /// stay batched too: during a transition, old-server digest probes
    /// are pipelined per old server and the migration re-`set`s are
    /// batched per new server ([`CacheClient::set_many`]), so a batch
    /// that migrates M keys from one departing server pays two round
    /// trips, not 2·M. Only genuinely per-key work — database fetches
    /// and keys whose new-mapping server failed the batch — runs key
    /// by key.
    ///
    /// Per-server failures are isolated: one dead server degrades only
    /// its own key group (those keys take the single-key path, which
    /// serves them from the database), while every other group
    /// proceeds normally — and the dead server's circuit breaker makes
    /// the per-key fallback fail fast rather than paying a timeout per
    /// key.
    ///
    /// Results align with `keys`.
    ///
    /// # Errors
    ///
    /// Returns backing-store failures and semantic (non-transport)
    /// cache-server errors.
    pub fn fetch_many<D: DbFallback + ?Sized>(
        &self,
        keys: &[&[u8]],
        db: &D,
    ) -> Result<Vec<(SharedBytes, ClusterFetch)>, NetError> {
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (pos, key) in keys.iter().enumerate() {
            groups
                .entry(self.server_for(key).index())
                .or_default()
                .push(pos);
        }
        // Phase 1: write every server's multi-get before reading any
        // response, overlapping the per-server round trips. A server
        // that fails the send just leaves its group unresolved for the
        // per-key phase.
        let mut failed: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut pending = Vec::with_capacity(groups.len());
        for (server, positions) in groups {
            let group_keys: Vec<&[u8]> = positions.iter().map(|&p| keys[p]).collect();
            match self.clients[server].send_get_many(&group_keys) {
                Ok(sent) => pending.push((server, positions, sent)),
                Err(e) if e.is_transport() => {
                    failed.insert(server);
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 2: collect responses and slot the hits. A receive
        // failure likewise only abandons that server's group.
        let mut out: Vec<Option<(SharedBytes, ClusterFetch)>> = vec![None; keys.len()];
        for (server, positions, sent) in pending {
            match self.clients[server].recv_get_many(sent) {
                Ok(values) => {
                    for (pos, value) in positions.into_iter().zip(values) {
                        if let Some(data) = value {
                            // Batched hits are counted but not timed:
                            // the round trip was shared by the whole
                            // group, so a per-key latency would be
                            // fiction.
                            self.fetches.count_only(FetchClassKind::NewHit);
                            out[pos] = Some((data, ClusterFetch::Hit));
                        }
                    }
                }
                Err(e) if e.is_transport() => {
                    failed.insert(server);
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 3: the remaining keys take the migration/database tail
        // of the decision tree — batched. Migration candidates (genuine
        // misses whose old-mapping digest vouches for the key) are
        // grouped by old server; keys whose new-mapping server already
        // failed keep the per-key path (the tripped breaker fails fast,
        // preserving the degraded semantics); everything else is an
        // ordinary database miss.
        // Duplicate keys resolve once: the first unresolved position
        // of each distinct key is its representative; the rest mirror
        // its result at the end. Without this, N copies of one key in
        // a batch would fetch the database N times, migrate (and
        // trace, and count) the same key N times, and re-install it N
        // times.
        let mut rep_of: std::collections::HashMap<&[u8], usize> = std::collections::HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut probe_groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for pos in 0..keys.len() {
            if out[pos].is_some() {
                continue;
            }
            let key = keys[pos];
            match rep_of.entry(key) {
                std::collections::hash_map::Entry::Occupied(rep) => {
                    dups.push((pos, *rep.get()));
                    continue;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(pos);
                }
            }
            let hash = self.hasher.hash_bytes(key);
            let new_server = self.strategy.server_for(hash, self.active).index();
            if failed.contains(&new_server) {
                out[pos] = Some(self.fetch(key, db)?);
                continue;
            }
            if self.in_transition {
                let old = self.strategy.server_for(hash, self.previous_active).index();
                if old != new_server {
                    if let Some(digest) = &self.digests[old] {
                        if digest.contains(key) {
                            probe_groups.entry(old).or_default().push(pos);
                            continue;
                        }
                    }
                }
            }
            out[pos] = Some(self.timed_db_fetch(key, db, new_server, ClusterFetch::Database)?);
        }
        // Probe each old server with one pipelined multi-get (all
        // requests written before any response is read), instead of one
        // round trip per migrating key.
        let mut probes_pending = Vec::with_capacity(probe_groups.len());
        let mut probes_failed: Vec<(usize, Vec<usize>)> = Vec::new();
        for (old, positions) in probe_groups {
            let group_keys: Vec<&[u8]> = positions.iter().map(|&p| keys[p]).collect();
            match self.clients[old].send_get_many(&group_keys) {
                Ok(sent) => probes_pending.push((old, positions, sent)),
                Err(e) if e.is_transport() => probes_failed.push((old, positions)),
                Err(e) => return Err(e),
            }
        }
        // Migration hits are re-`set` in per-new-server batches below;
        // digest false positives pay their classified database fetch.
        let mut installs: std::collections::HashMap<usize, Vec<(usize, usize, SharedBytes)>> =
            std::collections::HashMap::new();
        for (old, positions, sent) in probes_pending {
            match self.clients[old].recv_get_many(sent) {
                Ok(values) => {
                    for (pos, value) in positions.into_iter().zip(values) {
                        let key = keys[pos];
                        let new_server = self.server_for(key).index();
                        match value {
                            Some(data) => {
                                installs
                                    .entry(new_server)
                                    .or_default()
                                    .push((pos, old, data));
                            }
                            None => {
                                out[pos] = Some(self.timed_db_fetch(
                                    key,
                                    db,
                                    new_server,
                                    ClusterFetch::FalsePositive,
                                )?);
                            }
                        }
                    }
                }
                Err(e) if e.is_transport() => probes_failed.push((old, positions)),
                Err(e) => return Err(e),
            }
        }
        // An unreachable old server skips its whole group's migration:
        // each key is recorded exactly as the single-key path would
        // (skip counter, trace event, degraded database fetch).
        for (old, positions) in probes_failed {
            for pos in positions {
                self.stats
                    .skipped_migrations
                    .fetch_add(1, Ordering::Relaxed);
                self.tracer
                    .record(TraceKind::MigrationSkipped { server: old as u32 });
                let key = keys[pos];
                let new_server = self.server_for(key).index();
                out[pos] =
                    Some(self.timed_db_fetch(key, db, new_server, ClusterFetch::Degraded)?);
            }
        }
        // Batched installs: one pipelined `set` batch per new server.
        // The shared buffers read off the old servers' sockets go to
        // the wire without copying, and a batch whose target server
        // fails is dropped whole (best effort, like `install`).
        for (new_server, batch) in installs {
            let pairs: Vec<(&[u8], SharedBytes)> = batch
                .iter()
                .map(|(pos, _, data)| (keys[*pos], SharedBytes::clone(data)))
                .collect();
            match self.clients[new_server].set_many(&pairs) {
                Ok(()) => {}
                Err(e) if e.is_transport() => {
                    self.stats
                        .dropped_installs
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
            for (pos, old, data) in batch {
                self.tracer.record(TraceKind::KeyMigrated {
                    from: old as u32,
                    to: new_server as u32,
                });
                // Counted, not timed: the probe round trip and the
                // install were both shared by the group.
                self.fetches.count_only(FetchClassKind::Migrated);
                out[pos] = Some((data, ClusterFetch::Migrated));
            }
        }
        // Duplicate positions mirror their representative's resolution
        // (same shared buffer, same class — counted so every position
        // is accounted exactly once, like the phase-2 hits).
        for (pos, rep) in dups {
            let resolved = out[rep].clone().expect("representative resolved");
            self.fetches.count_only(class_kind(resolved.1));
            out[pos] = Some(resolved);
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect())
    }
}

impl fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterClient")
            .field("servers", &self.clients.len())
            .field("active", &self.active)
            .field("in_transition", &self.in_transition)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use proteus_cache::CacheConfig;
    use proteus_ring::ProteusPlacement;
    use proteus_store::StoreConfig;

    fn cluster(n: usize) -> (Vec<CacheServer>, ClusterClient, Mutex<ShardedStore>) {
        let servers: Vec<CacheServer> = (0..n)
            .map(|_| {
                CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(4 << 20)).unwrap()
            })
            .collect();
        let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
        let client = ClusterClient::connect_with(
            &addrs,
            Box::new(ProteusPlacement::generate(n)),
            ClientConfig::fast_failover(),
        )
        .unwrap();
        let db = Mutex::new(ShardedStore::new(StoreConfig {
            object_size: 64,
            ..StoreConfig::default()
        }));
        (servers, client, db)
    }

    #[test]
    fn fetch_cold_then_hot() {
        let (servers, client, db) = cluster(3);
        let (v1, how1) = client.fetch(b"page:1", &db).unwrap();
        assert_eq!(how1, ClusterFetch::Database);
        let (v2, how2) = client.fetch(b"page:1", &db).unwrap();
        assert_eq!(how2, ClusterFetch::Hit);
        assert_eq!(v1, v2);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn live_scale_down_migrates_hot_keys_with_zero_db_traffic() {
        let (servers, mut client, db) = cluster(4);
        // Warm a set of keys.
        let keys: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        let db_before = db.lock().total_fetches();
        // Scale 4 -> 3 with digest broadcast over the real protocol.
        client.begin_transition(3).unwrap();
        for k in &keys {
            let (_, how) = client.fetch(k, &db).unwrap();
            assert_ne!(
                how,
                ClusterFetch::Database,
                "hot key {:?} must not reach the database",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(
            db.lock().total_fetches(),
            db_before,
            "zero database traffic during the smooth transition"
        );
        // And the amortization property: the keys now all hit directly.
        for k in &keys {
            let (_, how) = client.fetch(k, &db).unwrap();
            assert_eq!(how, ClusterFetch::Hit);
        }
        client.end_transition();
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn after_end_transition_cold_keys_go_to_db() {
        let (servers, mut client, db) = cluster(3);
        client.fetch(b"page:7", &db).unwrap();
        client.begin_transition(2).unwrap();
        client.end_transition();
        // A key that moved but was never migrated now comes from the DB.
        let moved: Vec<u8> = (0..1000u32)
            .map(|i| format!("cold:{i}").into_bytes())
            .find(|k| client.server_for(k).index() < 2)
            .unwrap();
        let (_, how) = client.fetch(&moved, &db).unwrap();
        assert_eq!(how, ClusterFetch::Database);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn fetch_many_matches_per_key_fetch() {
        let (servers, client, db) = cluster(3);
        let keys: Vec<Vec<u8>> = (0..60u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        // Warm the even keys only.
        for k in keys.iter().step_by(2) {
            client.fetch(k, &db).unwrap();
        }
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let batched = client.fetch_many(&refs, &db).unwrap();
        assert_eq!(batched.len(), keys.len());
        for (i, (value, how)) in batched.iter().enumerate() {
            // Values always match a direct single-key fetch.
            let (single, _) = client.fetch(&keys[i], &db).unwrap();
            assert_eq!(value, &single, "key {i}");
            let expected = if i % 2 == 0 {
                ClusterFetch::Hit
            } else {
                ClusterFetch::Database
            };
            assert_eq!(*how, expected, "key {i}");
        }
        // The batch installed the misses; a re-run is all hits.
        for (_, how) in client.fetch_many(&refs, &db).unwrap() {
            assert_eq!(how, ClusterFetch::Hit);
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn fetch_many_migrates_during_transition() {
        let (servers, mut client, db) = cluster(4);
        let keys: Vec<Vec<u8>> = (0..80u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        let db_before = db.lock().total_fetches();
        client.begin_transition(3).unwrap();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut migrated = 0;
        for (_, how) in client.fetch_many(&refs, &db).unwrap() {
            assert_ne!(how, ClusterFetch::Database);
            if how == ClusterFetch::Migrated {
                migrated += 1;
            }
        }
        assert_eq!(db.lock().total_fetches(), db_before);
        assert!(migrated > 0, "the scale-down must move some keys");
        // The batched re-`set`s landed: the same batch is now all hits
        // at the new mapping, with zero dropped installs.
        for (_, how) in client.fetch_many(&refs, &db).unwrap() {
            assert_eq!(how, ClusterFetch::Hit);
        }
        assert_eq!(client.fault_stats().dropped_installs, 0);
        client.end_transition();
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn fetch_many_skips_migration_when_old_server_dies() {
        let (mut servers, mut client, db) = cluster(4);
        let keys: Vec<Vec<u8>> = (0..80u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        // The digest broadcast succeeds, then the departing server dies
        // before its keys migrate: the batched probe to it fails, and
        // every candidate key must degrade to the database exactly as
        // the single-key path would.
        client.begin_transition(3).unwrap();
        servers.remove(3).stop();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let results = client.fetch_many(&refs, &db).unwrap();
        let mut degraded = 0;
        for (value, how) in &results {
            assert!(!value.is_empty());
            match how {
                ClusterFetch::Hit => {}
                ClusterFetch::Degraded => degraded += 1,
                other => panic!("unexpected class {other:?}"),
            }
        }
        assert!(degraded > 0, "some keys lived on the departed server");
        let stats = client.fault_stats();
        assert_eq!(
            stats.skipped_migrations, degraded as u64,
            "every degraded key must be a skipped migration"
        );
        client.end_transition();
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn begin_transition_noop_for_same_count() {
        let (servers, mut client, _db) = cluster(2);
        client.begin_transition(2).unwrap();
        assert_eq!(client.active(), 2);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn overlapping_transitions_are_rejected_then_chain_cleanly() {
        let (servers, mut client, db) = cluster(4);
        let keys: Vec<Vec<u8>> = (0..60u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        // 4 -> 3 opens a window; 3 -> 2 inside it must be rejected (it
        // would overwrite previous_active and the digest broadcast,
        // stranding keys that only live on the original old server).
        client.begin_transition(3).unwrap();
        assert!(matches!(
            client.begin_transition(2),
            Err(NetError::TransitionInProgress)
        ));
        assert_eq!(client.active(), 3, "rejected call must not move state");
        // Driven one window at a time, the 4 -> 3 -> 2 double step keeps
        // every hot key out of the database.
        let db_before = db.lock().total_fetches();
        for k in &keys {
            let (_, how) = client.fetch(k, &db).unwrap();
            assert_ne!(how, ClusterFetch::Database);
        }
        client.end_transition();
        client.begin_transition(2).unwrap();
        for k in &keys {
            let (_, how) = client.fetch(k, &db).unwrap();
            assert_ne!(how, ClusterFetch::Database);
        }
        client.end_transition();
        assert_eq!(db.lock().total_fetches(), db_before);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn transition_status_reports_the_open_window_and_its_close() {
        let (servers, mut client, _db) = cluster(4);
        assert!(!client.transition_active());
        assert_eq!(client.transition_status(), None);
        assert_eq!(
            client.end_transition(),
            None,
            "closing a window that never opened is a no-op"
        );

        client.begin_transition(3).unwrap();
        // The status accessor is the controller's back-off signal: it
        // must read true exactly while begin_transition would reject.
        assert!(client.transition_active());
        let open = client.transition_status().expect("window is open");
        assert_eq!((open.from, open.to), (4, 3));
        assert!(matches!(
            client.begin_transition(2),
            Err(NetError::TransitionInProgress)
        ));

        let closed = client.end_transition().expect("a window was open");
        assert_eq!((closed.from, closed.to), (4, 3));
        assert!(closed.since >= open.since);
        assert!(!client.transition_active());
        assert_eq!(client.transition_status(), None);

        // A same-count begin is a no-op and must not open a window.
        client.begin_transition(3).unwrap();
        assert!(!client.transition_active());
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn dead_server_degrades_to_database_not_error() {
        let (mut servers, client, db) = cluster(3);
        let keys: Vec<Vec<u8>> = (0..60u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        // Kill server 1; its keys must degrade to the DB, the rest hit.
        servers.remove(1).stop();
        let mut degraded = 0;
        let mut hits = 0;
        for k in &keys {
            let (value, how) = client.fetch(k, &db).unwrap();
            assert!(!value.is_empty());
            match how {
                ClusterFetch::Degraded => degraded += 1,
                ClusterFetch::Hit => hits += 1,
                other => panic!("unexpected class {other:?} for {k:?}"),
            }
            if client.server_for(k).index() == 1 {
                assert_eq!(how, ClusterFetch::Degraded);
            }
        }
        assert!(degraded > 0, "some keys lived on the dead server");
        assert!(hits > 0, "other servers keep serving");
        let stats = client.fault_stats();
        assert_eq!(stats.degraded_fetches, degraded);
        assert!(
            stats.breaker_trips >= 1,
            "repeated failures must trip the dead server's breaker"
        );
        for s in servers {
            s.stop();
        }
    }

    fn replicated_cluster(
        n: usize,
        hot: HotKeyConfig,
    ) -> (Vec<CacheServer>, ClusterClient, Mutex<ShardedStore>) {
        let servers: Vec<CacheServer> = (0..n)
            .map(|_| {
                CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(4 << 20)).unwrap()
            })
            .collect();
        let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
        let client = ClusterClient::connect_replicated(
            &addrs,
            Box::new(ProteusPlacement::generate(n)),
            ClientConfig::fast_failover(),
            hot,
        )
        .unwrap();
        let db = Mutex::new(ShardedStore::new(StoreConfig {
            object_size: 64,
            ..StoreConfig::default()
        }));
        (servers, client, db)
    }

    #[test]
    fn fetch_many_with_duplicate_keys_resolves_each_key_once_mid_transition() {
        let (servers, mut client, db) = cluster(4);
        let warm: Vec<Vec<u8>> = (0..40u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &warm {
            client.fetch(k, &db).unwrap();
        }
        client.begin_transition(3).unwrap();
        // Each warm key three times, plus cold keys twice each, shuffled
        // into repeated runs so duplicates land in the same phase-3 pass.
        let cold: Vec<Vec<u8>> = (0..10u32)
            .map(|i| format!("cold:{i}").into_bytes())
            .collect();
        let mut batch: Vec<&[u8]> = Vec::new();
        for _ in 0..3 {
            batch.extend(warm.iter().map(Vec::as_slice));
        }
        for _ in 0..2 {
            batch.extend(cold.iter().map(Vec::as_slice));
        }
        let db_before = db.lock().total_fetches();
        let migrated_before = client
            .tracer()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::KeyMigrated { .. }))
            .count();
        let results = client.fetch_many(&batch, &db).unwrap();
        assert_eq!(results.len(), batch.len());
        // Every duplicate position mirrors its representative exactly.
        let mut first: std::collections::HashMap<&[u8], &(SharedBytes, ClusterFetch)> =
            std::collections::HashMap::new();
        for (key, resolved) in batch.iter().zip(&results) {
            let rep = first.entry(key).or_insert(resolved);
            assert_eq!(rep.0, resolved.0, "duplicate value diverged");
            assert_eq!(rep.1, resolved.1, "duplicate class diverged");
        }
        // One database fetch per *unique* cold key, not per position.
        assert_eq!(
            db.lock().total_fetches() - db_before,
            cold.len() as u64,
            "duplicates must not multiply database fetches"
        );
        // And one migration per unique migrating key, not per position.
        let migrated_events = client
            .tracer()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::KeyMigrated { .. }))
            .count()
            - migrated_before;
        let migrated_unique = first
            .values()
            .filter(|(_, how)| *how == ClusterFetch::Migrated)
            .count();
        assert!(migrated_unique > 0, "the scale-down must move some keys");
        assert_eq!(
            migrated_events, migrated_unique,
            "duplicates must not double-migrate"
        );
        // Values agree with the single-key path.
        for (key, (value, _)) in batch.iter().zip(&results) {
            let (single, _) = client.fetch(key, &db).unwrap();
            assert_eq!(value, &single);
        }
        client.end_transition();
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn hot_key_is_promoted_replicated_and_served_by_replicas() {
        let hot = HotKeyConfig {
            replicas: 3,
            hot_key_threshold: 10,
            sketch_capacity: 32,
        };
        let (servers, client, db) = replicated_cluster(4, hot);
        let (celebrity, _) = client.fetch(b"celebrity", &db).unwrap();
        for _ in 0..80 {
            let (v, how) = client.fetch(b"celebrity", &db).unwrap();
            assert_eq!(v, celebrity);
            assert!(
                matches!(how, ClusterFetch::Hit | ClusterFetch::ReplicaHit),
                "hot key must stay cached, got {how:?}"
            );
        }
        let stats = client.hot_key_stats().unwrap();
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.replicated_keys, 1);
        assert!(
            stats.replica_hits > 0,
            "p2c must route some reads to non-home replicas"
        );
        let replicas = client.replicas_of(b"celebrity").unwrap();
        assert_eq!(replicas.len(), 3, "three distinct replicas");
        assert_eq!(
            replicas[0],
            client.server_for(b"celebrity").index(),
            "replica 0 is the home server"
        );
        // Every replica server really holds the value.
        for &s in &replicas {
            assert_eq!(
                client.client(s).get(b"celebrity").unwrap().as_deref(),
                Some(&celebrity[..])
            );
        }
        // A cold key stays un-replicated and behaves as ever.
        let (_, how) = client.fetch(b"cold:1", &db).unwrap();
        assert_eq!(how, ClusterFetch::Database);
        assert!(client.replicas_of(b"cold:1").is_none());
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn writes_invalidate_every_replica_with_no_stale_reads() {
        let hot = HotKeyConfig {
            replicas: 3,
            hot_key_threshold: 5,
            sketch_capacity: 32,
        };
        let (servers, client, db) = replicated_cluster(4, hot);
        for _ in 0..20 {
            client.fetch(b"celebrity", &db).unwrap();
        }
        let replicas = client.replicas_of(b"celebrity").unwrap();
        assert!(replicas.len() > 1);
        client.put(b"celebrity", b"rewritten").unwrap();
        // The home holds the new value; every other replica was
        // invalidated, not left stale.
        let home = client.server_for(b"celebrity").index();
        assert_eq!(
            client.client(home).get(b"celebrity").unwrap().as_deref(),
            Some(&b"rewritten"[..])
        );
        for &s in replicas.iter().filter(|&&s| s != home) {
            assert_eq!(
                client.client(s).get(b"celebrity").unwrap(),
                None,
                "replica {s} must be invalidated"
            );
        }
        let stats = client.hot_key_stats().unwrap();
        assert_eq!(stats.invalidations, (replicas.len() - 1) as u64);
        // Subsequent fetches only ever see the new value (replicas are
        // backfilled from the home copy, never from a stale one).
        for _ in 0..20 {
            let (v, _) = client.fetch(b"celebrity", &db).unwrap();
            assert_eq!(&v[..], b"rewritten", "stale replica value resurfaced");
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn transition_recomputes_replica_sets_against_the_new_ring() {
        let hot = HotKeyConfig {
            replicas: 2,
            hot_key_threshold: 5,
            sketch_capacity: 32,
        };
        let (servers, mut client, db) = replicated_cluster(4, hot);
        let (value, _) = client.fetch(b"celebrity", &db).unwrap();
        for _ in 0..20 {
            client.fetch(b"celebrity", &db).unwrap();
        }
        assert!(client.replicas_of(b"celebrity").is_some());
        // Scale down: every replica must point inside the new active
        // prefix, and reads must keep serving the same value with zero
        // errors across the whole window.
        client.begin_transition(2).unwrap();
        let replicas = client.replicas_of(b"celebrity").unwrap();
        assert!(
            replicas.iter().all(|&s| s < 2),
            "replica set {replicas:?} must live in the active prefix"
        );
        let db_before = db.lock().total_fetches();
        for _ in 0..30 {
            let (v, _) = client.fetch(b"celebrity", &db).unwrap();
            assert_eq!(v, value);
        }
        assert_eq!(
            db.lock().total_fetches(),
            db_before,
            "the hot key must never fall through to the database"
        );
        client.end_transition();
        for _ in 0..10 {
            let (v, _) = client.fetch(b"celebrity", &db).unwrap();
            assert_eq!(v, value);
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn fetch_many_isolates_a_dead_server_to_its_key_group() {
        let (mut servers, client, db) = cluster(3);
        let keys: Vec<Vec<u8>> = (0..60u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        servers.remove(0).stop();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let results = client.fetch_many(&refs, &db).unwrap();
        for (k, (value, how)) in keys.iter().zip(&results) {
            assert!(!value.is_empty());
            if client.server_for(k).index() == 0 {
                assert_eq!(*how, ClusterFetch::Degraded, "dead group degrades");
            } else {
                assert_eq!(*how, ClusterFetch::Hit, "live groups are untouched");
            }
        }
        for s in servers {
            s.stop();
        }
    }
}
