//! The web-tier cluster client: Algorithm 2 over live TCP servers.

use std::fmt;

use parking_lot::Mutex;
use proteus_bloom::BloomFilter;
use proteus_ring::{hash::KeyHasher, PlacementStrategy, ServerId};
use proteus_store::ShardedStore;

use crate::client::CacheClient;
use crate::error::NetError;

/// The authoritative backing store a [`ClusterClient`] falls back to
/// when data is not in cache.
///
/// Implemented for [`ShardedStore`] out of the box; applications plug
/// in their own databases.
pub trait DbFallback {
    /// Fetches `key` from the authoritative store.
    ///
    /// # Errors
    ///
    /// Implementations surface their own transport failures as
    /// [`NetError`].
    fn fetch(&self, key: &[u8]) -> Result<Vec<u8>, NetError>;
}

impl DbFallback for Mutex<ShardedStore> {
    fn fetch(&self, key: &[u8]) -> Result<Vec<u8>, NetError> {
        Ok(self.lock().fetch(key))
    }
}

/// How a [`ClusterClient::fetch`] was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFetch {
    /// Hit at the key's new-mapping server.
    Hit,
    /// Migrated on demand from the old server during a transition.
    Migrated,
    /// Fetched from the backing store.
    Database,
}

/// A web server's view of the live cache cluster: one pooled client
/// per cache server, the placement strategy, the current and previous
/// active counts, and the digests broadcast at the last transition.
///
/// This is the TCP twin of [`proteus_core::Router`]: the same
/// Algorithm 2 decision tree, with real sockets underneath.
///
/// [`proteus_core::Router`]: https://docs.rs/proteus-core
pub struct ClusterClient {
    clients: Vec<CacheClient>,
    strategy: Box<dyn PlacementStrategy + Send + Sync>,
    hasher: KeyHasher,
    active: usize,
    previous_active: usize,
    digests: Vec<Option<BloomFilter>>,
    in_transition: bool,
}

impl ClusterClient {
    /// Connects to every cache server (in provisioning order) and
    /// starts with all of them active.
    ///
    /// # Errors
    ///
    /// Returns the first connection failure.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or its length differs from the
    /// strategy's `max_servers()`.
    pub fn connect(
        addrs: &[std::net::SocketAddr],
        strategy: Box<dyn PlacementStrategy + Send + Sync>,
    ) -> Result<ClusterClient, NetError> {
        assert!(!addrs.is_empty(), "need at least one cache server");
        assert_eq!(
            addrs.len(),
            strategy.max_servers(),
            "strategy sized for a different cluster"
        );
        let clients = addrs
            .iter()
            .map(|&a| CacheClient::connect(a))
            .collect::<Result<Vec<_>, _>>()?;
        let n = clients.len();
        Ok(ClusterClient {
            clients,
            strategy,
            hasher: KeyHasher::default(),
            active: n,
            previous_active: n,
            digests: vec![None; n],
            in_transition: false,
        })
    }

    /// Currently active servers.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// The server responsible for `key` at the current active count.
    #[must_use]
    pub fn server_for(&self, key: &[u8]) -> ServerId {
        self.strategy
            .server_for(self.hasher.hash_bytes(key), self.active)
    }

    /// Begins a provisioning transition to `new_active` servers: pulls
    /// a fresh digest snapshot from every server active under the old
    /// mapping (the broadcast), then switches the mapping. Call
    /// [`end_transition`](Self::end_transition) after the hot-TTL
    /// window elapses and the departing servers have powered off.
    ///
    /// # Errors
    ///
    /// Returns the first digest-fetch failure; the mapping is not
    /// switched in that case.
    ///
    /// # Panics
    ///
    /// Panics if `new_active` is outside `1..=total`.
    pub fn begin_transition(&mut self, new_active: usize) -> Result<(), NetError> {
        assert!(
            (1..=self.clients.len()).contains(&new_active),
            "active count {new_active} outside 1..={}",
            self.clients.len()
        );
        if new_active == self.active {
            return Ok(());
        }
        let mut digests = vec![None; self.clients.len()];
        for (i, client) in self.clients.iter().enumerate().take(self.active) {
            digests[i] = client.snapshot_digest()?;
        }
        self.digests = digests;
        self.previous_active = self.active;
        self.active = new_active;
        self.in_transition = true;
        Ok(())
    }

    /// Ends the transition window: digests are dropped and the old
    /// mapping is retired.
    pub fn end_transition(&mut self) {
        self.digests.iter_mut().for_each(|d| *d = None);
        self.previous_active = self.active;
        self.in_transition = false;
    }

    /// Algorithm 2 against live servers: new server first; during a
    /// transition the old server's digest decides whether to migrate on
    /// demand; the backing store is the last resort. The value is
    /// installed at the new server on every non-hit path.
    ///
    /// # Errors
    ///
    /// Returns transport failures from the cache servers or the
    /// backing store.
    pub fn fetch<D: DbFallback + ?Sized>(
        &self,
        key: &[u8],
        db: &D,
    ) -> Result<(Vec<u8>, ClusterFetch), NetError> {
        let hash = self.hasher.hash_bytes(key);
        let new_server = self.strategy.server_for(hash, self.active);
        if let Some(value) = self.clients[new_server.index()].get(key)? {
            return Ok((value, ClusterFetch::Hit));
        }
        if self.in_transition {
            let old = self.strategy.server_for(hash, self.previous_active);
            if old != new_server {
                if let Some(digest) = &self.digests[old.index()] {
                    if digest.contains(key) {
                        if let Some(value) = self.clients[old.index()].get(key)? {
                            self.clients[new_server.index()].set(key, &value)?;
                            return Ok((value, ClusterFetch::Migrated));
                        }
                    }
                }
            }
        }
        let value = db.fetch(key)?;
        self.clients[new_server.index()].set(key, &value)?;
        Ok((value, ClusterFetch::Database))
    }

    /// Batched Algorithm 2: fetches many keys with one pipelined
    /// multi-key get per involved server instead of one round trip per
    /// key. Keys are grouped by their new-mapping server, all requests
    /// are written before any response is awaited, and only the keys
    /// that miss fall back to the single-key [`fetch`](Self::fetch)
    /// path (migration digest check, then the backing store).
    ///
    /// Results align with `keys`.
    ///
    /// # Errors
    ///
    /// Returns transport failures from the cache servers or the
    /// backing store.
    pub fn fetch_many<D: DbFallback + ?Sized>(
        &self,
        keys: &[&[u8]],
        db: &D,
    ) -> Result<Vec<(Vec<u8>, ClusterFetch)>, NetError> {
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (pos, key) in keys.iter().enumerate() {
            groups
                .entry(self.server_for(key).index())
                .or_default()
                .push(pos);
        }
        // Phase 1: write every server's multi-get before reading any
        // response, overlapping the per-server round trips.
        let mut pending = Vec::with_capacity(groups.len());
        for (server, positions) in groups {
            let group_keys: Vec<&[u8]> = positions.iter().map(|&p| keys[p]).collect();
            let sent = self.clients[server].send_get_many(&group_keys)?;
            pending.push((server, positions, sent));
        }
        // Phase 2: collect responses and slot the hits.
        let mut out: Vec<Option<(Vec<u8>, ClusterFetch)>> = vec![None; keys.len()];
        for (server, positions, sent) in pending {
            let values = self.clients[server].recv_get_many(sent)?;
            for (pos, value) in positions.into_iter().zip(values) {
                if let Some(data) = value {
                    out[pos] = Some((data, ClusterFetch::Hit));
                }
            }
        }
        // Phase 3: misses take the full single-key decision tree.
        for (pos, slot) in out.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(self.fetch(keys[pos], db)?);
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect())
    }
}

impl fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterClient")
            .field("servers", &self.clients.len())
            .field("active", &self.active)
            .field("in_transition", &self.in_transition)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use proteus_cache::CacheConfig;
    use proteus_ring::ProteusPlacement;
    use proteus_store::StoreConfig;

    fn cluster(n: usize) -> (Vec<CacheServer>, ClusterClient, Mutex<ShardedStore>) {
        let servers: Vec<CacheServer> = (0..n)
            .map(|_| {
                CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(4 << 20)).unwrap()
            })
            .collect();
        let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
        let client =
            ClusterClient::connect(&addrs, Box::new(ProteusPlacement::generate(n))).unwrap();
        let db = Mutex::new(ShardedStore::new(StoreConfig {
            object_size: 64,
            ..StoreConfig::default()
        }));
        (servers, client, db)
    }

    #[test]
    fn fetch_cold_then_hot() {
        let (servers, client, db) = cluster(3);
        let (v1, how1) = client.fetch(b"page:1", &db).unwrap();
        assert_eq!(how1, ClusterFetch::Database);
        let (v2, how2) = client.fetch(b"page:1", &db).unwrap();
        assert_eq!(how2, ClusterFetch::Hit);
        assert_eq!(v1, v2);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn live_scale_down_migrates_hot_keys_with_zero_db_traffic() {
        let (servers, mut client, db) = cluster(4);
        // Warm a set of keys.
        let keys: Vec<Vec<u8>> = (0..100u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        let db_before = db.lock().total_fetches();
        // Scale 4 -> 3 with digest broadcast over the real protocol.
        client.begin_transition(3).unwrap();
        for k in &keys {
            let (_, how) = client.fetch(k, &db).unwrap();
            assert_ne!(
                how,
                ClusterFetch::Database,
                "hot key {:?} must not reach the database",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(
            db.lock().total_fetches(),
            db_before,
            "zero database traffic during the smooth transition"
        );
        // And the amortization property: the keys now all hit directly.
        for k in &keys {
            let (_, how) = client.fetch(k, &db).unwrap();
            assert_eq!(how, ClusterFetch::Hit);
        }
        client.end_transition();
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn after_end_transition_cold_keys_go_to_db() {
        let (servers, mut client, db) = cluster(3);
        client.fetch(b"page:7", &db).unwrap();
        client.begin_transition(2).unwrap();
        client.end_transition();
        // A key that moved but was never migrated now comes from the DB.
        let moved: Vec<u8> = (0..1000u32)
            .map(|i| format!("cold:{i}").into_bytes())
            .find(|k| client.server_for(k).index() < 2)
            .unwrap();
        let (_, how) = client.fetch(&moved, &db).unwrap();
        assert_eq!(how, ClusterFetch::Database);
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn fetch_many_matches_per_key_fetch() {
        let (servers, client, db) = cluster(3);
        let keys: Vec<Vec<u8>> = (0..60u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        // Warm the even keys only.
        for k in keys.iter().step_by(2) {
            client.fetch(k, &db).unwrap();
        }
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let batched = client.fetch_many(&refs, &db).unwrap();
        assert_eq!(batched.len(), keys.len());
        for (i, (value, how)) in batched.iter().enumerate() {
            // Values always match a direct single-key fetch.
            let (single, _) = client.fetch(&keys[i], &db).unwrap();
            assert_eq!(value, &single, "key {i}");
            let expected = if i % 2 == 0 {
                ClusterFetch::Hit
            } else {
                ClusterFetch::Database
            };
            assert_eq!(*how, expected, "key {i}");
        }
        // The batch installed the misses; a re-run is all hits.
        for (_, how) in client.fetch_many(&refs, &db).unwrap() {
            assert_eq!(how, ClusterFetch::Hit);
        }
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn fetch_many_migrates_during_transition() {
        let (servers, mut client, db) = cluster(4);
        let keys: Vec<Vec<u8>> = (0..80u32)
            .map(|i| format!("page:{i}").into_bytes())
            .collect();
        for k in &keys {
            client.fetch(k, &db).unwrap();
        }
        let db_before = db.lock().total_fetches();
        client.begin_transition(3).unwrap();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        for (_, how) in client.fetch_many(&refs, &db).unwrap() {
            assert_ne!(how, ClusterFetch::Database);
        }
        assert_eq!(db.lock().total_fetches(), db_before);
        client.end_transition();
        for s in servers {
            s.stop();
        }
    }

    #[test]
    fn begin_transition_noop_for_same_count() {
        let (servers, mut client, _db) = cluster(2);
        client.begin_transition(2).unwrap();
        assert_eq!(client.active(), 2);
        for s in servers {
            s.stop();
        }
    }
}
