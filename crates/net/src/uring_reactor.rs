//! The io_uring data plane (Linux only).
//!
//! The epoll reactor ([`reactor`](crate::reactor)) multiplexes
//! hundreds of connections onto a few threads, but still pays one
//! syscall per ready connection per batch: `epoll_wait`, then a `read`
//! for every readable socket and a `write` for every queued response.
//! This plane folds all of that into io_uring submission batches — one
//! `io_uring_enter` per loop iteration submits every queued receive,
//! send, and accept and waits for completions, so the syscall count
//! per operation falls as load (and therefore batch size) rises.
//!
//! Structure:
//!
//! - **Loop 0 owns the listener** with one multishot-accept SQE: a
//!   single submission keeps producing one CQE per accepted socket.
//!   Accepted sockets round-robin across loops; handoff to a sibling
//!   reuses the epoll plane's [`Mailbox`] + eventfd doorbell (watched
//!   here via `IORING_OP_POLL_ADD` instead of epoll).
//! - **Receives use a registered provided-buffer ring** per loop
//!   ([`BufRing`]): parked connections keep one small SQE in flight
//!   instead of pinning a 64 KiB read buffer each; the kernel picks a
//!   buffer only when bytes actually arrive, and the loop copies them
//!   into the connection's [`ConnCore`] input buffer and recycles the
//!   id in the same batch.
//! - **Sends are double-buffered**: response bytes accumulate in the
//!   shared [`ConnCore`] output buffer while at most one send SQE is
//!   in flight against a dedicated in-flight buffer that is never
//!   touched until its CQE is reaped (the memory-safety contract of
//!   [`Sqe::send`]). Partial sends resume from the recorded offset.
//!
//! Command parsing, execution, backpressure (the shared 1 MiB
//! high-water mark), and close semantics all live in [`ConnCore`], so
//! this plane is byte-identical to the threaded and epoll planes by
//! construction — `tests/reactor_equivalence.rs` proves it.

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use proteus_obs::{Counter, Gauge};

use crate::conn::{ConnCore, OUT_HIGH_WATER};
use crate::error::NetError;
use crate::reactor::Mailbox;
use crate::server::{accept_retry_delay_os, Shared};
use crate::uring::{
    tcp_from_accept, BufRing, Cqe, Ring, Sqe, ENOBUFS, IORING_CQE_BUFFER_SHIFT,
    IORING_CQE_F_BUFFER, IORING_CQE_F_MORE,
};

/// Submission-queue depth per loop. 256 slots batch far more than one
/// wait's worth of re-arms; overflow falls back to an extra submit.
const SQ_ENTRIES: u32 = 256;

/// Completion-queue depth per loop (`IORING_SETUP_CQSIZE`). Sized so a
/// full batch of multishot accepts plus one recv and one send per
/// connection cannot overflow in practice; `IORING_FEAT_NODROP` queues
/// the remainder if it ever does.
const CQ_ENTRIES: u32 = 4096;

/// Provided buffers per loop and their size. 32 × 64 KiB = 2 MiB per
/// loop caps receive memory regardless of connection count — the point
/// of buffer selection; momentary exhaustion surfaces as `-ENOBUFS`
/// and the receive re-arms once buffers recycle.
const BUF_COUNT: u16 = 32;
const BUF_LEN: usize = 64 << 10;
/// Buffer group id (arbitrary; one group per loop-local ring).
const BGID: u16 = 1;

/// How long one `io_uring_enter` waits with nothing completing; bounds
/// shutdown latency exactly like the epoll plane's `WAIT_TIMEOUT`.
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// How long shutdown waits for in-flight send CQEs before leaking the
/// (kernel-visible) buffers instead of freeing them under the kernel.
const QUIESCE_DEADLINE: Duration = Duration::from_millis(500);

// user_data encoding: kind in the top byte, connection token below.
const UD_KIND_SHIFT: u32 = 56;
const UD_ACCEPT: u64 = 1 << UD_KIND_SHIFT;
const UD_WAKE: u64 = 2 << UD_KIND_SHIFT;
const UD_RECV: u64 = 3 << UD_KIND_SHIFT;
const UD_SEND: u64 = 4 << UD_KIND_SHIFT;
const UD_TOKEN_MASK: u64 = (1 << UD_KIND_SHIFT) - 1;

/// io_uring plane telemetry, surfaced through the server registry
/// (`stats proteus` and Prometheus). `sqes / enters` and
/// `cqes / enters` are the mean submission and completion batch sizes
/// one syscall carries — the direct counterpart of the epoll plane's
/// `events / waits`.
#[derive(Debug)]
pub(crate) struct UringStats {
    per_loop_connections: Vec<Gauge>,
    accepted: Counter,
    enters: Counter,
    sqes: Counter,
    cqes: Counter,
    wakeups: Counter,
    buf_starved: Counter,
}

impl UringStats {
    /// Fresh counters for a plane with `loops` event loops.
    pub(crate) fn new(loops: usize) -> Self {
        UringStats {
            per_loop_connections: (0..loops).map(|_| Gauge::new()).collect(),
            accepted: Counter::new(),
            enters: Counter::new(),
            sqes: Counter::new(),
            cqes: Counter::new(),
            wakeups: Counter::new(),
            buf_starved: Counter::new(),
        }
    }

    /// Connections currently owned by each loop, in loop order.
    pub(crate) fn loop_connections(&self) -> Vec<i64> {
        self.per_loop_connections.iter().map(Gauge::get).collect()
    }

    /// Sockets delivered by multishot accept.
    pub(crate) fn accepted(&self) -> u64 {
        self.accepted.get()
    }

    /// `io_uring_enter` syscalls issued.
    pub(crate) fn enters(&self) -> u64 {
        self.enters.get()
    }

    /// SQEs submitted across all enters.
    pub(crate) fn sqes(&self) -> u64 {
        self.sqes.get()
    }

    /// CQEs reaped across all enters.
    pub(crate) fn cqes(&self) -> u64 {
        self.cqes.get()
    }

    /// Doorbell wake-ups delivered (sibling handed this loop sockets).
    pub(crate) fn wakeups(&self) -> u64 {
        self.wakeups.get()
    }

    /// Receives that momentarily found the provided-buffer ring empty
    /// (`-ENOBUFS`) and re-armed after the batch recycled buffers.
    pub(crate) fn buf_starved(&self) -> u64 {
        self.buf_starved.get()
    }
}

/// The running io_uring plane: its event-loop threads. Unlike the
/// epoll plane there is no accept thread — loop 0 owns the listener.
pub(crate) struct UringReactor {
    loops: Vec<LoopHandle>,
}

impl std::fmt::Debug for UringReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UringReactor")
            .field("loops", &self.loops.len())
            .finish_non_exhaustive()
    }
}

struct LoopHandle {
    thread: Option<JoinHandle<()>>,
    mailbox: Arc<Mailbox>,
}

impl UringReactor {
    /// Starts `loops` event-loop threads; loop 0 adopts the listener
    /// and runs multishot accept.
    ///
    /// # Errors
    ///
    /// Returns an error if a ring, buffer ring, eventfd, or thread
    /// cannot be created. The caller ([`CacheServer::spawn_with`]) has
    /// already probed [`crate::uring::supported`], so errors here are
    /// resource exhaustion, not missing kernel support.
    ///
    /// [`CacheServer::spawn_with`]: crate::CacheServer::spawn_with
    pub(crate) fn spawn(
        listener: TcpListener,
        shared: Arc<Shared>,
        loops: usize,
    ) -> Result<UringReactor, NetError> {
        let stats = shared
            .uring_stats
            .clone()
            .expect("uring plane spawned with uring stats");
        let loops = loops.max(1);
        let mailboxes: Vec<Arc<Mailbox>> = (0..loops)
            .map(|_| Mailbox::new().map(Arc::new))
            .collect::<Result<_, _>>()?;
        let mut handles = Vec::with_capacity(loops);
        let mut listener = Some(listener);
        for index in 0..loops {
            let ring = Ring::new(SQ_ENTRIES, CQ_ENTRIES).map_err(NetError::from)?;
            let bufs = BufRing::new(&ring, BGID, BUF_COUNT, BUF_LEN).map_err(NetError::from)?;
            let mut worker = Worker {
                // Declaration order drops `bufs` (unregister) before
                // `ring` (fd close) — see struct field docs.
                bufs,
                ring,
                listener: if index == 0 { listener.take() } else { None },
                mailboxes: mailboxes.clone(),
                shared: Arc::clone(&shared),
                stats: Arc::clone(&stats),
                index,
                conns: HashMap::new(),
                next_token: 0,
                next_route: 0,
                accept_armed: false,
                accept_rearm_at: None,
                wake_armed: false,
                backlog: Vec::new(),
                dirty: Vec::new(),
            };
            let thread = std::thread::Builder::new()
                .name(format!("proteus-uring-{index}"))
                .spawn(move || worker.run())?;
            handles.push(LoopHandle {
                thread: Some(thread),
                mailbox: Arc::clone(&mailboxes[index]),
            });
        }
        Ok(UringReactor { loops: handles })
    }

    /// Rings every loop's doorbell (producing a poll CQE that breaks
    /// the `io_uring_enter` wait) and joins the threads. The caller
    /// has already set the shutdown flag.
    pub(crate) fn stop(&mut self) {
        for handle in &self.loops {
            handle.mailbox.wake.notify();
        }
        for handle in &mut self.loops {
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// One connection on the io_uring plane: the shared state machine plus
/// this plane's in-flight op bookkeeping.
struct UConn {
    core: ConnCore,
    /// A buffer-select recv SQE is outstanding for this socket.
    recv_armed: bool,
    /// A send SQE referencing `inflight[send_pos..]` is outstanding —
    /// while true, `inflight` must not be touched (grown, freed, or
    /// reallocated): the kernel may read it at any moment.
    send_inflight: bool,
    /// Bytes being sent; swapped wholesale with the [`ConnCore`]
    /// output buffer (ping-pong, so both allocations are reused).
    inflight: Vec<u8>,
    /// Resume offset into `inflight` after a partial send.
    send_pos: usize,
    /// Close decided (error or graceful); the connection only lingers
    /// until its in-flight send completes.
    dying: bool,
}

impl UConn {
    fn new(stream: TcpStream) -> UConn {
        UConn {
            core: ConnCore::new(stream),
            recv_armed: false,
            send_inflight: false,
            inflight: Vec::new(),
            send_pos: 0,
            dying: false,
        }
    }

    /// Response bytes this plane holds outside the [`ConnCore`] output
    /// buffer — counted against the shared high-water mark.
    fn inflight_pending(&self) -> usize {
        self.inflight.len() - self.send_pos
    }
}

/// One event loop: an io_uring instance, its provided-buffer ring, and
/// the connections routed to it.
struct Worker {
    /// Dropped before `ring` (declaration order) so unregistration
    /// still has a live ring fd.
    bufs: BufRing,
    ring: Ring,
    /// Loop 0 only: the listening socket driven by multishot accept.
    listener: Option<TcpListener>,
    mailboxes: Vec<Arc<Mailbox>>,
    shared: Arc<Shared>,
    stats: Arc<UringStats>,
    index: usize,
    conns: HashMap<u64, UConn>,
    next_token: u64,
    next_route: usize,
    accept_armed: bool,
    /// Accept backoff: no re-arm before this instant (EMFILE/ENFILE —
    /// the shared [`accept_retry_delay_os`] policy, implemented as a
    /// deadline instead of a sleep so the event loop never stalls).
    accept_rearm_at: Option<Instant>,
    wake_armed: bool,
    /// CQEs reaped early to unclog a full SQ; drained next iteration.
    backlog: Vec<Cqe>,
    /// Tokens touched this batch, stepped once after CQE processing.
    dirty: Vec<u64>,
}

impl Worker {
    fn run(&mut self) {
        let mut cqes: Vec<Cqe> = Vec::with_capacity(CQ_ENTRIES as usize);
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.arm_control();
            let before = self.ring.pending();
            self.stats.enters.inc();
            self.shared.metrics.plane_syscalls.inc();
            let submitted = match self.ring.submit_and_wait(WAIT_TIMEOUT) {
                Ok(n) => n,
                Err(_) => break,
            };
            self.stats.sqes.add(u64::from(submitted.min(before)));
            cqes.clear();
            cqes.append(&mut self.backlog);
            self.ring.reap(&mut cqes);
            self.stats.cqes.add(cqes.len() as u64);
            for cqe in cqes.drain(..) {
                self.handle_cqe(cqe);
            }
            let mut batch = std::mem::take(&mut self.dirty);
            batch.sort_unstable();
            batch.dedup();
            for token in batch {
                self.step(token);
            }
        }
        self.quiesce();
    }

    /// Arms the loop's standing control ops: the mailbox doorbell poll
    /// on every loop, multishot accept on loop 0 (respecting the
    /// exhaustion-backoff deadline).
    fn arm_control(&mut self) {
        if !self.wake_armed {
            let fd = self.mailboxes[self.index].wake.fd();
            self.push_hard(Sqe::poll_readable(fd, UD_WAKE));
            self.wake_armed = true;
        }
        if let Some(listener) = &self.listener {
            let backoff_over = match self.accept_rearm_at {
                Some(at) => Instant::now() >= at,
                None => true,
            };
            if !self.accept_armed && backoff_over {
                let fd = listener.as_raw_fd();
                self.push_hard(Sqe::accept_multishot(fd, UD_ACCEPT));
                self.accept_armed = true;
                self.accept_rearm_at = None;
            }
        }
    }

    /// Queues an SQE, making room with an extra submit (and, if the
    /// kernel is pushing back on a full CQ, an early reap) when the
    /// submission ring is full.
    fn push_hard(&mut self, sqe: Sqe) {
        loop {
            if self.ring.push(sqe) {
                return;
            }
            let pending = self.ring.pending();
            self.stats.enters.inc();
            self.shared.metrics.plane_syscalls.inc();
            match self.ring.submit() {
                Ok(n) => {
                    self.stats.sqes.add(u64::from(n.min(pending)));
                    if n == 0 {
                        // CQ backlog (EBUSY path): reap to make room.
                        self.ring.reap(&mut self.backlog);
                    }
                }
                Err(_) => return, // ring is wedged; shutdown will reap
            }
        }
    }

    fn handle_cqe(&mut self, cqe: Cqe) {
        match cqe.user_data & !UD_TOKEN_MASK {
            UD_ACCEPT => self.on_accept(cqe),
            UD_WAKE => {
                self.stats.wakeups.inc();
                self.wake_armed = false;
                self.mailboxes[self.index].wake.drain();
                self.shared.metrics.plane_syscalls.inc(); // eventfd read
                self.adopt_new();
            }
            UD_RECV => self.on_recv(cqe),
            UD_SEND => self.on_send(cqe),
            _ => {}
        }
    }

    fn on_accept(&mut self, cqe: Cqe) {
        if cqe.flags & IORING_CQE_F_MORE == 0 {
            // The multishot SQE retired (error, or the kernel asks for
            // a re-arm); `arm_control` re-submits next iteration.
            self.accept_armed = false;
        }
        if cqe.res >= 0 {
            let stream = tcp_from_accept(cqe.res);
            self.stats.accepted.inc();
            self.route(stream);
        } else if let Some(delay) = accept_retry_delay_os(-cqe.res) {
            // Same policy as the other planes' accept loops, expressed
            // as a deadline: fd exhaustion pauses accepting without
            // blocking this loop's existing connections.
            self.accept_rearm_at = Some(Instant::now() + delay);
        }
    }

    /// Round-robins an accepted socket across loops: local adoption
    /// for this loop, mailbox + doorbell for siblings.
    fn route(&mut self, stream: TcpStream) {
        let target = self.next_route % self.mailboxes.len();
        self.next_route = self.next_route.wrapping_add(1);
        if target == self.index {
            self.adopt(stream);
        } else {
            let mailbox = &self.mailboxes[target];
            mailbox.queue.lock().push(stream);
            mailbox.wake.notify();
            self.shared.metrics.plane_syscalls.inc(); // eventfd write
        }
    }

    /// Registers every socket waiting in this loop's mailbox.
    fn adopt_new(&mut self) {
        let streams: Vec<TcpStream> = std::mem::take(&mut *self.mailboxes[self.index].queue.lock());
        for stream in streams {
            self.adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        // No O_NONBLOCK needed: io_uring drives pollable fds
        // asynchronously regardless of the flag.
        let _ = stream.set_nodelay(true);
        self.shared.metrics.plane_syscalls.inc(); // nodelay
        let token = self.next_token & UD_TOKEN_MASK;
        self.next_token += 1;
        self.conns.insert(token, UConn::new(stream));
        self.shared.metrics.total_connections.inc();
        self.shared.metrics.curr_connections.inc();
        self.stats.per_loop_connections[self.index].inc();
        self.dirty.push(token); // step() arms the first recv
    }

    fn on_recv(&mut self, cqe: Cqe) {
        let token = cqe.user_data & UD_TOKEN_MASK;
        // Copy out and recycle the provided buffer first — even when
        // the connection is already gone, the buffer id must go back
        // to the kernel's ring (invariant 3 in `uring`).
        let bid = if cqe.flags & IORING_CQE_F_BUFFER != 0 {
            Some((cqe.flags >> IORING_CQE_BUFFER_SHIFT) as u16)
        } else {
            None
        };
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.recv_armed = false;
            if cqe.res > 0 {
                if let Some(bid) = bid {
                    let bytes = self.bufs.bytes(bid, cqe.res as usize);
                    conn.core.rbuf.extend_from_slice(bytes);
                }
            } else if cqe.res == 0 {
                conn.core.eof = true;
            } else if cqe.res == -ENOBUFS {
                // All provided buffers are out being processed; this
                // batch recycles them, step() re-arms the recv.
                self.stats.buf_starved.inc();
            } else {
                conn.core.eof = true;
                conn.core.closing = true;
            }
            self.dirty.push(token);
        }
        if let Some(bid) = bid {
            self.bufs.recycle(bid);
        }
    }

    fn on_send(&mut self, cqe: Cqe) {
        let token = cqe.user_data & UD_TOKEN_MASK;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.send_inflight = false;
        if cqe.res > 0 {
            conn.send_pos += cqe.res as usize;
        } else {
            // 0-byte send or an error: the peer is gone (EPIPE,
            // ECONNRESET) or the write cannot make progress.
            conn.dying = true;
        }
        self.dirty.push(token);
    }

    /// Advances one connection after this batch's completions landed:
    /// execute buffered commands, pump the send pipeline, re-arm the
    /// receive, and retire the connection when it is done.
    fn step(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if !conn.dying
            && conn
                .core
                .process(&self.shared, conn.inflight_pending())
                .is_err()
        {
            conn.dying = true;
        }
        if !conn.dying {
            self.pump_send(token, &mut conn);
            let backpressured = conn.core.out_pending() + conn.inflight_pending() > OUT_HIGH_WATER;
            if !conn.recv_armed && !conn.core.closing && !conn.core.eof && !backpressured {
                self.push_hard(Sqe::recv_select(
                    conn.core.stream.as_raw_fd(),
                    self.bufs.bgid(),
                    UD_RECV | token,
                ));
                conn.recv_armed = true;
            }
            let flushed = conn.core.out_pending() == 0 && conn.inflight_pending() == 0;
            if conn.core.closing && flushed && !conn.send_inflight {
                self.retire(conn);
                return;
            }
        } else {
            // Error path: force any outstanding ops to complete so the
            // in-flight send buffer can be released, then linger only
            // until the send CQE arrives.
            let _ = conn.core.stream.shutdown(Shutdown::Both);
            self.shared.metrics.plane_syscalls.inc();
            if !conn.send_inflight {
                self.retire(conn);
                return;
            }
        }
        self.conns.insert(token, conn);
    }

    /// Starts or resumes the at-most-one in-flight send: finish the
    /// current in-flight buffer first, then swap in the accumulated
    /// output buffer (ping-pong — both allocations are reused).
    fn pump_send(&mut self, token: u64, conn: &mut UConn) {
        if conn.send_inflight {
            return;
        }
        if conn.send_pos >= conn.inflight.len() {
            // In-flight buffer fully sent: safe to touch it again.
            conn.inflight.clear();
            conn.send_pos = 0;
            let out = conn.core.writer.get_mut();
            if out.buf.is_empty() {
                return;
            }
            debug_assert_eq!(out.pos, 0, "uring plane never partially drains OutBuf");
            std::mem::swap(&mut out.buf, &mut conn.inflight);
        }
        let ptr = conn.inflight[conn.send_pos..].as_ptr();
        let len = conn.inflight.len() - conn.send_pos;
        // Safety contract of `Sqe::send`: `inflight` is not touched
        // until the CQE for this SQE is reaped (`send_inflight` guards
        // every mutation site).
        self.push_hard(Sqe::send(
            conn.core.stream.as_raw_fd(),
            ptr,
            len,
            UD_SEND | token,
        ));
        conn.send_inflight = true;
    }

    /// Closes a connection and settles the gauges. Any still-pending
    /// recv op holds its own file reference and completes harmlessly
    /// against the dead token (its buffer is recycled in `on_recv`).
    fn retire(&mut self, conn: UConn) {
        debug_assert!(!conn.send_inflight, "retire with send in flight");
        drop(conn);
        self.shared.metrics.curr_connections.dec();
        self.stats.per_loop_connections[self.index].dec();
    }

    /// Shutdown: force-complete outstanding sends so their buffers can
    /// be freed, then drop every connection. A send that outlives the
    /// deadline has its buffer leaked rather than freed under a kernel
    /// that might still read it.
    fn quiesce(&mut self) {
        for conn in self.conns.values_mut() {
            let _ = conn.core.stream.shutdown(Shutdown::Both);
        }
        let deadline = Instant::now() + QUIESCE_DEADLINE;
        let mut cqes: Vec<Cqe> = Vec::new();
        while self.conns.values().any(|c| c.send_inflight) && Instant::now() < deadline {
            self.stats.enters.inc();
            self.shared.metrics.plane_syscalls.inc();
            if self
                .ring
                .submit_and_wait(Duration::from_millis(10))
                .is_err()
            {
                break;
            }
            cqes.clear();
            self.ring.reap(&mut cqes);
            for cqe in cqes.drain(..) {
                if cqe.user_data & !UD_TOKEN_MASK == UD_SEND {
                    let token = cqe.user_data & UD_TOKEN_MASK;
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.send_inflight = false;
                    }
                }
            }
        }
        for (_, mut conn) in self.conns.drain() {
            if conn.send_inflight {
                // Deadline hit with the kernel possibly still reading
                // this allocation: leaking it is the only safe exit.
                std::mem::forget(std::mem::take(&mut conn.inflight));
            }
            drop(conn);
            self.shared.metrics.curr_connections.dec();
            self.stats.per_loop_connections[self.index].dec();
        }
    }
}
