//! The TCP cache server.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_bloom::DigestSnapshot;
use proteus_cache::{CacheConfig, ShardedEngine, SharedBytes};
use proteus_obs::{
    to_stat_pairs, trace_metrics, Counter, EventTracer, Gauge, Metric, MetricSource, OpClass,
    OpLatencies, TraceKind,
};
use proteus_sim::{SimDuration, SimTime};

use crate::error::NetError;
use crate::protocol::{
    read_raw_command, RawCommand, Response, ResponseWriter, WireBuf, DIGEST_KEY,
    DIGEST_SNAPSHOT_KEY,
};

/// How long an idle connection blocks in `read` before re-checking the
/// shutdown flag. Bounds how long `CacheServer::stop()` waits for
/// parked connection threads to quiesce.
const IDLE_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Backoff before re-trying `accept` after a resource-exhaustion error
/// (`EMFILE`/`ENFILE`/`ENOBUFS`/`ENOMEM`): gives the process a beat to
/// shed file descriptors instead of spinning.
const ACCEPT_EXHAUSTED_BACKOFF: Duration = Duration::from_millis(50);

/// Live telemetry the server keeps alongside the engine: one latency
/// histogram per wire-command class plus connection gauges. Recording
/// is lock-free and allocation-free (see `proteus-obs`), so it stays on
/// under full load.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub(crate) ops: OpLatencies,
    pub(crate) curr_connections: Gauge,
    pub(crate) total_connections: Counter,
    /// Data-plane syscalls issued: accepts, socket reads/writes,
    /// `epoll_wait`/`epoll_ctl`, eventfd pokes, `io_uring_enter` —
    /// counted at every call site on all three planes so
    /// syscalls-per-operation can be compared across them honestly.
    pub(crate) plane_syscalls: Counter,
}

impl ServerMetrics {
    /// Per-command-class latency histograms.
    #[must_use]
    pub fn ops(&self) -> &OpLatencies {
        &self.ops
    }

    /// Connections currently attached.
    #[must_use]
    pub fn curr_connections(&self) -> i64 {
        self.curr_connections.get()
    }

    /// Connections ever accepted.
    #[must_use]
    pub fn total_connections(&self) -> u64 {
        self.total_connections.get()
    }

    /// Data-plane syscalls issued so far (see the field docs). Benches
    /// difference this across a run to report syscalls per operation.
    #[must_use]
    pub fn plane_syscalls(&self) -> u64 {
        self.plane_syscalls.get()
    }
}

/// Selects the data plane a [`CacheServer`] runs on.
///
/// Both engines share the engine, protocol, metrics, and command
/// execution code; they differ only in how sockets are driven. The
/// threaded engine is the portable fallback and correctness oracle;
/// the reactor is the production data plane on Linux (see DESIGN.md
/// §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One OS thread per connection, blocking reads with an idle
    /// timeout. Portable; thread count grows with connection count.
    Threaded,
    /// Non-blocking epoll reactor: `loops` event-loop threads share
    /// all connections (Linux only; falls back to [`Threaded`]
    /// elsewhere).
    ///
    /// [`Threaded`]: EngineKind::Threaded
    Reactor {
        /// Number of event-loop threads; `0` means
        /// `min(available cores, 4)`.
        loops: usize,
    },
    /// io_uring event loops with multishot accept and registered
    /// provided-buffer rings: submission batching folds many sockets'
    /// reads and writes into one `io_uring_enter` per loop iteration
    /// (Linux ≥ 5.19 only; falls back to [`Reactor`] when the kernel
    /// or sandbox lacks io_uring, then [`Threaded`] off Linux).
    ///
    /// [`Reactor`]: EngineKind::Reactor
    /// [`Threaded`]: EngineKind::Threaded
    Uring {
        /// Number of event-loop threads; `0` means
        /// `min(available cores, 4)`.
        loops: usize,
    },
}

impl EngineKind {
    /// Stable lowercase name for labels and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Threaded => "threaded",
            EngineKind::Reactor { .. } => "reactor",
            EngineKind::Uring { .. } => "uring",
        }
    }
}

impl Default for EngineKind {
    /// The reactor on Linux, the threaded engine elsewhere.
    fn default() -> Self {
        #[cfg(target_os = "linux")]
        {
            EngineKind::Reactor { loops: 0 }
        }
        #[cfg(not(target_os = "linux"))]
        {
            EngineKind::Threaded
        }
    }
}

/// Server-level configuration (as opposed to [`CacheConfig`], which
/// configures the cache engine the server fronts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerConfig {
    /// Which data plane to run.
    pub engine: EngineKind,
}

/// Resolves the `loops: 0` auto setting to a concrete thread count.
fn resolve_loops(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .clamp(1, 4)
    }
}

pub(crate) struct Shared {
    pub(crate) engine: ShardedEngine,
    /// The digest snapshot taken by the last `get SET_BLOOM_FILTER`.
    /// Shared so serving `get BLOOM_FILTER` is a refcount bump.
    pub(crate) snapshot: Mutex<Option<SharedBytes>>,
    pub(crate) started: Instant,
    pub(crate) shutdown: AtomicBool,
    pub(crate) metrics: ServerMetrics,
    /// Server-side transition trace: records the digest-snapshot half
    /// of a digest broadcast as observed on this end of the wire, and
    /// feeds the `/trace.jsonl` endpoint when the server's metrics
    /// exposition is spawned traced.
    pub(crate) tracer: Arc<EventTracer>,
    /// The resolved data plane, kept for `proteus_build_info`.
    engine_kind: EngineKind,
    /// Live connection sockets, so the threaded engine's `stop()` can
    /// interrupt blocked reads instead of waiting out their timeout.
    /// Each connection registers a clone on accept and removes itself
    /// on exit. (The reactor never blocks in reads, so it leaves this
    /// empty.)
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// Reactor telemetry (per-loop gauges, EAGAIN counters); `None`
    /// when the threaded engine is driving.
    #[cfg(target_os = "linux")]
    pub(crate) reactor_stats: Option<Arc<crate::reactor::ReactorStats>>,
    /// io_uring plane telemetry (enter/SQE/CQE batch counters); `None`
    /// unless the uring plane is driving.
    #[cfg(target_os = "linux")]
    pub(crate) uring_stats: Option<Arc<crate::uring_reactor::UringStats>>,
}

impl Shared {
    pub(crate) fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }
}

/// Classifies an `accept` error: `None` means retry immediately (the
/// aborted-connection family — the listener itself is fine), `Some(d)`
/// means back off for `d` first (resource exhaustion — retrying in a
/// tight loop would spin at 100% CPU). No error kills the accept loop:
/// a transient `EMFILE` must not permanently silence a server that
/// keeps running and holding its cache.
pub(crate) fn accept_retry_delay(e: &std::io::Error) -> Option<Duration> {
    if let Some(code) = e.raw_os_error() {
        return accept_retry_delay_os(code);
    }
    let exhausted = matches!(
        e.kind(),
        std::io::ErrorKind::OutOfMemory | std::io::ErrorKind::WouldBlock
    );
    exhausted.then_some(ACCEPT_EXHAUSTED_BACKOFF)
}

/// The raw-errno core of [`accept_retry_delay`], shared with the
/// io_uring plane (whose multishot-accept CQEs carry a negated errno,
/// never an [`std::io::Error`]): EMFILE(24)/ENFILE(23) — which surface
/// as Uncategorized on stable, hence raw codes — plus ENOBUFS(105) and
/// ENOMEM(12) back off; everything else retries immediately.
pub(crate) fn accept_retry_delay_os(code: i32) -> Option<Duration> {
    matches!(code, 23 | 24 | 12 | 105).then_some(ACCEPT_EXHAUSTED_BACKOFF)
}

/// A running cache server: an accept thread plus a data plane —
/// either one thread per connection or an epoll reactor, selected by
/// [`ServerConfig`] — all sharing one lock-striped [`ShardedEngine`].
/// Connections touching different key shards proceed in parallel;
/// there is no global engine lock.
///
/// Digest protocol, exactly as in the paper's modified memcached:
/// `get SET_BLOOM_FILTER` snapshots the counting Bloom filter digest
/// (built one shard at a time, so unrelated gets keep flowing);
/// `get BLOOM_FILTER` returns the snapshot bytes as a normal value.
/// Multi-key `get k1 k2 ...` answers all keys in one round trip.
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug)]
pub struct CacheServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine_kind: EngineKind,
    data_plane: DataPlane,
}

/// The running data plane behind a [`CacheServer`].
#[derive(Debug)]
enum DataPlane {
    Threaded {
        accept_thread: Option<JoinHandle<()>>,
        conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::Reactor),
    #[cfg(target_os = "linux")]
    Uring(crate::uring_reactor::UringReactor),
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl CacheServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving on the default data plane (the epoll reactor on Linux,
    /// thread-per-connection elsewhere).
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn spawn<A: ToSocketAddrs>(addr: A, config: CacheConfig) -> Result<CacheServer, NetError> {
        CacheServer::spawn_with(addr, config, ServerConfig::default())
    }

    /// Binds `addr` and starts serving on the data plane selected by
    /// `server_config`. On non-Linux targets a
    /// [`EngineKind::Reactor`] request falls back to the threaded
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound or (reactor
    /// only) the epoll instances cannot be created.
    pub fn spawn_with<A: ToSocketAddrs>(
        addr: A,
        config: CacheConfig,
        server_config: ServerConfig,
    ) -> Result<CacheServer, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        #[cfg(target_os = "linux")]
        let engine_kind = match server_config.engine {
            // The fallback ladder: a uring request on a kernel (or
            // sandbox) without io_uring resolves to the epoll reactor,
            // so callers read the plane actually running from
            // `engine_kind()` instead of failing.
            EngineKind::Uring { loops } if crate::uring::supported() => EngineKind::Uring {
                loops: resolve_loops(loops),
            },
            EngineKind::Uring { loops } | EngineKind::Reactor { loops } => EngineKind::Reactor {
                loops: resolve_loops(loops),
            },
            EngineKind::Threaded => EngineKind::Threaded,
        };
        #[cfg(not(target_os = "linux"))]
        let engine_kind = {
            let _ = resolve_loops(0);
            let _ = server_config;
            EngineKind::Threaded
        };
        let shared = Arc::new(Shared {
            engine: ShardedEngine::new(config),
            snapshot: Mutex::new(None),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            metrics: ServerMetrics::default(),
            tracer: Arc::new(EventTracer::new()),
            engine_kind,
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            #[cfg(target_os = "linux")]
            reactor_stats: match engine_kind {
                EngineKind::Reactor { loops } => {
                    Some(Arc::new(crate::reactor::ReactorStats::new(loops)))
                }
                EngineKind::Threaded | EngineKind::Uring { .. } => None,
            },
            #[cfg(target_os = "linux")]
            uring_stats: match engine_kind {
                EngineKind::Uring { loops } => {
                    Some(Arc::new(crate::uring_reactor::UringStats::new(loops)))
                }
                EngineKind::Threaded | EngineKind::Reactor { .. } => None,
            },
        });
        let data_plane = match engine_kind {
            #[cfg(target_os = "linux")]
            EngineKind::Reactor { loops } => DataPlane::Reactor(crate::reactor::Reactor::spawn(
                listener,
                Arc::clone(&shared),
                loops,
            )?),
            #[cfg(target_os = "linux")]
            EngineKind::Uring { loops } => DataPlane::Uring(
                crate::uring_reactor::UringReactor::spawn(listener, Arc::clone(&shared), loops)?,
            ),
            #[cfg(not(target_os = "linux"))]
            EngineKind::Reactor { .. } | EngineKind::Uring { .. } => {
                unreachable!("normalized to Threaded above")
            }
            EngineKind::Threaded => spawn_threaded(listener, &shared),
        };
        Ok(CacheServer {
            addr,
            shared,
            engine_kind,
            data_plane,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The data plane actually running (auto values resolved: a
    /// requested `Reactor { loops: 0 }` reports its concrete loop
    /// count, a `Uring` request on a kernel without io_uring reports
    /// the [`EngineKind::Reactor`] it fell back to, and any reactor
    /// request on a non-Linux target reports
    /// [`EngineKind::Threaded`]).
    #[must_use]
    pub fn engine_kind(&self) -> EngineKind {
        self.engine_kind
    }

    /// Runs `f` on the server's engine (inspection from tests and the
    /// transition orchestrator).
    pub fn with_engine<T>(&self, f: impl FnOnce(&ShardedEngine) -> T) -> T {
        f(&self.shared.engine)
    }

    /// The server's live telemetry (per-command latency histograms and
    /// connection gauges).
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// A pull-based registry source for this server, suitable for
    /// [`proteus_obs::MetricsServer::spawn`]. Each call materialises
    /// the full registry: engine counters, connection gauges, and
    /// per-command latency histograms.
    #[must_use]
    pub fn metric_source(&self) -> MetricSource {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || registry(&shared))
    }

    /// The server-side transition tracer (digest-snapshot events seen
    /// on this end of the wire). Hand a clone to
    /// [`proteus_obs::MetricsServer::spawn_traced`] to serve it at
    /// `/trace.jsonl`.
    #[must_use]
    pub fn tracer(&self) -> Arc<EventTracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// Stops accepting connections, quiesces every connection thread
    /// (idle ones are woken by a socket shutdown and the idle read
    /// timeout), and joins them all. In-flight connections finish
    /// their current command; returns promptly even with idle clients
    /// still attached.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        match &mut self.data_plane {
            DataPlane::Threaded {
                accept_thread,
                conn_threads,
            } => {
                // Interrupt connection threads parked in a blocking read.
                for stream in self.shared.conns.lock().values() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                if let Some(handle) = accept_thread.take() {
                    let _ = handle.join();
                }
                for handle in conn_threads.lock().drain(..) {
                    let _ = handle.join();
                }
            }
            #[cfg(target_os = "linux")]
            DataPlane::Reactor(reactor) => reactor.stop(),
            #[cfg(target_os = "linux")]
            DataPlane::Uring(uring) => uring.stop(),
        }
    }
}

/// Starts the thread-per-connection data plane: an accept loop that
/// spawns one serving thread per connection.
fn spawn_threaded(listener: TcpListener, shared: &Arc<Shared>) -> DataPlane {
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_shared = Arc::clone(shared);
    let accept_conn_threads = Arc::clone(&conn_threads);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            // One blocking `accept` syscall per iteration.
            accept_shared.metrics.plane_syscalls.inc();
            if accept_shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let conn_shared = Arc::clone(&accept_shared);
                    let handle = std::thread::spawn(move || {
                        serve_connection(stream, &conn_shared);
                    });
                    let mut threads = accept_conn_threads.lock();
                    // Reap finished handles so long-running servers
                    // don't accumulate one entry per past connection.
                    threads.retain(|h| !h.is_finished());
                    threads.push(handle);
                }
                // A failed accept never kills the listener: the
                // connection-level errors (ECONNABORTED & friends)
                // retry immediately, resource exhaustion backs off
                // first. Only shutdown ends the loop.
                Err(e) => {
                    if let Some(delay) = accept_retry_delay(&e) {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    });
    DataPlane::Threaded {
        accept_thread: Some(accept_thread),
        conn_threads,
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Classifies a parsed command for per-class latency recording. The
/// reserved digest keys are traffic of their own class even though they
/// arrive as plain `get`s.
pub(crate) fn op_class_of(cmd: &RawCommand<'_>) -> OpClass {
    match cmd {
        RawCommand::Get { key } if *key == DIGEST_SNAPSHOT_KEY || *key == DIGEST_KEY => {
            OpClass::Digest
        }
        RawCommand::Get { .. } => OpClass::Get,
        RawCommand::MultiGet { .. } => OpClass::MultiGet,
        RawCommand::Set { .. } => OpClass::Set,
        RawCommand::Add { .. } => OpClass::Add,
        RawCommand::Replace { .. } => OpClass::Replace,
        RawCommand::Delete { .. } => OpClass::Delete,
        RawCommand::Touch { .. } => OpClass::Touch,
        RawCommand::Incr { .. } => OpClass::Incr,
        RawCommand::Decr { .. } => OpClass::Decr,
        RawCommand::Stats | RawCommand::StatsProteus => OpClass::Stats,
        RawCommand::FlushAll | RawCommand::Version | RawCommand::Quit => OpClass::Other,
    }
}

/// A [`TcpStream`] that counts every read and write against the
/// server's `plane_syscalls` metric, so the thread-per-connection
/// plane's syscall rate is measured at the same granularity as the
/// event-driven planes'. (`flush` on a raw socket is a no-op, not a
/// syscall, and is not counted.)
struct CountedStream {
    inner: TcpStream,
    shared: Arc<Shared>,
}

impl std::io::Read for CountedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.shared.metrics.plane_syscalls.inc();
        self.inner.read(buf)
    }
}

impl Write for CountedStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.shared.metrics.plane_syscalls.inc();
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().insert(conn_id, clone);
    }
    shared.metrics.total_connections.inc();
    shared.metrics.curr_connections.inc();
    // Idle read timeout: a parked reader wakes every IDLE_READ_TIMEOUT
    // to re-check the shutdown flag, so `stop()` quiesces instead of
    // waiting for the peer to hang up.
    let _ = stream.set_read_timeout(Some(IDLE_READ_TIMEOUT));
    let peer = stream.try_clone();
    if let Ok(write_half) = peer {
        let mut reader = BufReader::new(CountedStream {
            inner: stream,
            shared: Arc::clone(shared),
        });
        let mut writer = ResponseWriter::new(BufWriter::new(CountedStream {
            inner: write_half,
            shared: Arc::clone(shared),
        }));
        // One buffer pool per connection: after the first few commands
        // parsing stops allocating (keys borrow the pool in place).
        let mut buf = WireBuf::new();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Wait for the first byte of the next command *before*
            // parsing: a timeout here is mere idleness (keep waiting); a
            // timeout mid-command below is a genuinely stalled peer.
            match reader.fill_buf() {
                Ok([]) => break, // clean EOF
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => break,
            }
            let served = match read_raw_command(&mut reader, &mut buf) {
                Ok(command) => {
                    // Time the serve (engine + response assembly), not
                    // the idle wait for the command's first byte.
                    let class = op_class_of(&command);
                    let begin = Instant::now();
                    let served = serve_command(command, shared, &mut writer);
                    shared.metrics.ops.record(class, begin.elapsed());
                    served
                }
                Err(NetError::Io(_)) => break, // disconnect
                Err(e) => {
                    let _ = writer.write(&Response::Error(e.to_string()));
                    let _ = writer.flush();
                    break;
                }
            };
            match served {
                Ok(false) => {}
                Ok(true) => {
                    // quit: push out any responses still queued from
                    // earlier pipelined commands before closing.
                    let _ = writer.flush();
                    break;
                }
                Err(_) => break, // write failure
            }
            // Coalesced flush: while more pipelined input is already
            // buffered, keep the responses queued; flush once per
            // drained input buffer instead of once per response.
            if reader.buffer().is_empty() && writer.flush().is_err() {
                break;
            }
        }
        let _ = writer.get_ref().get_ref().inner.shutdown(Shutdown::Both);
    }
    shared.metrics.curr_connections.dec();
    shared.conns.lock().remove(&conn_id);
}

/// Materialises the full telemetry registry: engine counters,
/// item/connection gauges, and one latency histogram per command
/// class. This is what `stats proteus` flattens to `STAT` pairs and
/// what the `--metrics-addr` endpoint renders as Prometheus text/JSON.
pub(crate) fn registry(shared: &Shared) -> Vec<Metric> {
    let stats = shared.engine.stats();
    let m = &shared.metrics;
    let mut out = vec![
        // Info-gauge idiom: constant 1, identity in the labels, so any
        // scrape names the build and backend that produced it.
        Metric::gauge("proteus_build_info", 1)
            .with_label("version", env!("CARGO_PKG_VERSION"))
            .with_label("engine", shared.engine_kind.name())
            .with_label(
                "storage",
                if shared.engine.slab_stats().is_some() {
                    "slab"
                } else {
                    "heap"
                },
            ),
        Metric::gauge(
            "proteus_uptime_seconds",
            shared.started.elapsed().as_secs() as i64,
        ),
        Metric::gauge("proteus_curr_items", shared.engine.len() as i64),
        Metric::gauge("proteus_bytes", shared.engine.bytes_used() as i64),
        Metric::gauge("proteus_curr_connections", m.curr_connections.get()),
        Metric::counter("proteus_total_connections", m.total_connections.get()),
        Metric::counter("proteus_get_hits_total", stats.hits),
        Metric::counter("proteus_get_misses_total", stats.misses),
        Metric::counter("proteus_sets_total", stats.sets),
        Metric::counter("proteus_deletes_total", stats.deletes),
        Metric::counter("proteus_evictions_total", stats.evictions),
        Metric::counter("proteus_expirations_total", stats.expired),
        Metric::counter("proteus_rejected_sets_total", stats.rejected),
        Metric::counter("proteus_plane_syscalls_total", m.plane_syscalls.get()),
    ];
    if let Some(slab) = shared.engine.slab_stats() {
        out.push(Metric::gauge(
            "proteus_slab_pages_allocated",
            slab.pages_allocated as i64,
        ));
        out.push(Metric::gauge(
            "proteus_slab_pages_pooled",
            slab.pages_pooled as i64,
        ));
        out.push(Metric::gauge(
            "proteus_slab_page_bytes",
            slab.page_bytes as i64,
        ));
        out.push(Metric::gauge(
            "proteus_slab_live_bytes",
            slab.live_bytes() as i64,
        ));
        out.push(Metric::float_gauge(
            "proteus_slab_fragmentation_ratio",
            slab.fragmentation(),
        ));
        out.push(Metric::counter(
            "proteus_slab_heap_fallbacks_total",
            slab.heap_fallbacks,
        ));
        out.push(Metric::counter(
            "proteus_slab_write_blocked_total",
            slab.write_blocked,
        ));
        out.push(Metric::counter(
            "proteus_slab_pages_reassigned_total",
            slab.pages_reassigned,
        ));
        for class in &slab.classes {
            let chunk = class.chunk_size.to_string();
            out.push(
                Metric::gauge("proteus_slab_class_pages", class.pages as i64)
                    .with_label("chunk_size", chunk.clone()),
            );
            out.push(
                Metric::gauge("proteus_slab_class_items", class.items as i64)
                    .with_label("chunk_size", chunk.clone()),
            );
            out.push(
                Metric::gauge("proteus_slab_class_live_bytes", class.live_bytes as i64)
                    .with_label("chunk_size", chunk.clone()),
            );
            out.push(
                Metric::gauge("proteus_slab_class_bytes_wasted", class.bytes_wasted as i64)
                    .with_label("chunk_size", chunk),
            );
        }
    }
    for (class, snap) in m.ops.snapshot_all() {
        out.push(
            Metric::histogram("proteus_command_latency_seconds", snap)
                .with_label("op", class.name()),
        );
    }
    // Trace ring health (recorded / dropped / retained): also lands in
    // `stats proteus` via to_stat_pairs, so ring overflow is visible
    // on the memcached wire too.
    out.extend(trace_metrics(&shared.tracer));
    #[cfg(target_os = "linux")]
    if let Some(rs) = &shared.reactor_stats {
        out.push(Metric::counter(
            "proteus_reactor_accepted_total",
            rs.accepted(),
        ));
        out.push(Metric::counter(
            "proteus_reactor_read_eagain_total",
            rs.read_eagain(),
        ));
        out.push(Metric::counter(
            "proteus_reactor_wakeups_total",
            rs.wakeups(),
        ));
        // events / waits = mean readiness batch per epoll_wait, the
        // epoll analogue of the uring plane's cqes / enters.
        out.push(Metric::counter("proteus_reactor_waits_total", rs.waits()));
        out.push(Metric::counter("proteus_reactor_events_total", rs.events()));
        for (index, conns) in rs.loop_connections().into_iter().enumerate() {
            out.push(
                Metric::gauge("proteus_reactor_loop_connections", conns)
                    .with_label("loop", index.to_string()),
            );
        }
    }
    #[cfg(target_os = "linux")]
    if let Some(us) = &shared.uring_stats {
        out.push(Metric::counter(
            "proteus_uring_accepted_total",
            us.accepted(),
        ));
        // sqes / enters and cqes / enters are the submission and
        // completion batch sizes one io_uring_enter syscall carries.
        out.push(Metric::counter("proteus_uring_enters_total", us.enters()));
        out.push(Metric::counter("proteus_uring_sqes_total", us.sqes()));
        out.push(Metric::counter("proteus_uring_cqes_total", us.cqes()));
        out.push(Metric::counter("proteus_uring_wakeups_total", us.wakeups()));
        out.push(Metric::counter(
            "proteus_uring_buf_starved_total",
            us.buf_starved(),
        ));
        for (index, conns) in us.loop_connections().into_iter().enumerate() {
            out.push(
                Metric::gauge("proteus_uring_loop_connections", conns)
                    .with_label("loop", index.to_string()),
            );
        }
    }
    out
}

/// Executes one parsed command and queues its response (no flush).
/// Returns `Ok(true)` for `quit`. The `get` paths write borrowed keys
/// and shared value buffers straight into the response writer, so a
/// warmed hit copies nothing.
pub(crate) fn serve_command<W: Write>(
    command: RawCommand<'_>,
    shared: &Shared,
    writer: &mut ResponseWriter<W>,
) -> Result<bool, NetError> {
    match command {
        RawCommand::Quit => return Ok(true),
        RawCommand::Get { key } => match lookup(shared, key) {
            Some((flags, data)) => writer.write_single_value(key, flags, &data)?,
            None => writer.write(&Response::Miss)?,
        },
        RawCommand::MultiGet { keys } => {
            // Memcached semantics: each key is served independently
            // (misses omitted), in one response round trip.
            let hits: Vec<(&[u8], u32, SharedBytes)> = keys
                .iter()
                .filter_map(|&k| lookup(shared, k).map(|(flags, data)| (k, flags, data)))
                .collect();
            writer.write_values(hits.iter().map(|(k, flags, data)| (*k, *flags, data)))?;
        }
        other => writer.write(&execute(other, shared))?,
    }
    Ok(false)
}

/// Applies `op` to the ASCII-decimal value stored under `key`, storing
/// and returning the new value — memcached `incr`/`decr` semantics
/// (missing key → `NOT_FOUND`; non-numeric value → error; the item's
/// original expiry is preserved, not reset).
fn numeric_op(shared: &Shared, key: &[u8], op: impl FnOnce(u64) -> u64) -> Response {
    let now = shared.now();
    // Probe and store under one shard lock so concurrent incr/decr on
    // the same key never lose updates.
    shared.engine.with_key_shard(key, |engine| {
        // An expired counter must read as absent, not resurrect.
        if !engine.probe(key, now) {
            return Response::NotFound;
        }
        let deadline = engine.expiry_of(key).expect("probed present");
        let Some(current) = engine.peek(key) else {
            return Response::NotFound;
        };
        let Ok(text) = std::str::from_utf8(current) else {
            return Response::Error("cannot increment or decrement non-numeric value".into());
        };
        let Ok(value) = text.trim().parse::<u64>() else {
            return Response::Error("cannot increment or decrement non-numeric value".into());
        };
        let next = op(value);
        // Rewrite the counter under the item's original deadline —
        // memcached's incr/decr never extend or reset the TTL.
        engine.put_with_deadline(key, next.to_string().into_bytes(), now, deadline);
        Response::Numeric(next)
    })
}

/// Serves one key of a `get`, including the paper's two reserved keys.
/// Returns `(flags, value)` on a hit — the caller echoes the request's
/// own (borrowed) key bytes, so no key is ever copied for a response —
/// or `None` on a miss (multi-key gets omit misses).
fn lookup(shared: &Shared, key: &[u8]) -> Option<(u32, SharedBytes)> {
    if key == DIGEST_SNAPSHOT_KEY {
        let snapshot = shared.engine.digest_snapshot();
        let bytes: SharedBytes = DigestSnapshot::from_filter(&snapshot).to_bytes().into();
        *shared.snapshot.lock() = Some(bytes);
        // The server-side half of a digest broadcast: this is the event
        // the aggregator correlates with the client's DigestBroadcast.
        shared.tracer.record(TraceKind::DigestSnapshot);
        return Some((0, SharedBytes::from(&b"OK"[..])));
    }
    if key == DIGEST_KEY {
        return shared.snapshot.lock().clone().map(|data| (0, data));
    }
    let now = shared.now();
    shared.engine.get(key, now).map(|data| (0, data))
}

/// Maps the protocol's `exptime` seconds to an engine TTL
/// (0 = never expires, memcached semantics).
fn expiry(exptime: u32) -> Option<SimDuration> {
    (exptime > 0).then(|| SimDuration::from_secs(u64::from(exptime)))
}

/// Maps a storage outcome onto the wire: a rejected item (larger than
/// the shard's whole budget) answers like memcached's
/// `SERVER_ERROR object too large for cache` instead of silently
/// evicting the world and failing anyway.
fn stored_reply(outcome: proteus_cache::StoreOutcome) -> Response {
    if outcome.stored {
        Response::Stored
    } else {
        Response::Error("object too large for cache".into())
    }
}

fn execute(command: RawCommand<'_>, shared: &Shared) -> Response {
    match command {
        RawCommand::Set {
            key, data, exptime, ..
        } => {
            let now = shared.now();
            // The parsed data block is already a shared buffer; the
            // heap backend stores it as-is with no further copy (the
            // slab backend copies it once into a page).
            let outcome = shared
                .engine
                .put_with_expiry(key, data, now, expiry(exptime));
            stored_reply(outcome)
        }
        RawCommand::Add {
            key, data, exptime, ..
        } => {
            let now = shared.now();
            // `probe` reaps expired-but-unreaped items (so `add`
            // succeeds after expiry) but, unlike a get, moves no
            // hit/miss statistics: a storage command's presence check
            // is not a cache read. Probe and store share one shard
            // lock.
            shared.engine.with_key_shard(key, |engine| {
                if engine.probe(key, now) {
                    Response::NotStored
                } else {
                    stored_reply(engine.put_with_expiry(key, data, now, expiry(exptime)))
                }
            })
        }
        RawCommand::Replace {
            key, data, exptime, ..
        } => {
            let now = shared.now();
            shared.engine.with_key_shard(key, |engine| {
                if engine.probe(key, now) {
                    stored_reply(engine.put_with_expiry(key, data, now, expiry(exptime)))
                } else {
                    Response::NotStored
                }
            })
        }
        RawCommand::Touch { key, .. } => {
            let now = shared.now();
            if shared.engine.touch(key, now) {
                Response::Touched
            } else {
                Response::NotFound
            }
        }
        RawCommand::Incr { key, delta } => numeric_op(shared, key, |v| v.saturating_add(delta)),
        RawCommand::Decr { key, delta } => numeric_op(shared, key, |v| v.saturating_sub(delta)),
        RawCommand::Delete { key } => {
            if shared.engine.delete(key) {
                Response::Deleted
            } else {
                Response::NotFound
            }
        }
        RawCommand::FlushAll => {
            shared.engine.clear();
            Response::Ok
        }
        RawCommand::Version => {
            Response::Version(format!("proteus-cache {}", env!("CARGO_PKG_VERSION")))
        }
        RawCommand::Stats => {
            let stats = shared.engine.stats();
            let m = &shared.metrics;
            let mut pairs = vec![
                (
                    "uptime".into(),
                    shared.started.elapsed().as_secs().to_string(),
                ),
                ("curr_items".into(), shared.engine.len().to_string()),
                ("bytes".into(), shared.engine.bytes_used().to_string()),
                (
                    "curr_connections".into(),
                    m.curr_connections.get().to_string(),
                ),
                (
                    "total_connections".into(),
                    m.total_connections.get().to_string(),
                ),
                ("get_hits".into(), stats.hits.to_string()),
                ("get_misses".into(), stats.misses.to_string()),
                ("cmd_set".into(), stats.sets.to_string()),
                ("delete_hits".into(), stats.deletes.to_string()),
                ("evictions".into(), stats.evictions.to_string()),
                ("expirations".into(), stats.expired.to_string()),
                ("rejected_sets".into(), stats.rejected.to_string()),
                (
                    "digest_estimated_items".into(),
                    shared
                        .engine
                        .digest_estimate()
                        .map_or_else(|| "saturated".into(), |e| format!("{e:.0}")),
                ),
            ];
            // Headline percentiles for the two hot classes; the full
            // per-class breakdown lives behind `stats proteus`.
            for class in [OpClass::Get, OpClass::Set] {
                if let Some(p) = m.ops.snapshot(class).percentiles() {
                    let name = class.name();
                    pairs.push((format!("{name}_p50_us"), p.p50.as_micros().to_string()));
                    pairs.push((format!("{name}_p99_us"), p.p99.as_micros().to_string()));
                    pairs.push((format!("{name}_p999_us"), p.p999.as_micros().to_string()));
                }
            }
            Response::Stats(pairs)
        }
        RawCommand::StatsProteus => {
            Response::Stats(to_stat_pairs(&registry(shared)).into_iter().collect())
        }
        RawCommand::Get { .. } | RawCommand::MultiGet { .. } | RawCommand::Quit => {
            unreachable!("handled by serve_command")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::CacheClient;

    fn test_server() -> CacheServer {
        CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20))
            .expect("bind ephemeral port")
    }

    #[test]
    fn spawn_serve_stop() {
        let server = test_server();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"a", b"1").unwrap();
        assert_eq!(client.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(client.get(b"missing").unwrap(), None);
        assert!(client.delete(b"a").unwrap());
        assert!(!client.delete(b"a").unwrap());
        server.stop();
    }

    #[test]
    fn engine_is_shared_across_connections() {
        let server = test_server();
        let c1 = CacheClient::connect(server.addr()).unwrap();
        let c2 = CacheClient::connect(server.addr()).unwrap();
        c1.set(b"shared", b"value").unwrap();
        assert_eq!(c2.get(b"shared").unwrap().as_deref(), Some(&b"value"[..]));
        server.stop();
    }

    #[test]
    fn stats_reflect_operations() {
        let server = test_server();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"k", b"v").unwrap();
        let _ = client.get(b"k").unwrap();
        let _ = client.get(b"absent").unwrap();
        // Storage-command probes are not cache reads: an `add` on a
        // present key must not count a get hit, a `replace` on a
        // missing key must not count a get miss, and successful probes
        // are equally silent — memcached semantics, and what keeps the
        // hit-ratio benches honest.
        assert!(!client.add(b"k", b"other").unwrap());
        assert!(client.add(b"fresh", b"v").unwrap());
        assert!(!client.replace(b"nothere", b"v").unwrap());
        assert!(client.replace(b"k", b"v2").unwrap());
        let stats = client.stats().unwrap();
        let lookup = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(lookup("get_hits"), "1");
        assert_eq!(lookup("get_misses"), "1");
        // set + stored add + stored replace each count as a set.
        assert_eq!(lookup("cmd_set"), "3");
        assert_eq!(lookup("curr_items"), "2");
        server.stop();
    }

    #[test]
    fn incr_preserves_the_items_expiry() {
        use crate::protocol::{read_response, write_command, Command};
        use std::io::{BufReader, BufWriter};
        let server = test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        write_command(
            &mut writer,
            &Command::Set {
                key: b"c".to_vec(),
                flags: 0,
                exptime: 60,
                data: b"5".to_vec().into(),
            },
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap(), Response::Stored);
        let deadline_before = server
            .with_engine(|e| e.with_key_shard(b"c", |se| se.expiry_of(b"c")))
            .expect("item present");
        assert!(deadline_before < SimTime::MAX, "set stored a real TTL");
        write_command(
            &mut writer,
            &Command::Incr {
                key: b"c".to_vec(),
                delta: 3,
            },
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap(), Response::Numeric(8));
        let deadline_after = server
            .with_engine(|e| e.with_key_shard(b"c", |se| se.expiry_of(b"c")))
            .expect("item still present");
        assert_eq!(
            deadline_after, deadline_before,
            "incr must not reset or drop the original expiry"
        );
        server.stop();
    }

    #[test]
    fn accept_errors_never_kill_the_listener() {
        use std::io::{Error, ErrorKind};
        // Connection-level aborts retry immediately...
        assert_eq!(
            accept_retry_delay(&Error::from(ErrorKind::ConnectionAborted)),
            None
        );
        assert_eq!(
            accept_retry_delay(&Error::from(ErrorKind::ConnectionReset)),
            None
        );
        // ...resource exhaustion backs off first (EMFILE/ENFILE land in
        // Uncategorized, so raw OS codes are what's matched).
        for code in [23, 24, 12, 105] {
            assert_eq!(
                accept_retry_delay(&Error::from_raw_os_error(code)),
                Some(ACCEPT_EXHAUSTED_BACKOFF),
                "os error {code}"
            );
        }
        assert_eq!(
            accept_retry_delay(&Error::from(ErrorKind::OutOfMemory)),
            Some(ACCEPT_EXHAUSTED_BACKOFF)
        );
        // The raw-errno core — shared with the uring multishot-accept
        // path, whose CQEs carry negated errnos — classifies the same
        // codes identically.
        for code in [23, 24, 12, 105] {
            assert_eq!(
                accept_retry_delay_os(code),
                Some(ACCEPT_EXHAUSTED_BACKOFF),
                "os error {code}"
            );
        }
        assert_eq!(accept_retry_delay_os(103), None); // ECONNABORTED: retry now
    }

    #[test]
    fn stop_returns_promptly_with_an_idle_client_attached() {
        let server = test_server();
        // A live client connection parked in the server's read loop...
        let idle = TcpStream::connect(server.addr()).unwrap();
        let active = CacheClient::connect(server.addr()).unwrap();
        active.set(b"k", b"v").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // ...must not stall shutdown: the socket shutdown plus the idle
        // read timeout wake the connection thread, and stop() joins it.
        let begin = std::time::Instant::now();
        server.stop();
        assert!(
            begin.elapsed() < std::time::Duration::from_secs(1),
            "stop() took {:?} with an idle client attached",
            begin.elapsed()
        );
        drop(idle);
    }

    #[test]
    fn digest_keys_follow_the_paper_protocol() {
        let server = test_server();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"hot", b"data").unwrap();
        // Before a snapshot is taken, BLOOM_FILTER misses.
        assert_eq!(client.get(DIGEST_KEY).unwrap(), None);
        // get SET_BLOOM_FILTER takes a snapshot...
        assert!(client.get(DIGEST_SNAPSHOT_KEY).unwrap().is_some());
        // ...and get BLOOM_FILTER retrieves it as plain value bytes.
        let digest = client.fetch_digest().unwrap().unwrap();
        assert!(digest.contains(b"hot"));
        assert!(!digest.contains(b"cold"));
        server.stop();
    }

    #[test]
    fn snapshot_is_a_point_in_time() {
        let server = test_server();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"early", b"1").unwrap();
        client.get(DIGEST_SNAPSHOT_KEY).unwrap();
        client.set(b"late", b"2").unwrap();
        let digest = client.fetch_digest().unwrap().unwrap();
        assert!(digest.contains(b"early"));
        assert!(
            !digest.contains(b"late"),
            "snapshot must not see later sets"
        );
        server.stop();
    }

    #[test]
    fn malformed_input_gets_an_error_and_close() {
        use std::io::{Read, Write};
        let server = test_server();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"frobnicate now\r\n").unwrap();
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("ERROR"), "got {text:?}");
        server.stop();
    }

    #[test]
    fn drop_stops_the_server() {
        let addr;
        {
            let server = test_server();
            addr = server.addr();
        }
        // After drop, new connections are refused or die immediately.
        if let Ok(stream) = TcpStream::connect(addr) {
            // Accept loop has exited; the connection cannot be served.
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = std::io::BufRead::read_line(&mut reader, &mut line);
            assert!(line.is_empty());
        } // a refused connection is also acceptable
    }
}
