//! The wire protocol: a memcached-flavoured text protocol.
//!
//! Grammar (all lines CRLF-terminated):
//!
//! ```text
//! get <key> [<key> ...]
//! set <key> <flags> <exptime> <bytes>\r\n<data of `bytes` octets>
//! add <key> <flags> <exptime> <bytes>\r\n<data>      (store if absent)
//! replace <key> <flags> <exptime> <bytes>\r\n<data>  (store if present)
//! delete <key>
//! touch <key> <exptime>
//! incr <key> <delta>
//! decr <key> <delta>
//! stats
//! flush_all
//! version
//! quit
//! ```
//!
//! Responses:
//!
//! ```text
//! VALUE <key> <flags> <bytes>\r\n<data>\r\nEND     (get hit)
//! END                                             (get miss)
//! VALUE ...\r\n<data>\r\nVALUE ...\r\n<data>\r\nEND (multi-key get;
//!                                                  misses are omitted)
//! STORED / NOT_STORED / DELETED / NOT_FOUND / TOUCHED / OK
//! <number>                                        (incr/decr result)
//! VERSION <string>
//! STAT <name> <value> ... END                     (stats)
//! ERROR <message>
//! ```
//!
//! Two keys are reserved exactly as in the paper's modified memcached:
//! `get SET_BLOOM_FILTER` makes the server snapshot its digest, and
//! `get BLOOM_FILTER` retrieves the snapshot bytes as a normal value —
//! "it exactly follows Memcached protocol, and should be compatible
//! with all Memcached client packages".

use std::io::{BufRead, Write};

use crate::error::NetError;

/// Reserved key: take a digest snapshot.
pub const DIGEST_SNAPSHOT_KEY: &[u8] = b"SET_BLOOM_FILTER";
/// Reserved key: retrieve the digest snapshot.
pub const DIGEST_KEY: &[u8] = b"BLOOM_FILTER";

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get <key>`
    Get {
        /// The requested key.
        key: Vec<u8>,
    },
    /// `get <key> <key> ...`: memcached-style multi-key get. All hits
    /// come back as consecutive `VALUE` blocks in one response;
    /// misses are silently omitted.
    MultiGet {
        /// The requested keys, in request order (at least two).
        keys: Vec<Vec<u8>>,
    },
    /// `set <key> <flags> <exptime> <bytes>` + data block.
    Set {
        /// The key to store.
        key: Vec<u8>,
        /// Opaque client flags (stored but unused).
        flags: u32,
        /// Expiry in seconds (0 = never); advisory.
        exptime: u32,
        /// The value bytes.
        data: Vec<u8>,
    },
    /// `add <key> ...`: store only if the key is absent.
    Add {
        /// The key to store.
        key: Vec<u8>,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes.
        data: Vec<u8>,
    },
    /// `replace <key> ...`: store only if the key is present.
    Replace {
        /// The key to store.
        key: Vec<u8>,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes.
        data: Vec<u8>,
    },
    /// `delete <key>`
    Delete {
        /// The key to remove.
        key: Vec<u8>,
    },
    /// `touch <key> <exptime>`: refresh recency without reading.
    Touch {
        /// The key to touch.
        key: Vec<u8>,
        /// New expiry in seconds (advisory).
        exptime: u32,
    },
    /// `incr <key> <delta>`: add to a numeric value.
    Incr {
        /// The key holding an ASCII number.
        key: Vec<u8>,
        /// Amount to add.
        delta: u64,
    },
    /// `decr <key> <delta>`: subtract from a numeric value
    /// (floored at zero, as memcached does).
    Decr {
        /// The key holding an ASCII number.
        key: Vec<u8>,
        /// Amount to subtract.
        delta: u64,
    },
    /// `stats`
    Stats,
    /// `flush_all`: clear the cache.
    FlushAll,
    /// `version`
    Version,
    /// `quit`
    Quit,
}

/// One `VALUE` block inside a multi-key get response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueItem {
    /// Echoed key.
    pub key: Vec<u8>,
    /// Echoed flags.
    pub flags: u32,
    /// The value bytes.
    pub data: Vec<u8>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A `get` hit.
    Value {
        /// Echoed key.
        key: Vec<u8>,
        /// Echoed flags.
        flags: u32,
        /// The value bytes.
        data: Vec<u8>,
    },
    /// Two or more `VALUE` blocks from a multi-key get. An empty or
    /// single-item list is never produced by
    /// [`read_response`](crate::protocol::read_response): zero hits
    /// parse as [`Miss`](Response::Miss), one as
    /// [`Value`](Response::Value).
    Values(Vec<ValueItem>),
    /// A `get` miss.
    Miss,
    /// A successful `set`/`add`/`replace`.
    Stored,
    /// An `add` of a present key or `replace` of an absent one.
    NotStored,
    /// A successful `delete`.
    Deleted,
    /// The key was absent (`delete`, `touch`, `incr`, `decr`).
    NotFound,
    /// A successful `touch`.
    Touched,
    /// The numeric result of `incr`/`decr`.
    Numeric(u64),
    /// Generic success (`flush_all`).
    Ok,
    /// Server version string.
    Version(String),
    /// `stats` payload: `(name, value)` pairs.
    Stats(Vec<(String, String)>),
    /// Server-side error.
    Error(String),
}

fn valid_key(key: &[u8]) -> bool {
    !key.is_empty() && key.len() <= 250 && key.iter().all(|&b| b > 32 && b != 127)
}

/// Reads one command from a buffered stream.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on malformed input and
/// [`NetError::Io`] on socket errors (including clean EOF, surfaced as
/// `UnexpectedEof` before any bytes of a command are read — callers
/// treat that as connection close).
pub fn read_command<R: BufRead>(reader: &mut R) -> Result<Command, NetError> {
    let mut line = Vec::new();
    read_line(reader, &mut line)?;
    let text = std::str::from_utf8(&line)
        .map_err(|_| NetError::Protocol("command line is not UTF-8".into()))?;
    let mut parts = text.split_ascii_whitespace();
    let verb = parts
        .next()
        .ok_or_else(|| NetError::Protocol("empty command".into()))?;
    match verb {
        "get" => {
            let keys: Vec<Vec<u8>> = parts.map(|p| p.as_bytes().to_vec()).collect();
            if keys.is_empty() {
                return Err(NetError::Protocol("get needs a key".into()));
            }
            if keys.len() > 1024 {
                return Err(NetError::Protocol("too many keys in one get".into()));
            }
            if keys.iter().any(|k| !valid_key(k)) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            if keys.len() == 1 {
                let key = keys.into_iter().next().expect("one key");
                Ok(Command::Get { key })
            } else {
                Ok(Command::MultiGet { keys })
            }
        }
        "set" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("set needs a key".into()))?
                .as_bytes()
                .to_vec();
            if !valid_key(&key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let flags: u32 = parse_field(parts.next(), "flags")?;
            let exptime: u32 = parse_field(parts.next(), "exptime")?;
            let bytes: usize = parse_field(parts.next(), "bytes")?;
            if bytes > 64 << 20 {
                return Err(NetError::Protocol("value too large".into()));
            }
            let mut data = vec![0u8; bytes];
            std::io::Read::read_exact(reader, &mut data)?;
            let mut crlf = [0u8; 2];
            std::io::Read::read_exact(reader, &mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(NetError::Protocol("data block not CRLF-terminated".into()));
            }
            Ok(Command::Set {
                key,
                flags,
                exptime,
                data,
            })
        }
        "add" | "replace" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("storage command needs a key".into()))?
                .as_bytes()
                .to_vec();
            if !valid_key(&key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let flags: u32 = parse_field(parts.next(), "flags")?;
            let exptime: u32 = parse_field(parts.next(), "exptime")?;
            let bytes: usize = parse_field(parts.next(), "bytes")?;
            if bytes > 64 << 20 {
                return Err(NetError::Protocol("value too large".into()));
            }
            let mut data = vec![0u8; bytes];
            std::io::Read::read_exact(reader, &mut data)?;
            let mut crlf = [0u8; 2];
            std::io::Read::read_exact(reader, &mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(NetError::Protocol("data block not CRLF-terminated".into()));
            }
            if verb == "add" {
                Ok(Command::Add {
                    key,
                    flags,
                    exptime,
                    data,
                })
            } else {
                Ok(Command::Replace {
                    key,
                    flags,
                    exptime,
                    data,
                })
            }
        }
        "delete" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("delete needs a key".into()))?
                .as_bytes()
                .to_vec();
            if !valid_key(&key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            Ok(Command::Delete { key })
        }
        "touch" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("touch needs a key".into()))?
                .as_bytes()
                .to_vec();
            if !valid_key(&key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let exptime: u32 = parse_field(parts.next(), "exptime")?;
            Ok(Command::Touch { key, exptime })
        }
        "incr" | "decr" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("incr/decr needs a key".into()))?
                .as_bytes()
                .to_vec();
            if !valid_key(&key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let delta: u64 = parse_field(parts.next(), "delta")?;
            if verb == "incr" {
                Ok(Command::Incr { key, delta })
            } else {
                Ok(Command::Decr { key, delta })
            }
        }
        "stats" => Ok(Command::Stats),
        "flush_all" => Ok(Command::FlushAll),
        "version" => Ok(Command::Version),
        "quit" => Ok(Command::Quit),
        other => Err(NetError::Protocol(format!("unknown verb {other:?}"))),
    }
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str) -> Result<T, NetError> {
    field
        .ok_or_else(|| NetError::Protocol(format!("missing {name}")))?
        .parse()
        .map_err(|_| NetError::Protocol(format!("malformed {name}")))
}

/// Writes one command.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_command<W: Write>(writer: &mut W, cmd: &Command) -> Result<(), NetError> {
    match cmd {
        Command::Get { key } => {
            writer.write_all(b"get ")?;
            writer.write_all(key)?;
            writer.write_all(b"\r\n")?;
        }
        Command::MultiGet { keys } => {
            writer.write_all(b"get")?;
            for key in keys {
                writer.write_all(b" ")?;
                writer.write_all(key)?;
            }
            writer.write_all(b"\r\n")?;
        }
        Command::Set {
            key,
            flags,
            exptime,
            data,
        } => {
            writer.write_all(b"set ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {exptime} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Add {
            key,
            flags,
            exptime,
            data,
        } => {
            writer.write_all(b"add ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {exptime} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Replace {
            key,
            flags,
            exptime,
            data,
        } => {
            writer.write_all(b"replace ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {exptime} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Delete { key } => {
            writer.write_all(b"delete ")?;
            writer.write_all(key)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Touch { key, exptime } => {
            writer.write_all(b"touch ")?;
            writer.write_all(key)?;
            write!(writer, " {exptime}\r\n")?;
        }
        Command::Incr { key, delta } => {
            writer.write_all(b"incr ")?;
            writer.write_all(key)?;
            write!(writer, " {delta}\r\n")?;
        }
        Command::Decr { key, delta } => {
            writer.write_all(b"decr ")?;
            writer.write_all(key)?;
            write!(writer, " {delta}\r\n")?;
        }
        Command::Stats => writer.write_all(b"stats\r\n")?,
        Command::FlushAll => writer.write_all(b"flush_all\r\n")?,
        Command::Version => writer.write_all(b"version\r\n")?,
        Command::Quit => writer.write_all(b"quit\r\n")?,
    }
    writer.flush()?;
    Ok(())
}

/// Writes one response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> Result<(), NetError> {
    match resp {
        Response::Value { key, flags, data } => {
            writer.write_all(b"VALUE ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\nEND\r\n")?;
        }
        Response::Values(items) => {
            for item in items {
                writer.write_all(b"VALUE ")?;
                writer.write_all(&item.key)?;
                write!(writer, " {} {}\r\n", item.flags, item.data.len())?;
                writer.write_all(&item.data)?;
                writer.write_all(b"\r\n")?;
            }
            writer.write_all(b"END\r\n")?;
        }
        Response::Miss => writer.write_all(b"END\r\n")?,
        Response::Stored => writer.write_all(b"STORED\r\n")?,
        Response::NotStored => writer.write_all(b"NOT_STORED\r\n")?,
        Response::Deleted => writer.write_all(b"DELETED\r\n")?,
        Response::NotFound => writer.write_all(b"NOT_FOUND\r\n")?,
        Response::Touched => writer.write_all(b"TOUCHED\r\n")?,
        Response::Numeric(v) => write!(writer, "{v}\r\n")?,
        Response::Ok => writer.write_all(b"OK\r\n")?,
        Response::Version(v) => write!(writer, "VERSION {}\r\n", v.replace(['\r', '\n'], " "))?,
        Response::Stats(pairs) => {
            for (name, value) in pairs {
                write!(writer, "STAT {name} {value}\r\n")?;
            }
            writer.write_all(b"END\r\n")?;
        }
        Response::Error(msg) => {
            write!(writer, "ERROR {}\r\n", msg.replace(['\r', '\n'], " "))?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads one response.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on malformed responses and
/// [`NetError::Io`] on socket errors.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, NetError> {
    let mut line = Vec::new();
    read_line(reader, &mut line)?;
    let text = std::str::from_utf8(&line)
        .map_err(|_| NetError::Protocol("response line is not UTF-8".into()))?;
    if text == "END" {
        return Ok(Response::Miss);
    }
    if text == "STORED" {
        return Ok(Response::Stored);
    }
    if text == "NOT_STORED" {
        return Ok(Response::NotStored);
    }
    if text == "DELETED" {
        return Ok(Response::Deleted);
    }
    if text == "NOT_FOUND" {
        return Ok(Response::NotFound);
    }
    if text == "TOUCHED" {
        return Ok(Response::Touched);
    }
    if text == "OK" {
        return Ok(Response::Ok);
    }
    if let Some(v) = text.strip_prefix("VERSION ") {
        return Ok(Response::Version(v.to_string()));
    }
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        let value = text
            .parse()
            .map_err(|_| NetError::Protocol("numeric response out of range".into()))?;
        return Ok(Response::Numeric(value));
    }
    if let Some(msg) = text.strip_prefix("ERROR ") {
        return Ok(Response::Error(msg.to_string()));
    }
    if text == "ERROR" {
        return Ok(Response::Error(String::new()));
    }
    if text.starts_with("STAT ") {
        let mut pairs = Vec::new();
        let mut current = text.to_string();
        loop {
            if current == "END" {
                return Ok(Response::Stats(pairs));
            }
            let rest = current
                .strip_prefix("STAT ")
                .ok_or_else(|| NetError::Protocol(format!("bad stats line {current:?}")))?;
            let (name, value) = rest
                .split_once(' ')
                .ok_or_else(|| NetError::Protocol("stats line missing value".into()))?;
            pairs.push((name.to_string(), value.to_string()));
            let mut next = Vec::new();
            read_line(reader, &mut next)?;
            current = String::from_utf8(next)
                .map_err(|_| NetError::Protocol("stats line is not UTF-8".into()))?;
        }
    }
    if text.starts_with("VALUE ") {
        // One or more VALUE blocks, then a lone END. Zero blocks never
        // reach here (that is the bare-END Miss case above); one block
        // parses as Value so single-key responses are unchanged.
        let mut items = Vec::new();
        let mut current = text.to_string();
        loop {
            let rest = current
                .strip_prefix("VALUE ")
                .ok_or_else(|| NetError::Protocol(format!("bad value line {current:?}")))?;
            let mut parts = rest.split_ascii_whitespace();
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("VALUE missing key".into()))?
                .as_bytes()
                .to_vec();
            let flags: u32 = parse_field(parts.next(), "flags")?;
            let bytes: usize = parse_field(parts.next(), "bytes")?;
            if bytes > 64 << 20 {
                return Err(NetError::Protocol("value too large".into()));
            }
            let mut data = vec![0u8; bytes];
            std::io::Read::read_exact(reader, &mut data)?;
            let mut tail = [0u8; 2];
            std::io::Read::read_exact(reader, &mut tail)?;
            if &tail != b"\r\n" {
                return Err(NetError::Protocol("value not CRLF-terminated".into()));
            }
            items.push(ValueItem { key, flags, data });
            if items.len() > 1024 {
                return Err(NetError::Protocol("too many VALUE blocks".into()));
            }
            let mut next = Vec::new();
            read_line(reader, &mut next)?;
            if next == b"END" {
                break;
            }
            current = String::from_utf8(next)
                .map_err(|_| NetError::Protocol("value line is not UTF-8".into()))?;
        }
        if items.len() == 1 {
            let ValueItem { key, flags, data } = items.into_iter().next().expect("one item");
            return Ok(Response::Value { key, flags, data });
        }
        return Ok(Response::Values(items));
    }
    Err(NetError::Protocol(format!(
        "unrecognized response {text:?}"
    )))
}

/// Reads a CRLF-terminated line (without the terminator).
fn read_line<R: BufRead>(reader: &mut R, out: &mut Vec<u8>) -> Result<(), NetError> {
    out.clear();
    loop {
        let mut byte = [0u8; 1];
        std::io::Read::read_exact(reader, &mut byte)?;
        if byte[0] == b'\n' {
            if out.last() == Some(&b'\r') {
                out.pop();
            }
            return Ok(());
        }
        out.push(byte[0]);
        if out.len() > 1 << 20 {
            return Err(NetError::Protocol("line too long".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_command(cmd: Command) -> Command {
        let mut buf = Vec::new();
        write_command(&mut buf, &cmd).unwrap();
        read_command(&mut &buf[..]).unwrap()
    }

    fn roundtrip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut &buf[..]).unwrap()
    }

    #[test]
    fn commands_roundtrip() {
        for cmd in [
            Command::Get {
                key: b"page:1".to_vec(),
            },
            Command::Set {
                key: b"k".to_vec(),
                flags: 7,
                exptime: 60,
                data: b"hello\r\nworld".to_vec(), // binary-safe data block
            },
            Command::Delete { key: b"k".to_vec() },
            Command::Stats,
            Command::Quit,
        ] {
            assert_eq!(roundtrip_command(cmd.clone()), cmd);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Value {
                key: b"k".to_vec(),
                flags: 1,
                data: vec![0, 1, 2, 255],
            },
            Response::Miss,
            Response::Stored,
            Response::Deleted,
            Response::NotFound,
            Response::Stats(vec![
                ("hits".into(), "10".into()),
                ("misses".into(), "2".into()),
            ]),
            Response::Error("kaboom".into()),
        ] {
            assert_eq!(roundtrip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn rejects_malformed_commands() {
        for bad in [
            "\r\n",
            "get\r\n",
            "frob k\r\n",
            "set k x 0 5\r\nhello\r\n",
            "get bad key\r\n extra",
        ] {
            // Either a protocol error or (for trailing garbage) a clean
            // first parse — never a panic.
            let _ = read_command(&mut bad.as_bytes());
        }
        assert!(matches!(
            read_command(&mut "frob k\r\n".as_bytes()),
            Err(NetError::Protocol(_))
        ));
        assert!(matches!(
            read_command(&mut "set k 0 0 abc\r\n".as_bytes()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn rejects_invalid_keys() {
        assert!(matches!(
            read_command(&mut "get \r\n".as_bytes()),
            Err(NetError::Protocol(_))
        ));
        let long = format!("get {}\r\n", "k".repeat(300));
        assert!(matches!(
            read_command(&mut long.as_bytes()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn set_data_block_must_be_crlf_terminated() {
        let bad = b"set k 0 0 2\r\nhiXX".to_vec();
        assert!(matches!(
            read_command(&mut &bad[..]),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn eof_surfaces_as_io() {
        assert!(matches!(read_command(&mut &b""[..]), Err(NetError::Io(_))));
    }

    #[test]
    fn multi_key_get_roundtrips() {
        let cmd = Command::MultiGet {
            keys: vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()],
        };
        let mut buf = Vec::new();
        write_command(&mut buf, &cmd).unwrap();
        assert_eq!(buf, b"get a b c\r\n");
        assert_eq!(read_command(&mut &buf[..]).unwrap(), cmd);
    }

    #[test]
    fn single_key_get_stays_get() {
        // `get k` must keep parsing to Get, not a one-key MultiGet, so
        // single-key traffic is byte-identical to the previous protocol.
        assert_eq!(
            read_command(&mut &b"get k\r\n"[..]).unwrap(),
            Command::Get { key: b"k".to_vec() }
        );
    }

    #[test]
    fn multi_get_rejects_any_invalid_key() {
        let long = format!("get ok {}\r\n", "k".repeat(300));
        assert!(matches!(
            read_command(&mut long.as_bytes()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn values_roundtrip_and_degenerate_cases_normalize() {
        let items = vec![
            ValueItem {
                key: b"a".to_vec(),
                flags: 1,
                data: b"first".to_vec(),
            },
            ValueItem {
                key: b"c".to_vec(),
                flags: 0,
                data: vec![0, 255, b'\r', b'\n'],
            },
        ];
        let resp = Response::Values(items.clone());
        assert_eq!(roundtrip_response(resp.clone()), resp);
        // Zero hits on the wire are exactly a miss; one hit is exactly
        // a single-key Value. Both normalize on read.
        assert_eq!(
            roundtrip_response(Response::Values(Vec::new())),
            Response::Miss
        );
        assert_eq!(
            roundtrip_response(Response::Values(items[..1].to_vec())),
            Response::Value {
                key: b"a".to_vec(),
                flags: 1,
                data: b"first".to_vec(),
            }
        );
    }

    #[test]
    fn multi_value_wire_bytes_are_memcached_shaped() {
        let resp = Response::Values(vec![
            ValueItem {
                key: b"x".to_vec(),
                flags: 0,
                data: b"1".to_vec(),
            },
            ValueItem {
                key: b"y".to_vec(),
                flags: 2,
                data: b"22".to_vec(),
            },
        ]);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        assert_eq!(buf, b"VALUE x 0 1\r\n1\r\nVALUE y 2 2\r\n22\r\nEND\r\n");
    }

    #[test]
    fn truncated_multi_value_stream_errors() {
        // Second VALUE block promised but stream ends: Io error, not a
        // bogus partial response.
        let bytes = b"VALUE x 0 1\r\n1\r\nVALUE y 0 5\r\n".to_vec();
        assert!(matches!(
            read_response(&mut &bytes[..]),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn reserved_keys_are_ordinary_keys() {
        // The digest keys must be parseable as plain gets — that is the
        // paper's compatibility trick.
        let cmd = read_command(&mut &b"get SET_BLOOM_FILTER\r\n"[..]).unwrap();
        assert_eq!(
            cmd,
            Command::Get {
                key: DIGEST_SNAPSHOT_KEY.to_vec()
            }
        );
    }
}
