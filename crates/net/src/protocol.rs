//! The wire protocol: a memcached-flavoured text protocol.
//!
//! Grammar (all lines CRLF-terminated):
//!
//! ```text
//! get <key> [<key> ...]
//! set <key> <flags> <exptime> <bytes>\r\n<data of `bytes` octets>
//! add <key> <flags> <exptime> <bytes>\r\n<data>      (store if absent)
//! replace <key> <flags> <exptime> <bytes>\r\n<data>  (store if present)
//! delete <key>
//! touch <key> <exptime>
//! incr <key> <delta>
//! decr <key> <delta>
//! stats
//! stats proteus      (full telemetry registry as STAT pairs)
//! flush_all
//! version
//! quit
//! ```
//!
//! Responses:
//!
//! ```text
//! VALUE <key> <flags> <bytes>\r\n<data>\r\nEND     (get hit)
//! END                                             (get miss)
//! VALUE ...\r\n<data>\r\nVALUE ...\r\n<data>\r\nEND (multi-key get;
//!                                                  misses are omitted)
//! STORED / NOT_STORED / DELETED / NOT_FOUND / TOUCHED / OK
//! <number>                                        (incr/decr result)
//! VERSION <string>
//! STAT <name> <value> ... END                     (stats)
//! ERROR <message>
//! ```
//!
//! Two keys are reserved exactly as in the paper's modified memcached:
//! `get SET_BLOOM_FILTER` makes the server snapshot its digest, and
//! `get BLOOM_FILTER` retrieves the snapshot bytes as a normal value —
//! "it exactly follows Memcached protocol, and should be compatible
//! with all Memcached client packages".

use std::io::{BufRead, IoSlice, Write};

use proteus_cache::SharedBytes;

use crate::error::NetError;

/// Reserved key: take a digest snapshot.
pub const DIGEST_SNAPSHOT_KEY: &[u8] = b"SET_BLOOM_FILTER";
/// Reserved key: retrieve the digest snapshot.
pub const DIGEST_KEY: &[u8] = b"BLOOM_FILTER";

/// Values larger than this are rejected on read.
const MAX_VALUE_BYTES: usize = 64 << 20;

/// Reusable per-connection scratch buffers for wire parsing.
///
/// One `WireBuf` lives for the whole life of a connection: after the
/// first few commands its `Vec`s have warmed up to the connection's
/// working sizes and parsing stops allocating entirely. Command lines
/// are read into `line` and the borrow-based [`RawCommand`] slices it
/// in place; data blocks are staged in `data` and promoted to
/// [`SharedBytes`] only because a stored value must outlive the
/// request (the one copy the hot path pays — see DESIGN.md §9).
#[derive(Debug, Default)]
pub struct WireBuf {
    line: Vec<u8>,
    data: Vec<u8>,
}

impl WireBuf {
    /// Creates an empty buffer pool (grows on first use, then steadies).
    #[must_use]
    pub fn new() -> Self {
        WireBuf::default()
    }
}

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get <key>`
    Get {
        /// The requested key.
        key: Vec<u8>,
    },
    /// `get <key> <key> ...`: memcached-style multi-key get. All hits
    /// come back as consecutive `VALUE` blocks in one response;
    /// misses are silently omitted.
    MultiGet {
        /// The requested keys, in request order (at least two).
        keys: Vec<Vec<u8>>,
    },
    /// `set <key> <flags> <exptime> <bytes>` + data block.
    Set {
        /// The key to store.
        key: Vec<u8>,
        /// Opaque client flags (stored but unused).
        flags: u32,
        /// Expiry in seconds (0 = never); advisory.
        exptime: u32,
        /// The value bytes (shared, so a re-`set` of a fetched value
        /// reuses the same buffer).
        data: SharedBytes,
    },
    /// `add <key> ...`: store only if the key is absent.
    Add {
        /// The key to store.
        key: Vec<u8>,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes.
        data: SharedBytes,
    },
    /// `replace <key> ...`: store only if the key is present.
    Replace {
        /// The key to store.
        key: Vec<u8>,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes.
        data: SharedBytes,
    },
    /// `delete <key>`
    Delete {
        /// The key to remove.
        key: Vec<u8>,
    },
    /// `touch <key> <exptime>`: refresh recency without reading.
    Touch {
        /// The key to touch.
        key: Vec<u8>,
        /// New expiry in seconds (advisory).
        exptime: u32,
    },
    /// `incr <key> <delta>`: add to a numeric value.
    Incr {
        /// The key holding an ASCII number.
        key: Vec<u8>,
        /// Amount to add.
        delta: u64,
    },
    /// `decr <key> <delta>`: subtract from a numeric value
    /// (floored at zero, as memcached does).
    Decr {
        /// The key holding an ASCII number.
        key: Vec<u8>,
        /// Amount to subtract.
        delta: u64,
    },
    /// `stats`
    Stats,
    /// `stats proteus`: the full telemetry registry (per-command
    /// latency percentiles, connection gauges, fetch-class counters)
    /// as `STAT` pairs.
    StatsProteus,
    /// `flush_all`: clear the cache.
    FlushAll,
    /// `version`
    Version,
    /// `quit`
    Quit,
}

/// One `VALUE` block inside a multi-key get response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueItem {
    /// Echoed key.
    pub key: Vec<u8>,
    /// Echoed flags.
    pub flags: u32,
    /// The value bytes (shared with the cache engine on the server
    /// side; a fresh shared buffer on the client side).
    pub data: SharedBytes,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A `get` hit.
    Value {
        /// Echoed key.
        key: Vec<u8>,
        /// Echoed flags.
        flags: u32,
        /// The value bytes.
        data: SharedBytes,
    },
    /// Two or more `VALUE` blocks from a multi-key get. An empty or
    /// single-item list is never produced by
    /// [`read_response`](crate::protocol::read_response): zero hits
    /// parse as [`Miss`](Response::Miss), one as
    /// [`Value`](Response::Value).
    Values(Vec<ValueItem>),
    /// A `get` miss.
    Miss,
    /// A successful `set`/`add`/`replace`.
    Stored,
    /// An `add` of a present key or `replace` of an absent one.
    NotStored,
    /// A successful `delete`.
    Deleted,
    /// The key was absent (`delete`, `touch`, `incr`, `decr`).
    NotFound,
    /// A successful `touch`.
    Touched,
    /// The numeric result of `incr`/`decr`.
    Numeric(u64),
    /// Generic success (`flush_all`).
    Ok,
    /// Server version string.
    Version(String),
    /// `stats` payload: `(name, value)` pairs.
    Stats(Vec<(String, String)>),
    /// Server-side error.
    Error(String),
}

fn valid_key(key: &[u8]) -> bool {
    !key.is_empty() && key.len() <= 250 && key.iter().all(|&b| b > 32 && b != 127)
}

/// A command parsed without copying its keys: every key borrows the
/// [`WireBuf`] line it was read into, so the server's hot path (`get`)
/// parses with zero allocations once the connection's buffers have
/// warmed up. Data blocks are the exception — a stored value must
/// outlive the request, so they are promoted to [`SharedBytes`] during
/// the parse (the only copy on the path).
///
/// [`into_owned`](Self::into_owned) converts to the owned [`Command`]
/// for callers that need to keep the command around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawCommand<'a> {
    /// `get <key>`
    Get {
        /// The requested key (borrowed from the wire buffer).
        key: &'a [u8],
    },
    /// `get <key> <key> ...` (at least two keys).
    MultiGet {
        /// The requested keys, in request order.
        keys: Vec<&'a [u8]>,
    },
    /// `set <key> <flags> <exptime> <bytes>` + data block.
    Set {
        /// The key to store.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes, already promoted to a shared buffer.
        data: SharedBytes,
    },
    /// `add <key> ...`: store only if the key is absent.
    Add {
        /// The key to store.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes.
        data: SharedBytes,
    },
    /// `replace <key> ...`: store only if the key is present.
    Replace {
        /// The key to store.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (advisory).
        exptime: u32,
        /// The value bytes.
        data: SharedBytes,
    },
    /// `delete <key>`
    Delete {
        /// The key to remove.
        key: &'a [u8],
    },
    /// `touch <key> <exptime>`
    Touch {
        /// The key to touch.
        key: &'a [u8],
        /// New expiry in seconds (advisory).
        exptime: u32,
    },
    /// `incr <key> <delta>`
    Incr {
        /// The key holding an ASCII number.
        key: &'a [u8],
        /// Amount to add.
        delta: u64,
    },
    /// `decr <key> <delta>`
    Decr {
        /// The key holding an ASCII number.
        key: &'a [u8],
        /// Amount to subtract.
        delta: u64,
    },
    /// `stats`
    Stats,
    /// `stats proteus`: the full telemetry registry.
    StatsProteus,
    /// `flush_all`
    FlushAll,
    /// `version`
    Version,
    /// `quit`
    Quit,
}

impl RawCommand<'_> {
    /// Converts to an owned [`Command`], copying the borrowed keys.
    #[must_use]
    pub fn into_owned(self) -> Command {
        match self {
            RawCommand::Get { key } => Command::Get { key: key.to_vec() },
            RawCommand::MultiGet { keys } => Command::MultiGet {
                keys: keys.into_iter().map(<[u8]>::to_vec).collect(),
            },
            RawCommand::Set {
                key,
                flags,
                exptime,
                data,
            } => Command::Set {
                key: key.to_vec(),
                flags,
                exptime,
                data,
            },
            RawCommand::Add {
                key,
                flags,
                exptime,
                data,
            } => Command::Add {
                key: key.to_vec(),
                flags,
                exptime,
                data,
            },
            RawCommand::Replace {
                key,
                flags,
                exptime,
                data,
            } => Command::Replace {
                key: key.to_vec(),
                flags,
                exptime,
                data,
            },
            RawCommand::Delete { key } => Command::Delete { key: key.to_vec() },
            RawCommand::Touch { key, exptime } => Command::Touch {
                key: key.to_vec(),
                exptime,
            },
            RawCommand::Incr { key, delta } => Command::Incr {
                key: key.to_vec(),
                delta,
            },
            RawCommand::Decr { key, delta } => Command::Decr {
                key: key.to_vec(),
                delta,
            },
            RawCommand::Stats => Command::Stats,
            RawCommand::StatsProteus => Command::StatsProteus,
            RawCommand::FlushAll => Command::FlushAll,
            RawCommand::Version => Command::Version,
            RawCommand::Quit => Command::Quit,
        }
    }
}

/// Reads one command from a buffered stream.
///
/// Compatibility wrapper over [`read_raw_command`] that allocates a
/// fresh buffer pool per call and copies the borrowed keys out. The
/// server's connection loop uses [`read_raw_command`] directly with a
/// long-lived [`WireBuf`]; this form accepts and rejects exactly the
/// same byte streams (property-tested in `parser_equivalence.rs`).
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on malformed input and
/// [`NetError::Io`] on socket errors (including clean EOF, surfaced as
/// `UnexpectedEof` before any bytes of a command are read — callers
/// treat that as connection close).
pub fn read_command<R: BufRead>(reader: &mut R) -> Result<Command, NetError> {
    let mut buf = WireBuf::new();
    read_raw_command(reader, &mut buf).map(RawCommand::into_owned)
}

/// Reads one command, borrowing keys from `buf` instead of copying
/// them. `buf` is a per-connection scratch pool: reusing it across
/// calls makes a warmed `get` parse allocation-free.
///
/// # Errors
///
/// Same contract as [`read_command`].
pub fn read_raw_command<'a, R: BufRead>(
    reader: &mut R,
    buf: &'a mut WireBuf,
) -> Result<RawCommand<'a>, NetError> {
    let WireBuf { line, data } = buf;
    read_line(reader, line)?;
    let text = std::str::from_utf8(line)
        .map_err(|_| NetError::Protocol("command line is not UTF-8".into()))?;
    let mut parts = text.split_ascii_whitespace();
    let verb = parts
        .next()
        .ok_or_else(|| NetError::Protocol("empty command".into()))?;
    match verb {
        "get" => {
            let keys: Vec<&[u8]> = parts.map(str::as_bytes).collect();
            if keys.is_empty() {
                return Err(NetError::Protocol("get needs a key".into()));
            }
            if keys.len() > 1024 {
                return Err(NetError::Protocol("too many keys in one get".into()));
            }
            if keys.iter().any(|k| !valid_key(k)) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            if keys.len() == 1 {
                Ok(RawCommand::Get { key: keys[0] })
            } else {
                Ok(RawCommand::MultiGet { keys })
            }
        }
        "set" | "add" | "replace" => {
            let missing_key = if verb == "set" {
                "set needs a key"
            } else {
                "storage command needs a key"
            };
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol(missing_key.into()))?
                .as_bytes();
            if !valid_key(key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let flags: u32 = parse_field(parts.next(), "flags")?;
            let exptime: u32 = parse_field(parts.next(), "exptime")?;
            let bytes: usize = parse_field(parts.next(), "bytes")?;
            if bytes > MAX_VALUE_BYTES {
                return Err(NetError::Protocol("value too large".into()));
            }
            let data = read_data_block(reader, data, bytes)?;
            Ok(match verb {
                "set" => RawCommand::Set {
                    key,
                    flags,
                    exptime,
                    data,
                },
                "add" => RawCommand::Add {
                    key,
                    flags,
                    exptime,
                    data,
                },
                _ => RawCommand::Replace {
                    key,
                    flags,
                    exptime,
                    data,
                },
            })
        }
        "delete" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("delete needs a key".into()))?
                .as_bytes();
            if !valid_key(key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            Ok(RawCommand::Delete { key })
        }
        "touch" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("touch needs a key".into()))?
                .as_bytes();
            if !valid_key(key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let exptime: u32 = parse_field(parts.next(), "exptime")?;
            Ok(RawCommand::Touch { key, exptime })
        }
        "incr" | "decr" => {
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("incr/decr needs a key".into()))?
                .as_bytes();
            if !valid_key(key) {
                return Err(NetError::Protocol("invalid key".into()));
            }
            let delta: u64 = parse_field(parts.next(), "delta")?;
            if verb == "incr" {
                Ok(RawCommand::Incr { key, delta })
            } else {
                Ok(RawCommand::Decr { key, delta })
            }
        }
        // `stats proteus` selects the full telemetry registry; any
        // other (or absent) argument keeps the historical behaviour of
        // plain `stats` ignoring trailing tokens.
        "stats" => match parts.next() {
            Some("proteus") => Ok(RawCommand::StatsProteus),
            _ => Ok(RawCommand::Stats),
        },
        "flush_all" => Ok(RawCommand::FlushAll),
        "version" => Ok(RawCommand::Version),
        "quit" => Ok(RawCommand::Quit),
        other => Err(NetError::Protocol(format!("unknown verb {other:?}"))),
    }
}

/// Attempts to parse one command from a byte slice without consuming
/// it — the resumable entry point the epoll reactor uses on its
/// per-connection input buffers.
///
/// Returns `Ok(Some((command, used)))` when `input` starts with a
/// complete command (`used` is how many bytes it spans), `Ok(None)`
/// when `input` is a prefix of a valid command and more bytes are
/// needed, and `Err` on malformed input.
///
/// This is a thin wrapper over [`read_raw_command`] driven by the
/// slice itself, so it accepts and rejects exactly the same byte
/// streams as the threaded server's parser — the equivalence holds by
/// construction, not by a parallel implementation.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on malformed input. (`NetError::Io`
/// cannot escape: the only I/O error a slice produces is
/// `UnexpectedEof`, which maps to `Ok(None)`.)
pub fn parse_raw_command<'a>(
    input: &[u8],
    buf: &'a mut WireBuf,
) -> Result<Option<(RawCommand<'a>, usize)>, NetError> {
    let mut reader: &[u8] = input;
    match read_raw_command(&mut reader, buf) {
        Ok(cmd) => Ok(Some((cmd, input.len() - reader.len()))),
        Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

/// Reads a `<bytes>`-long data block plus its CRLF terminator into
/// `scratch`, then promotes it to a shared buffer — the socket→pool
/// copy happens here, the pool→Arc copy is the `SharedBytes::from`.
fn read_data_block<R: BufRead>(
    reader: &mut R,
    scratch: &mut Vec<u8>,
    bytes: usize,
) -> Result<SharedBytes, NetError> {
    scratch.clear();
    scratch.resize(bytes, 0);
    std::io::Read::read_exact(reader, scratch)?;
    let mut crlf = [0u8; 2];
    std::io::Read::read_exact(reader, &mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(NetError::Protocol("data block not CRLF-terminated".into()));
    }
    Ok(SharedBytes::from(scratch.as_slice()))
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str) -> Result<T, NetError> {
    field
        .ok_or_else(|| NetError::Protocol(format!("missing {name}")))?
        .parse()
        .map_err(|_| NetError::Protocol(format!("malformed {name}")))
}

/// Writes one command and flushes the stream.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_command<W: Write>(writer: &mut W, cmd: &Command) -> Result<(), NetError> {
    write_command_unflushed(writer, cmd)?;
    writer.flush()?;
    Ok(())
}

/// Writes one command without flushing — the building block for
/// pipelined batches ([`CacheClient::set_many`] queues a whole batch
/// and flushes once). Byte output is identical to [`write_command`].
///
/// [`CacheClient::set_many`]: crate::CacheClient::set_many
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_command_unflushed<W: Write>(writer: &mut W, cmd: &Command) -> Result<(), NetError> {
    match cmd {
        Command::Get { key } => {
            writer.write_all(b"get ")?;
            writer.write_all(key)?;
            writer.write_all(b"\r\n")?;
        }
        Command::MultiGet { keys } => {
            writer.write_all(b"get")?;
            for key in keys {
                writer.write_all(b" ")?;
                writer.write_all(key)?;
            }
            writer.write_all(b"\r\n")?;
        }
        Command::Set {
            key,
            flags,
            exptime,
            data,
        } => {
            writer.write_all(b"set ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {exptime} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Add {
            key,
            flags,
            exptime,
            data,
        } => {
            writer.write_all(b"add ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {exptime} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Replace {
            key,
            flags,
            exptime,
            data,
        } => {
            writer.write_all(b"replace ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {exptime} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Delete { key } => {
            writer.write_all(b"delete ")?;
            writer.write_all(key)?;
            writer.write_all(b"\r\n")?;
        }
        Command::Touch { key, exptime } => {
            writer.write_all(b"touch ")?;
            writer.write_all(key)?;
            write!(writer, " {exptime}\r\n")?;
        }
        Command::Incr { key, delta } => {
            writer.write_all(b"incr ")?;
            writer.write_all(key)?;
            write!(writer, " {delta}\r\n")?;
        }
        Command::Decr { key, delta } => {
            writer.write_all(b"decr ")?;
            writer.write_all(key)?;
            write!(writer, " {delta}\r\n")?;
        }
        Command::Stats => writer.write_all(b"stats\r\n")?,
        Command::StatsProteus => writer.write_all(b"stats proteus\r\n")?,
        Command::FlushAll => writer.write_all(b"flush_all\r\n")?,
        Command::Version => writer.write_all(b"version\r\n")?,
        Command::Quit => writer.write_all(b"quit\r\n")?,
    }
    Ok(())
}

/// Writes one response and flushes the stream.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> Result<(), NetError> {
    write_response_unflushed(writer, resp)?;
    writer.flush()?;
    Ok(())
}

/// Writes one response without flushing — the building block
/// [`ResponseWriter`] uses to coalesce flushes across a pipelined
/// batch. Byte output is identical to [`write_response`].
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_unflushed<W: Write>(writer: &mut W, resp: &Response) -> Result<(), NetError> {
    match resp {
        Response::Value { key, flags, data } => {
            writer.write_all(b"VALUE ")?;
            writer.write_all(key)?;
            write!(writer, " {flags} {}\r\n", data.len())?;
            writer.write_all(data)?;
            writer.write_all(b"\r\nEND\r\n")?;
        }
        Response::Values(items) => {
            for item in items {
                writer.write_all(b"VALUE ")?;
                writer.write_all(&item.key)?;
                write!(writer, " {} {}\r\n", item.flags, item.data.len())?;
                writer.write_all(&item.data)?;
                writer.write_all(b"\r\n")?;
            }
            writer.write_all(b"END\r\n")?;
        }
        Response::Miss => writer.write_all(b"END\r\n")?,
        Response::Stored => writer.write_all(b"STORED\r\n")?,
        Response::NotStored => writer.write_all(b"NOT_STORED\r\n")?,
        Response::Deleted => writer.write_all(b"DELETED\r\n")?,
        Response::NotFound => writer.write_all(b"NOT_FOUND\r\n")?,
        Response::Touched => writer.write_all(b"TOUCHED\r\n")?,
        Response::Numeric(v) => write!(writer, "{v}\r\n")?,
        Response::Ok => writer.write_all(b"OK\r\n")?,
        Response::Version(v) => write!(writer, "VERSION {}\r\n", v.replace(['\r', '\n'], " "))?,
        Response::Stats(pairs) => {
            for (name, value) in pairs {
                write!(writer, "STAT {name} {value}\r\n")?;
            }
            writer.write_all(b"END\r\n")?;
        }
        Response::Error(msg) => {
            write!(writer, "ERROR {}\r\n", msg.replace(['\r', '\n'], " "))?;
        }
    }
    Ok(())
}

/// A response writer that coalesces flushes and assembles `VALUE`
/// responses with vectored writes, so a pipelined batch of gets goes
/// out in one syscall burst instead of one flush per response.
///
/// Nothing reaches the peer until [`flush`](Self::flush) — the
/// server's connection loop flushes once per drained input buffer.
/// Wire bytes are identical to [`write_response`].
#[derive(Debug)]
pub struct ResponseWriter<W: Write> {
    writer: W,
    scratch: Vec<u8>,
}

impl<W: Write> ResponseWriter<W> {
    /// Wraps a (typically buffered) writer.
    pub fn new(writer: W) -> Self {
        ResponseWriter {
            writer,
            scratch: Vec::new(),
        }
    }

    /// The wrapped writer (e.g. to reach the underlying socket).
    pub fn get_ref(&self) -> &W {
        &self.writer
    }

    /// Mutable access to the wrapped writer — the reactor uses this to
    /// drain its per-connection output buffer to the socket.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }

    /// Queues one response (no flush).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write(&mut self, resp: &Response) -> Result<(), NetError> {
        match resp {
            Response::Value { key, flags, data } => self.write_single_value(key, *flags, data),
            Response::Values(items) => self.write_values(
                items
                    .iter()
                    .map(|it| (it.key.as_slice(), it.flags, &it.data)),
            ),
            other => write_response_unflushed(&mut self.writer, other),
        }
    }

    /// Queues a single-key `get` hit: `VALUE <key> <flags> <len>`,
    /// data, `END`. Key and data are borrowed, so the server can echo
    /// the request's key and the engine's shared buffer with zero
    /// copies.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_single_value(
        &mut self,
        key: &[u8],
        flags: u32,
        data: &[u8],
    ) -> Result<(), NetError> {
        let ResponseWriter { writer, scratch } = self;
        scratch.clear();
        scratch.extend_from_slice(b"VALUE ");
        scratch.extend_from_slice(key);
        write!(scratch, " {flags} {}\r\n", data.len())?;
        write_segments_vectored(writer, &[scratch.as_slice(), data, b"\r\nEND\r\n"])
    }

    /// Queues a multi-key `get` response: one `VALUE` block per item
    /// (misses omitted by the caller), then `END`. All headers are
    /// staged in one reused scratch buffer and the whole response goes
    /// out as a single vectored write.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_values<'x, I>(&mut self, items: I) -> Result<(), NetError>
    where
        I: Iterator<Item = (&'x [u8], u32, &'x SharedBytes)> + Clone,
    {
        let ResponseWriter { writer, scratch } = self;
        scratch.clear();
        let mut header_ends = Vec::new();
        for (key, flags, data) in items.clone() {
            scratch.extend_from_slice(b"VALUE ");
            scratch.extend_from_slice(key);
            write!(scratch, " {flags} {}\r\n", data.len())?;
            header_ends.push(scratch.len());
        }
        let mut segments = Vec::with_capacity(3 * header_ends.len() + 1);
        let mut start = 0;
        for ((_, _, data), &end) in items.zip(header_ends.iter()) {
            segments.push(&scratch[start..end]);
            segments.push(&data[..]);
            segments.push(b"\r\n".as_slice());
            start = end;
        }
        segments.push(b"END\r\n".as_slice());
        write_segments_vectored(writer, &segments)
    }

    /// Flushes everything queued so far to the peer.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        Ok(())
    }
}

/// Writes `segments` in order using vectored I/O, handling partial
/// writes. On a `BufWriter` the whole batch lands in the output buffer
/// in one call when it fits; oversized batches go straight to the
/// socket as an iovec array.
fn write_segments_vectored<W: Write>(writer: &mut W, segments: &[&[u8]]) -> Result<(), NetError> {
    const MAX_IOV: usize = 64;
    let total: usize = segments.iter().map(|s| s.len()).sum();
    let mut written = 0usize;
    let mut idx = 0usize;
    let mut off = 0usize;
    while written < total {
        while idx < segments.len() && off == segments[idx].len() {
            idx += 1;
            off = 0;
        }
        let mut batch = [IoSlice::new(&[]); MAX_IOV];
        let mut count = 0;
        for (i, seg) in segments[idx..].iter().enumerate() {
            if count == MAX_IOV {
                break;
            }
            let part = if i == 0 { &seg[off..] } else { seg };
            if !part.is_empty() {
                batch[count] = IoSlice::new(part);
                count += 1;
            }
        }
        let n = writer.write_vectored(&batch[..count])?;
        if n == 0 {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write response",
            )));
        }
        written += n;
        let mut rem = n;
        while rem > 0 {
            let seg_rem = segments[idx].len() - off;
            if rem >= seg_rem {
                rem -= seg_rem;
                idx += 1;
                off = 0;
            } else {
                off += rem;
                rem = 0;
            }
        }
    }
    Ok(())
}

/// Reads one response.
///
/// Compatibility wrapper over [`read_response_buffered`] with a fresh
/// buffer pool per call; long-lived readers (the client's pipelined
/// multi-get path) hold a [`WireBuf`] and reuse it.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on malformed responses and
/// [`NetError::Io`] on socket errors.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, NetError> {
    let mut buf = WireBuf::new();
    read_response_buffered(reader, &mut buf)
}

/// Reads one response using `buf` as the line/data staging pool.
/// Value payloads are promoted to [`SharedBytes`] (one pool→Arc copy);
/// everything else parses without allocating once `buf` has warmed up.
///
/// # Errors
///
/// Same contract as [`read_response`].
pub fn read_response_buffered<R: BufRead>(
    reader: &mut R,
    buf: &mut WireBuf,
) -> Result<Response, NetError> {
    let WireBuf { line, data } = buf;
    read_line(reader, line)?;
    let text = std::str::from_utf8(line)
        .map_err(|_| NetError::Protocol("response line is not UTF-8".into()))?;
    if text == "END" {
        return Ok(Response::Miss);
    }
    if text == "STORED" {
        return Ok(Response::Stored);
    }
    if text == "NOT_STORED" {
        return Ok(Response::NotStored);
    }
    if text == "DELETED" {
        return Ok(Response::Deleted);
    }
    if text == "NOT_FOUND" {
        return Ok(Response::NotFound);
    }
    if text == "TOUCHED" {
        return Ok(Response::Touched);
    }
    if text == "OK" {
        return Ok(Response::Ok);
    }
    if let Some(v) = text.strip_prefix("VERSION ") {
        return Ok(Response::Version(v.to_string()));
    }
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        let value = text
            .parse()
            .map_err(|_| NetError::Protocol("numeric response out of range".into()))?;
        return Ok(Response::Numeric(value));
    }
    if let Some(msg) = text.strip_prefix("ERROR ") {
        return Ok(Response::Error(msg.to_string()));
    }
    if text == "ERROR" {
        return Ok(Response::Error(String::new()));
    }
    let is_stats = text.starts_with("STAT ");
    let is_value = text.starts_with("VALUE ");
    if is_stats {
        let mut pairs = Vec::new();
        loop {
            if line.as_slice() == b"END" {
                return Ok(Response::Stats(pairs));
            }
            let current = std::str::from_utf8(line)
                .map_err(|_| NetError::Protocol("stats line is not UTF-8".into()))?;
            let rest = current
                .strip_prefix("STAT ")
                .ok_or_else(|| NetError::Protocol(format!("bad stats line {current:?}")))?;
            let (name, value) = rest
                .split_once(' ')
                .ok_or_else(|| NetError::Protocol("stats line missing value".into()))?;
            pairs.push((name.to_string(), value.to_string()));
            read_line(reader, line)?;
        }
    }
    if is_value {
        // One or more VALUE blocks, then a lone END. Zero blocks never
        // reach here (that is the bare-END Miss case above); one block
        // parses as Value so single-key responses are unchanged.
        let mut items = Vec::new();
        loop {
            let current = std::str::from_utf8(line)
                .map_err(|_| NetError::Protocol("value line is not UTF-8".into()))?;
            let rest = current
                .strip_prefix("VALUE ")
                .ok_or_else(|| NetError::Protocol(format!("bad value line {current:?}")))?;
            let mut parts = rest.split_ascii_whitespace();
            let key = parts
                .next()
                .ok_or_else(|| NetError::Protocol("VALUE missing key".into()))?
                .as_bytes()
                .to_vec();
            let flags: u32 = parse_field(parts.next(), "flags")?;
            let bytes: usize = parse_field(parts.next(), "bytes")?;
            if bytes > MAX_VALUE_BYTES {
                return Err(NetError::Protocol("value too large".into()));
            }
            let value = read_data_block(reader, data, bytes)?;
            items.push(ValueItem {
                key,
                flags,
                data: value,
            });
            if items.len() > 1024 {
                return Err(NetError::Protocol("too many VALUE blocks".into()));
            }
            read_line(reader, line)?;
            if line.as_slice() == b"END" {
                break;
            }
        }
        if items.len() == 1 {
            let ValueItem { key, flags, data } = items.into_iter().next().expect("one item");
            return Ok(Response::Value { key, flags, data });
        }
        return Ok(Response::Values(items));
    }
    // Neither loop ran, so `line` still holds the (UTF-8-validated)
    // response line; re-borrow it for the error message.
    let text = std::str::from_utf8(line).expect("validated above");
    Err(NetError::Protocol(format!(
        "unrecognized response {text:?}"
    )))
}

/// Reads a CRLF-terminated line (without the terminator) into `out`,
/// scanning the reader's internal buffer in chunks rather than one
/// byte at a time.
fn read_line<R: BufRead>(reader: &mut R, out: &mut Vec<u8>) -> Result<(), NetError> {
    out.clear();
    loop {
        let (found, used) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed mid-line",
                )));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    out.extend_from_slice(&available[..pos]);
                    (true, pos + 1)
                }
                None => {
                    out.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        // The cap counts every byte before the newline — including the
        // CR about to be stripped — matching the old per-byte parser.
        if out.len() > 1 << 20 {
            return Err(NetError::Protocol("line too long".into()));
        }
        if found {
            if out.last() == Some(&b'\r') {
                out.pop();
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_command(cmd: Command) -> Command {
        let mut buf = Vec::new();
        write_command(&mut buf, &cmd).unwrap();
        read_command(&mut &buf[..]).unwrap()
    }

    fn roundtrip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut &buf[..]).unwrap()
    }

    #[test]
    fn commands_roundtrip() {
        for cmd in [
            Command::Get {
                key: b"page:1".to_vec(),
            },
            Command::Set {
                key: b"k".to_vec(),
                flags: 7,
                exptime: 60,
                data: b"hello\r\nworld".to_vec().into(), // binary-safe data block
            },
            Command::Delete { key: b"k".to_vec() },
            Command::Stats,
            Command::StatsProteus,
            Command::Quit,
        ] {
            assert_eq!(roundtrip_command(cmd.clone()), cmd);
        }
    }

    #[test]
    fn stats_argument_selects_registry_or_is_ignored() {
        assert_eq!(
            read_command(&mut &b"stats proteus\r\n"[..]).unwrap(),
            Command::StatsProteus
        );
        // Unknown arguments keep the historical plain-stats behaviour.
        assert_eq!(
            read_command(&mut &b"stats items\r\n"[..]).unwrap(),
            Command::Stats
        );
        assert_eq!(
            read_command(&mut &b"stats\r\n"[..]).unwrap(),
            Command::Stats
        );
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Value {
                key: b"k".to_vec(),
                flags: 1,
                data: vec![0, 1, 2, 255].into(),
            },
            Response::Miss,
            Response::Stored,
            Response::Deleted,
            Response::NotFound,
            Response::Stats(vec![
                ("hits".into(), "10".into()),
                ("misses".into(), "2".into()),
            ]),
            Response::Error("kaboom".into()),
        ] {
            assert_eq!(roundtrip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn rejects_malformed_commands() {
        for bad in [
            "\r\n",
            "get\r\n",
            "frob k\r\n",
            "set k x 0 5\r\nhello\r\n",
            "get bad key\r\n extra",
        ] {
            // Either a protocol error or (for trailing garbage) a clean
            // first parse — never a panic.
            let _ = read_command(&mut bad.as_bytes());
        }
        assert!(matches!(
            read_command(&mut "frob k\r\n".as_bytes()),
            Err(NetError::Protocol(_))
        ));
        assert!(matches!(
            read_command(&mut "set k 0 0 abc\r\n".as_bytes()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn rejects_invalid_keys() {
        assert!(matches!(
            read_command(&mut "get \r\n".as_bytes()),
            Err(NetError::Protocol(_))
        ));
        let long = format!("get {}\r\n", "k".repeat(300));
        assert!(matches!(
            read_command(&mut long.as_bytes()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn set_data_block_must_be_crlf_terminated() {
        let bad = b"set k 0 0 2\r\nhiXX".to_vec();
        assert!(matches!(
            read_command(&mut &bad[..]),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn eof_surfaces_as_io() {
        assert!(matches!(read_command(&mut &b""[..]), Err(NetError::Io(_))));
    }

    #[test]
    fn multi_key_get_roundtrips() {
        let cmd = Command::MultiGet {
            keys: vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()],
        };
        let mut buf = Vec::new();
        write_command(&mut buf, &cmd).unwrap();
        assert_eq!(buf, b"get a b c\r\n");
        assert_eq!(read_command(&mut &buf[..]).unwrap(), cmd);
    }

    #[test]
    fn single_key_get_stays_get() {
        // `get k` must keep parsing to Get, not a one-key MultiGet, so
        // single-key traffic is byte-identical to the previous protocol.
        assert_eq!(
            read_command(&mut &b"get k\r\n"[..]).unwrap(),
            Command::Get { key: b"k".to_vec() }
        );
    }

    #[test]
    fn multi_get_rejects_any_invalid_key() {
        let long = format!("get ok {}\r\n", "k".repeat(300));
        assert!(matches!(
            read_command(&mut long.as_bytes()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn values_roundtrip_and_degenerate_cases_normalize() {
        let items = vec![
            ValueItem {
                key: b"a".to_vec(),
                flags: 1,
                data: b"first".to_vec().into(),
            },
            ValueItem {
                key: b"c".to_vec(),
                flags: 0,
                data: vec![0, 255, b'\r', b'\n'].into(),
            },
        ];
        let resp = Response::Values(items.clone());
        assert_eq!(roundtrip_response(resp.clone()), resp);
        // Zero hits on the wire are exactly a miss; one hit is exactly
        // a single-key Value. Both normalize on read.
        assert_eq!(
            roundtrip_response(Response::Values(Vec::new())),
            Response::Miss
        );
        assert_eq!(
            roundtrip_response(Response::Values(items[..1].to_vec())),
            Response::Value {
                key: b"a".to_vec(),
                flags: 1,
                data: b"first".to_vec().into(),
            }
        );
    }

    #[test]
    fn multi_value_wire_bytes_are_memcached_shaped() {
        let resp = Response::Values(vec![
            ValueItem {
                key: b"x".to_vec(),
                flags: 0,
                data: b"1".to_vec().into(),
            },
            ValueItem {
                key: b"y".to_vec(),
                flags: 2,
                data: b"22".to_vec().into(),
            },
        ]);
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        assert_eq!(buf, b"VALUE x 0 1\r\n1\r\nVALUE y 2 2\r\n22\r\nEND\r\n");
    }

    #[test]
    fn raw_commands_borrow_and_reuse_one_buffer() {
        let stream = b"get hot\r\nset k 1 0 3\r\nabc\r\nget a b\r\ndelete k\r\n";
        let mut reader = &stream[..];
        let mut buf = WireBuf::new();
        assert_eq!(
            read_raw_command(&mut reader, &mut buf).unwrap(),
            RawCommand::Get { key: b"hot" }
        );
        match read_raw_command(&mut reader, &mut buf).unwrap() {
            RawCommand::Set {
                key, flags, data, ..
            } => {
                assert_eq!((key, flags), (&b"k"[..], 1));
                assert_eq!(&data[..], b"abc");
            }
            other => panic!("expected set, got {other:?}"),
        }
        assert_eq!(
            read_raw_command(&mut reader, &mut buf).unwrap(),
            RawCommand::MultiGet {
                keys: vec![b"a", b"b"]
            }
        );
        assert_eq!(
            read_raw_command(&mut reader, &mut buf)
                .unwrap()
                .into_owned(),
            Command::Delete { key: b"k".to_vec() }
        );
    }

    #[test]
    fn response_writer_output_is_byte_identical() {
        let responses = [
            Response::Value {
                key: b"k".to_vec(),
                flags: 3,
                data: vec![0, 255, b'\r', b'\n'].into(),
            },
            Response::Values(vec![
                ValueItem {
                    key: b"x".to_vec(),
                    flags: 0,
                    data: b"1".to_vec().into(),
                },
                ValueItem {
                    key: b"y".to_vec(),
                    flags: 2,
                    data: Vec::new().into(), // zero-length value block
                },
            ]),
            Response::Miss,
            Response::Stored,
            Response::Numeric(42),
            Response::Stats(vec![("hits".into(), "1".into())]),
            Response::Error("nope".into()),
        ];
        let mut flushed = Vec::new();
        for resp in &responses {
            write_response(&mut flushed, resp).unwrap();
        }
        let mut coalesced = ResponseWriter::new(std::io::BufWriter::new(Vec::new()));
        for resp in &responses {
            coalesced.write(resp).unwrap();
        }
        coalesced.flush().unwrap();
        let inner = coalesced.writer.into_inner().unwrap();
        assert_eq!(inner, flushed, "coalesced writer must emit identical bytes");
    }

    #[test]
    fn truncated_multi_value_stream_errors() {
        // Second VALUE block promised but stream ends: Io error, not a
        // bogus partial response.
        let bytes = b"VALUE x 0 1\r\n1\r\nVALUE y 0 5\r\n".to_vec();
        assert!(matches!(
            read_response(&mut &bytes[..]),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn resumable_parse_matches_streaming_parse_at_every_split() {
        // For every prefix of a pipelined stream, parse_raw_command
        // must either yield exactly the commands read_raw_command sees
        // or report Incomplete — never an error, never a different
        // command.
        let stream = b"get hot\r\nset k 1 0 3\r\nabc\r\nget a b\r\nincr k 2\r\nquit\r\n";
        let mut expected = Vec::new();
        {
            let mut reader = &stream[..];
            let mut buf = WireBuf::new();
            while let Ok(cmd) = read_raw_command(&mut reader, &mut buf) {
                expected.push(cmd.into_owned());
            }
        }
        for split in 0..=stream.len() {
            let mut got = Vec::new();
            let mut pos = 0;
            let mut buf = WireBuf::new();
            for end in [split, stream.len()] {
                while let Some((cmd, used)) =
                    parse_raw_command(&stream[pos..end], &mut buf).unwrap()
                {
                    got.push(cmd.into_owned());
                    pos += used;
                }
            }
            assert_eq!(got, expected, "split at byte {split}");
        }
    }

    #[test]
    fn resumable_parse_surfaces_protocol_errors() {
        let mut buf = WireBuf::new();
        assert!(matches!(
            parse_raw_command(b"frob k\r\n", &mut buf),
            Err(NetError::Protocol(_))
        ));
        // A prefix with no newline is incomplete, not an error...
        assert!(parse_raw_command(b"get parti", &mut buf).unwrap().is_none());
        // ...until it blows the line-length cap.
        let long = vec![b'a'; (1 << 20) + 2];
        assert!(matches!(
            parse_raw_command(&long, &mut buf),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn unflushed_command_writer_is_byte_identical() {
        let cmds = [
            Command::Set {
                key: b"k".to_vec(),
                flags: 7,
                exptime: 60,
                data: b"hello".to_vec().into(),
            },
            Command::Get {
                key: b"page:1".to_vec(),
            },
        ];
        let mut flushed = Vec::new();
        let mut unflushed = Vec::new();
        for cmd in &cmds {
            write_command(&mut flushed, cmd).unwrap();
            write_command_unflushed(&mut unflushed, cmd).unwrap();
        }
        assert_eq!(flushed, unflushed);
    }

    #[test]
    fn reserved_keys_are_ordinary_keys() {
        // The digest keys must be parseable as plain gets — that is the
        // paper's compatibility trick.
        let cmd = read_command(&mut &b"get SET_BLOOM_FILTER\r\n"[..]).unwrap();
        assert_eq!(
            cmd,
            Command::Get {
                key: DIGEST_SNAPSHOT_KEY.to_vec()
            }
        );
    }
}
