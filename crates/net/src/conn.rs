//! The plane-independent connection state machine.
//!
//! Both event-driven data planes — the epoll reactor ([`reactor`]) and
//! the io_uring plane ([`uring_reactor`]) — drive the same
//! ReadingCommand → Executing → WritingResponse cycle over a
//! connection; they differ only in how bytes move between the socket
//! and the buffers. This module holds the shared middle: the input
//! buffer with its parse cursor, the per-connection [`WireBuf`] parse
//! scratch, the [`ResponseWriter`] over a drainable output buffer, and
//! the execute loop that turns buffered bytes into queued responses
//! through the same [`serve_command`] the threaded plane uses.
//!
//! [`reactor`]: crate::reactor
//! [`uring_reactor`]: crate::uring_reactor

use std::io::{IoSlice, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::protocol::{parse_raw_command, Response, ResponseWriter, WireBuf};
use crate::server::{op_class_of, serve_command, Shared};

/// Output high-water mark: above this many pending response bytes a
/// connection stops reading and parsing until the peer drains its
/// socket — bounding per-connection memory against a client that
/// pipelines requests without reading responses. Shared by both
/// event-driven planes so backpressure behaves identically.
pub(crate) const OUT_HIGH_WATER: usize = 1 << 20;

/// A growable response buffer with a drain cursor: [`ResponseWriter`]
/// appends (vectored writes land in one pass), the owning event loop
/// drains `buf[pos..]` to the socket and resumes partial writes where
/// they stopped.
#[derive(Debug, Default)]
pub(crate) struct OutBuf {
    pub(crate) buf: Vec<u8>,
    pub(crate) pos: usize,
}

impl OutBuf {
    pub(crate) fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl Write for OutBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
        let mut n = 0;
        for b in bufs {
            self.buf.extend_from_slice(b);
            n += b.len();
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One connection's plane-independent state. The phases of the
/// ReadingCommand → Executing → WritingResponse cycle are encoded in
/// the buffers: unparsed input waits in `rbuf[rpos..]`, queued output
/// waits in the writer's [`OutBuf`], and the `eof`/`closing` flags
/// steer the endgame (serve everything already buffered, flush, then
/// close — exactly the threaded plane's semantics).
pub(crate) struct ConnCore {
    pub(crate) stream: TcpStream,
    /// Raw bytes off the socket; `rpos` is the parse cursor.
    pub(crate) rbuf: Vec<u8>,
    pub(crate) rpos: usize,
    /// Per-connection parse scratch: keys borrow this in place, so a
    /// warmed connection parses without allocating.
    pub(crate) wire: WireBuf,
    /// Response assembly over the connection's output buffer.
    pub(crate) writer: ResponseWriter<OutBuf>,
    /// Peer finished sending (clean EOF or RDHUP).
    pub(crate) eof: bool,
    /// Close once the output buffer drains (quit, protocol error, or
    /// input exhausted after EOF).
    pub(crate) closing: bool,
}

impl ConnCore {
    pub(crate) fn new(stream: TcpStream) -> ConnCore {
        ConnCore {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wire: WireBuf::new(),
            writer: ResponseWriter::new(OutBuf::default()),
            eof: false,
            closing: false,
        }
    }

    /// Response bytes queued in the output buffer (excluding any bytes
    /// a plane holds in its own in-flight buffer).
    pub(crate) fn out_pending(&self) -> usize {
        self.writer.get_ref().pending()
    }

    /// Drops the parsed prefix of the input buffer so it never grows
    /// past one command plus whatever arrived pipelined behind it.
    pub(crate) fn compact(&mut self) {
        if self.rpos == 0 {
            return;
        }
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
        } else {
            self.rbuf.copy_within(self.rpos.., 0);
            let remaining = self.rbuf.len() - self.rpos;
            self.rbuf.truncate(remaining);
        }
        self.rpos = 0;
    }

    /// Parses and executes every complete command buffered on the
    /// connection, stopping at backpressure, incomplete input, or a
    /// close condition. `extra_out` is how many response bytes the
    /// plane already holds outside the [`OutBuf`] (the io_uring plane's
    /// in-flight send buffer); it counts against the high-water mark so
    /// both planes apply the same 1 MiB backpressure rule.
    pub(crate) fn process(&mut self, shared: &Shared, extra_out: usize) -> Result<(), ()> {
        loop {
            if self.closing || self.out_pending() + extra_out > OUT_HIGH_WATER {
                break;
            }
            let ConnCore {
                rbuf,
                rpos,
                wire,
                writer,
                closing,
                eof,
                ..
            } = &mut *self;
            match parse_raw_command(&rbuf[*rpos..], wire) {
                Ok(Some((command, used))) => {
                    *rpos += used;
                    // Same timing rule as the threaded plane: the
                    // serve (engine + response assembly), not the wait
                    // for bytes.
                    let class = op_class_of(&command);
                    let begin = Instant::now();
                    let served = serve_command(command, shared, writer);
                    shared.metrics.ops.record(class, begin.elapsed());
                    match served {
                        Ok(false) => {}
                        Ok(true) => *closing = true, // quit: flush then close
                        Err(_) => return Err(()),    // buffer write cannot fail; defensive
                    }
                }
                Ok(None) => {
                    // Incomplete: wait for more bytes — unless the
                    // peer already finished sending, in which case a
                    // trailing partial command drops exactly as the
                    // threaded plane's mid-command EOF does.
                    if *eof {
                        *closing = true;
                    }
                    break;
                }
                Err(e) => {
                    // Threaded-plane parity: malformed input earns an
                    // ERROR line, then the connection closes.
                    let _ = writer.write(&Response::Error(e.to_string()));
                    *closing = true;
                    break;
                }
            }
        }
        self.compact();
        Ok(())
    }
}
