//! Thin safe wrappers over `epoll(7)` and `eventfd(2)`.
//!
//! The reactor needs exactly four syscalls beyond what `std` exposes:
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, and `eventfd`. They are
//! declared directly against the system libc (which every Rust binary
//! on Linux already links) rather than through a binding crate, and
//! the unsafety is confined to this module: everything above it works
//! with [`Epoll`] and [`EventFd`], which own their file descriptors
//! and close them on drop.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable interest (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable interest (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hang-up: both halves closed (always reported).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (must be requested).
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. glibc declares it `__EPOLL_PACKED`
/// (packed) on x86-64 and naturally aligned everywhere else; matching
/// that layout exactly is what makes the raw FFI sound.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[allow(unsafe_code)]
mod sys {
    use super::{c_int, c_uint, c_void, EpollEvent};

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A reusable buffer of kernel-delivered readiness events.
pub(crate) struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer able to receive up to `capacity` events per wait.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates the `(token, readiness bits)` pairs from the last wait.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        // Copy fields out by value: the struct is packed on x86-64, so
        // taking references into it would be unsound.
        self.buf[..self.len].iter().map(|ev| {
            let token = ev.data;
            let bits = ev.events;
            (token, bits)
        })
    }
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Self> {
        #[allow(unsafe_code)]
        let fd = cvt(unsafe { sys::epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        #[allow(unsafe_code)]
        cvt(unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Starts watching `fd` with the given interest; readiness events
    /// carry `token` back.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of an already-watched `fd`.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Blocks until at least one watched fd is ready or `timeout`
    /// elapses (`None` = wait forever). Returns the number of events
    /// now readable through `events.iter()`; `EINTR` retries.
    pub(crate) fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let millis: c_int = match timeout {
            // Round up so a 1ns timeout still sleeps, and saturate
            // huge values instead of wrapping negative.
            Some(d) => c_int::try_from(d.as_millis().max(1)).unwrap_or(c_int::MAX),
            None => -1,
        };
        loop {
            let max = c_int::try_from(events.buf.len()).unwrap_or(c_int::MAX);
            #[allow(unsafe_code)]
            let n = unsafe { sys::epoll_wait(self.fd, events.buf.as_mut_ptr(), max, millis) };
            if n >= 0 {
                events.len = n as usize;
                return Ok(events.len);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        #[allow(unsafe_code)]
        let _ = unsafe { sys::close(self.fd) };
    }
}

/// An owned non-blocking eventfd: the reactor's cross-thread doorbell.
/// Writers bump the counter to wake the owning event loop; the loop
/// drains it and checks its mailbox.
pub(crate) struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a non-blocking close-on-exec eventfd.
    pub(crate) fn new() -> io::Result<Self> {
        #[allow(unsafe_code)]
        let fd = cvt(unsafe { sys::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor (for epoll registration).
    pub(crate) fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the owning loop. A full counter (`EAGAIN`) still means a
    /// wake-up is pending, so that error is deliberately swallowed.
    pub(crate) fn notify(&self) {
        let one: u64 = 1;
        let ptr: *const u64 = &one;
        #[allow(unsafe_code)]
        let _ = unsafe { sys::write(self.fd, ptr.cast::<c_void>(), 8) };
    }

    /// Resets the counter so the next `notify` triggers a fresh
    /// readiness event.
    pub(crate) fn drain(&self) {
        let mut counter: u64 = 0;
        let ptr: *mut u64 = &mut counter;
        #[allow(unsafe_code)]
        let _ = unsafe { sys::read(self.fd, ptr.cast::<c_void>(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        #[allow(unsafe_code)]
        let _ = unsafe { sys::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.fd(), 7, EPOLLIN).unwrap();
        let mut events = Events::with_capacity(4);
        // Nothing pending: times out with zero events.
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        efd.notify();
        efd.notify();
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1
        );
        let (token, bits) = events.iter().next().unwrap();
        assert_eq!(token, 7);
        assert_ne!(bits & EPOLLIN, 0);
        // Drain resets it: no further readiness until the next notify.
        efd.drain();
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn epoll_reports_socket_readability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll
            .add(server_side.as_raw_fd(), 42, EPOLLIN | EPOLLRDHUP)
            .unwrap();
        let mut events = Events::with_capacity(4);
        client.write_all(b"ping").unwrap();
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1
        );
        let (token, bits) = events.iter().next().unwrap();
        assert_eq!(token, 42);
        assert_ne!(bits & EPOLLIN, 0);
        // Re-arming with MOD succeeds. (There is no delete wrapper:
        // closing the fd deregisters it, which is the only removal
        // path the reactor uses.)
        epoll
            .modify(server_side.as_raw_fd(), 42, EPOLLIN | EPOLLOUT)
            .unwrap();
    }
}
