//! A command-line client for a Proteus cache server.
//!
//! ```text
//! proteus-cache-cli ADDR get KEY
//! proteus-cache-cli ADDR set KEY VALUE
//! proteus-cache-cli ADDR add KEY VALUE
//! proteus-cache-cli ADDR replace KEY VALUE
//! proteus-cache-cli ADDR delete KEY
//! proteus-cache-cli ADDR touch KEY
//! proteus-cache-cli ADDR incr KEY DELTA
//! proteus-cache-cli ADDR decr KEY DELTA
//! proteus-cache-cli ADDR stats
//! proteus-cache-cli ADDR digest        # snapshot + summarize the digest
//! proteus-cache-cli ADDR version
//! proteus-cache-cli ADDR flush
//! ```

use std::process::ExitCode;

use proteus_net::CacheClient;

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: proteus-cache-cli ADDR <get|set|add|replace|delete|touch|incr|decr|stats|digest|version|flush> [KEY] [VALUE|DELTA]";
    let addr_text = args.first().ok_or(usage)?;
    let addr = addr_text
        .parse()
        .map_err(|_| format!("invalid address {addr_text}"))?;
    let verb = args.get(1).ok_or(usage)?.as_str();
    let client = CacheClient::connect(addr).map_err(|e| e.to_string())?;
    let key = || -> Result<&[u8], String> {
        args.get(2)
            .map(|s| s.as_bytes())
            .ok_or_else(|| usage.into())
    };
    let value = || -> Result<&[u8], String> {
        args.get(3)
            .map(|s| s.as_bytes())
            .ok_or_else(|| usage.into())
    };
    let delta = || -> Result<u64, String> {
        args.get(3)
            .ok_or(usage)?
            .parse()
            .map_err(|_| "DELTA must be a number".to_string())
    };
    let render = |e: proteus_net::NetError| e.to_string();
    match verb {
        "get" => match client.get(key()?).map_err(render)? {
            Some(v) => Ok(String::from_utf8_lossy(&v).into_owned()),
            None => Ok("(miss)".into()),
        },
        "set" => {
            client.set(key()?, value()?).map_err(render)?;
            Ok("STORED".into())
        }
        "add" => Ok(if client.add(key()?, value()?).map_err(render)? {
            "STORED".into()
        } else {
            "NOT_STORED".into()
        }),
        "replace" => Ok(if client.replace(key()?, value()?).map_err(render)? {
            "STORED".into()
        } else {
            "NOT_STORED".into()
        }),
        "delete" => Ok(if client.delete(key()?).map_err(render)? {
            "DELETED".into()
        } else {
            "NOT_FOUND".into()
        }),
        "touch" => Ok(if client.touch(key()?).map_err(render)? {
            "TOUCHED".into()
        } else {
            "NOT_FOUND".into()
        }),
        "incr" => match client.incr(key()?, delta()?).map_err(render)? {
            Some(v) => Ok(v.to_string()),
            None => Ok("NOT_FOUND".into()),
        },
        "decr" => match client.decr(key()?, delta()?).map_err(render)? {
            Some(v) => Ok(v.to_string()),
            None => Ok("NOT_FOUND".into()),
        },
        "stats" => {
            let stats = client.stats().map_err(render)?;
            Ok(stats
                .into_iter()
                .map(|(k, v)| format!("{k} = {v}"))
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "digest" => match client.snapshot_digest().map_err(render)? {
            Some(filter) => Ok(format!(
                "digest: {} bits, {} set ({:.2}% full), {} hash functions",
                filter.config().counters,
                filter.set_bits(),
                filter.fill_ratio() * 100.0,
                filter.config().hashes
            )),
            None => Ok("(no digest snapshot)".into()),
        },
        "version" => client.version().map_err(render),
        "flush" => {
            client.flush_all().map_err(render)?;
            Ok("OK".into())
        }
        other => Err(format!("unknown command {other}\n{usage}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(output) => {
            // Tolerate a closed stdout (e.g. piping into `head`).
            use std::io::Write;
            let _ = writeln!(std::io::stdout(), "{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
