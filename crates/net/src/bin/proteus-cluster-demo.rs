//! A live, wall-clock demonstration of the Proteus actuator on real
//! sockets.
//!
//! Spins up a local cache cluster, drives it with closed-loop
//! think-time load (the paper's RBE model), and walks a provisioning
//! schedule down and back up, printing per-phase statistics. Hot keys
//! migrate cache-to-cache over TCP at each scale-down; the backing
//! store sees no transition traffic.
//!
//! ```text
//! proteus-cluster-demo [--servers N] [--users U] [--seconds-per-phase S]
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_cache::CacheConfig;
use proteus_net::{CacheServer, ClusterClient, ClusterFetch};
use proteus_ring::ProteusPlacement;
use proteus_store::{ShardedStore, StoreConfig};

struct Options {
    servers: usize,
    users: usize,
    phase_secs: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        servers: 4,
        users: 16,
        phase_secs: 3,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{name} must be a number"))
        };
        match flag.as_str() {
            "--servers" => opts.servers = value("--servers")? as usize,
            "--users" => opts.users = value("--users")? as usize,
            "--seconds-per-phase" => opts.phase_secs = value("--seconds-per-phase")?,
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: proteus-cluster-demo \
                     [--servers N] [--users U] [--seconds-per-phase S]"
                ))
            }
        }
    }
    if opts.servers < 2 || opts.servers > 16 {
        return Err("--servers must be in 2..=16".into());
    }
    Ok(opts)
}

/// Shared load-generation counters.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    migrated: AtomicU64,
    database: AtomicU64,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("demo failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let servers: Vec<CacheServer> = (0..opts.servers)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(32 << 20)))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
    println!("cache cluster up: {} servers on localhost", opts.servers);

    let cluster = Arc::new(Mutex::new(ClusterClient::connect(
        &addrs,
        Box::new(ProteusPlacement::generate(opts.servers)),
    )?));
    let db = Arc::new(Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 2048,
        ..StoreConfig::default()
    })));

    // Closed-loop RBE load: each user thread fetches from its personal
    // page set with a short think time (scaled down from the paper's
    // 0.5 s so a short demo still generates meaningful traffic).
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let mut user_threads = Vec::new();
    for user in 0..opts.users {
        let cluster = Arc::clone(&cluster);
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        user_threads.push(std::thread::spawn(move || {
            let pages: Vec<String> = (0..50)
                .map(|i| format!("page:{}", (user * 37 + i * 101) % 2000))
                .collect();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                i = (i + 1) % pages.len();
                let outcome = {
                    let cluster = cluster.lock();
                    cluster.fetch(pages[i].as_bytes(), &*db)
                };
                match outcome {
                    Ok((_, ClusterFetch::Hit)) | Ok((_, ClusterFetch::ReplicaHit)) => {
                        counters.hits.fetch_add(1, Ordering::Relaxed)
                    }
                    Ok((_, ClusterFetch::Migrated)) => {
                        counters.migrated.fetch_add(1, Ordering::Relaxed)
                    }
                    Ok((_, ClusterFetch::Database))
                    | Ok((_, ClusterFetch::Degraded))
                    | Ok((_, ClusterFetch::FalsePositive)) => {
                        counters.database.fetch_add(1, Ordering::Relaxed)
                    }
                    Err(_) => break,
                };
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }

    // Walk the provisioning schedule: full → half → full.
    let schedule: Vec<usize> = {
        let n = opts.servers;
        vec![n, n - 1, (n / 2).max(1), n - 1, n]
    };
    let mut phase_start = (
        counters.hits.load(Ordering::Relaxed),
        counters.migrated.load(Ordering::Relaxed),
        counters.database.load(Ordering::Relaxed),
    );
    println!(
        "\n{:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "phase", "active", "hits", "migrated", "database", "req/s"
    );
    for (phase, &target) in schedule.iter().enumerate() {
        {
            let mut cluster = cluster.lock();
            let before = cluster.active();
            if target != before {
                cluster.begin_transition(target)?;
            }
        }
        let started = Instant::now();
        std::thread::sleep(Duration::from_secs(opts.phase_secs));
        {
            // End the window at the phase boundary (the TTL analogue).
            cluster.lock().end_transition();
        }
        let now = (
            counters.hits.load(Ordering::Relaxed),
            counters.migrated.load(Ordering::Relaxed),
            counters.database.load(Ordering::Relaxed),
        );
        let total = (now.0 - phase_start.0) + (now.1 - phase_start.1) + (now.2 - phase_start.2);
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>10} {:>8.0}",
            phase,
            target,
            now.0 - phase_start.0,
            now.1 - phase_start.1,
            now.2 - phase_start.2,
            total as f64 / started.elapsed().as_secs_f64(),
        );
        phase_start = now;
    }

    stop.store(true, Ordering::Relaxed);
    for t in user_threads {
        let _ = t.join();
    }
    for s in servers {
        s.stop();
    }
    println!(
        "\ndemo complete: scale-downs served hot keys by cache-to-cache \
         migration; database fetches concentrate in the warm-up phase."
    );
    Ok(())
}
