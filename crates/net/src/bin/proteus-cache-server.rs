//! A standalone Proteus cache server.
//!
//! ```text
//! proteus-cache-server [--bind ADDR] [--capacity-mb N] [--hot-ttl-secs N]
//!                      [--engine threaded|reactor|uring] [--loops N]
//!                      [--storage slab|heap]
//! ```
//!
//! Speaks the memcached-flavoured text protocol on `ADDR`
//! (default `127.0.0.1:11211`), including the paper's
//! `SET_BLOOM_FILTER` / `BLOOM_FILTER` digest keys. Try it with netcat:
//!
//! ```text
//! $ printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc 127.0.0.1 11211
//! ```
//!
//! With `--metrics-addr`, a second listener serves the telemetry
//! registry over HTTP: `GET /metrics` returns Prometheus text
//! exposition, `GET /metrics.json` the same registry as JSON. The
//! identical data is also available in-band via `stats proteus`.

use std::process::ExitCode;

use proteus_cache::{CacheConfig, StorageKind};
use proteus_net::{CacheServer, EngineKind, ServerConfig};
use proteus_obs::{MetricsServer, ScrapeLimits};
use proteus_sim::SimDuration;

struct Options {
    bind: String,
    capacity_mb: u64,
    hot_ttl_secs: u64,
    metrics_addr: Option<String>,
    engine: Option<String>,
    loops: usize,
    storage: StorageKind,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        bind: "127.0.0.1:11211".to_string(),
        capacity_mb: 64,
        hot_ttl_secs: 60,
        metrics_addr: None,
        engine: None,
        loops: 0,
        // The binary defaults to the slab allocator: long-running
        // servers want bounded fragmentation at tens of millions of
        // resident items. (The library default stays `Heap` so
        // embedders opt in explicitly.)
        storage: StorageKind::Slab,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--bind" => opts.bind = value("--bind")?,
            "--capacity-mb" => {
                opts.capacity_mb = value("--capacity-mb")?
                    .parse()
                    .map_err(|_| "--capacity-mb must be a number".to_string())?;
            }
            "--hot-ttl-secs" => {
                opts.hot_ttl_secs = value("--hot-ttl-secs")?
                    .parse()
                    .map_err(|_| "--hot-ttl-secs must be a number".to_string())?;
            }
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
            "--engine" => {
                let engine = value("--engine")?;
                if engine != "threaded" && engine != "reactor" && engine != "uring" {
                    return Err("--engine must be `threaded`, `reactor`, or `uring`".to_string());
                }
                opts.engine = Some(engine);
            }
            "--loops" => {
                opts.loops = value("--loops")?
                    .parse()
                    .map_err(|_| "--loops must be a number".to_string())?;
            }
            "--storage" => {
                opts.storage = match value("--storage")?.as_str() {
                    "slab" => StorageKind::Slab,
                    "heap" => StorageKind::Heap,
                    _ => return Err("--storage must be `slab` or `heap`".to_string()),
                };
            }
            "--help" | "-h" => {
                return Err("usage: proteus-cache-server [--bind ADDR] \
                            [--capacity-mb N] [--hot-ttl-secs N] \
                            [--metrics-addr ADDR] \
                            [--engine threaded|reactor|uring] [--loops N] \
                            [--storage slab|heap]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.capacity_mb == 0 {
        return Err("--capacity-mb must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = CacheConfig::with_capacity(opts.capacity_mb << 20)
        .hot_ttl(SimDuration::from_secs(opts.hot_ttl_secs))
        .storage(opts.storage);
    // Default: the platform's preferred data plane (the reactor on
    // Linux, threaded elsewhere); `--engine` forces one explicitly.
    // `uring` resolves through the fallback ladder (uring → reactor →
    // threaded) when the kernel lacks io_uring; the startup line below
    // reports the plane actually running.
    let engine = match opts.engine.as_deref() {
        Some("threaded") => EngineKind::Threaded,
        Some("uring") => EngineKind::Uring { loops: opts.loops },
        Some(_) => EngineKind::Reactor { loops: opts.loops },
        None => match EngineKind::default() {
            EngineKind::Reactor { .. } => EngineKind::Reactor { loops: opts.loops },
            other => other,
        },
    };
    let server = match CacheServer::spawn_with(&*opts.bind, config, ServerConfig { engine }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    let plane = match server.engine_kind() {
        EngineKind::Threaded => "thread-per-connection".to_string(),
        EngineKind::Reactor { loops } => format!("epoll reactor, {loops} event loops"),
        EngineKind::Uring { loops } => format!("io_uring, {loops} event loops"),
    };
    let storage = match opts.storage {
        StorageKind::Slab => "slab storage",
        StorageKind::Heap => "heap storage",
    };
    println!(
        "proteus-cache-server listening on {} ({} MB, hot TTL {} s, {plane}, {storage})",
        server.addr(),
        opts.capacity_mb,
        opts.hot_ttl_secs
    );
    // Kept alive for the life of the process; dropping it would stop
    // the scrape listener.
    let _metrics = match &opts.metrics_addr {
        Some(addr) => match MetricsServer::spawn_traced(
            addr.as_str(),
            server.metric_source(),
            server.tracer(),
            ScrapeLimits::default(),
        ) {
            Ok(m) => {
                println!(
                    "metrics on http://{}/metrics (Prometheus), /metrics.json, /trace.jsonl",
                    m.local_addr()
                );
                Some(m)
            }
            Err(e) => {
                eprintln!("failed to bind metrics listener {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    println!("press Ctrl-C to stop");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
