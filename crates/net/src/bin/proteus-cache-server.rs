//! A standalone Proteus cache server.
//!
//! ```text
//! proteus-cache-server [--bind ADDR] [--capacity-mb N] [--hot-ttl-secs N]
//! ```
//!
//! Speaks the memcached-flavoured text protocol on `ADDR`
//! (default `127.0.0.1:11211`), including the paper's
//! `SET_BLOOM_FILTER` / `BLOOM_FILTER` digest keys. Try it with netcat:
//!
//! ```text
//! $ printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc 127.0.0.1 11211
//! ```

use std::process::ExitCode;

use proteus_cache::CacheConfig;
use proteus_net::CacheServer;
use proteus_sim::SimDuration;

struct Options {
    bind: String,
    capacity_mb: u64,
    hot_ttl_secs: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        bind: "127.0.0.1:11211".to_string(),
        capacity_mb: 64,
        hot_ttl_secs: 60,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--bind" => opts.bind = value("--bind")?,
            "--capacity-mb" => {
                opts.capacity_mb = value("--capacity-mb")?
                    .parse()
                    .map_err(|_| "--capacity-mb must be a number".to_string())?;
            }
            "--hot-ttl-secs" => {
                opts.hot_ttl_secs = value("--hot-ttl-secs")?
                    .parse()
                    .map_err(|_| "--hot-ttl-secs must be a number".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: proteus-cache-server [--bind ADDR] \
                            [--capacity-mb N] [--hot-ttl-secs N]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.capacity_mb == 0 {
        return Err("--capacity-mb must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = CacheConfig::with_capacity(opts.capacity_mb << 20)
        .hot_ttl(SimDuration::from_secs(opts.hot_ttl_secs));
    let server = match CacheServer::spawn(&*opts.bind, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "proteus-cache-server listening on {} ({} MB, hot TTL {} s)",
        server.addr(),
        opts.capacity_mb,
        opts.hot_ttl_secs
    );
    println!("press Ctrl-C to stop");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
