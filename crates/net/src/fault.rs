//! TCP fault-injection proxy for failure testing.
//!
//! [`FaultProxy`] sits between a client and a real [`CacheServer`],
//! forwarding bytes in both directions until told to misbehave. Tests
//! point a client at the proxy's address and then flip the
//! [`FaultMode`] at runtime to simulate the failures the paper's power
//! policy produces in production: a server powered off mid-traffic
//! (connection resets), a wedged server (accepted connections that
//! never answer), a congested link (added latency), or a crash halfway
//! through a response.
//!
//! [`CacheServer`]: crate::CacheServer

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::NetError;

/// How the proxy treats traffic right now. Switch at runtime with
/// [`FaultProxy::set_mode`]; the mode applies to new connections and,
/// for [`Blackhole`](FaultMode::Blackhole) and
/// [`CutResponses`](FaultMode::CutResponses), to in-flight ones too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Forward bytes faithfully in both directions.
    Forward,
    /// Refuse service abruptly: accepted connections are reset
    /// immediately and existing connections are torn down. Models a
    /// server killed by the power policy.
    Reset,
    /// Accept connections but never forward or answer anything.
    /// Models a wedged server or a silently dropped route — the
    /// client's *operation timeout* (not connect timeout) is what
    /// rescues it.
    Blackhole,
    /// Forward, but delay each upstream write by the given amount.
    /// Models a congested or distant link.
    Latency(Duration),
    /// Forward the request upstream, then cut the connection after
    /// relaying at most this many bytes of the response. Models a
    /// crash mid-response; exercises the client's reconnect-and-retry
    /// path with a half-delivered payload in its buffer.
    CutResponses(usize),
}

#[derive(Debug, Default)]
struct ProxyStats {
    accepted: AtomicU64,
    resets: AtomicU64,
    blackholed: AtomicU64,
    cut: AtomicU64,
}

struct Shared {
    upstream: SocketAddr,
    mode: Mutex<FaultMode>,
    // Generation counter: bumped on every set_mode so long-lived
    // relay loops notice Blackhole/Reset flips promptly.
    generation: AtomicUsize,
    shutdown: AtomicBool,
    stats: ProxyStats,
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn mode(&self) -> FaultMode {
        *self.mode.lock()
    }

    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            let mut conns = self.conns.lock();
            conns.retain(|s| s.take_error().is_ok());
            conns.push(clone);
        }
    }

    fn teardown_conns(&self) {
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A controllable TCP forwarder for fault-injection tests: listens on
/// an ephemeral local port, relays to one upstream server, and
/// misbehaves on command (see [`FaultMode`]).
///
/// ```no_run
/// use proteus_cache::CacheConfig;
/// use proteus_net::{CacheClient, CacheServer, FaultMode, FaultProxy};
///
/// let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20))?;
/// let proxy = FaultProxy::spawn(server.addr())?;
/// let client = CacheClient::connect(proxy.addr())?;
/// client.set(b"k", b"v")?;
/// proxy.set_mode(FaultMode::Blackhole); // the "server" goes dark
/// assert!(client.get(b"k").is_err());
/// proxy.stop();
/// server.stop();
/// # Ok::<(), proteus_net::NetError>(())
/// ```
pub struct FaultProxy {
    shared: Arc<Shared>,
    local: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral `127.0.0.1` port relaying to
    /// `upstream`, initially in [`FaultMode::Forward`].
    ///
    /// # Errors
    ///
    /// Returns an error if the listening socket cannot be bound.
    pub fn spawn(upstream: SocketAddr) -> Result<FaultProxy, NetError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream,
            mode: Mutex::new(FaultMode::Forward),
            generation: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            stats: ProxyStats::default(),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("fault-proxy-{local}"))
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(NetError::Io)?;
        Ok(FaultProxy {
            shared,
            local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Switches the failure mode. [`Reset`](FaultMode::Reset) and
    /// [`Blackhole`](FaultMode::Blackhole) also tear down in-flight
    /// connections so the change takes effect immediately.
    pub fn set_mode(&self, mode: FaultMode) {
        *self.shared.mode.lock() = mode;
        self.shared.generation.fetch_add(1, Ordering::SeqCst);
        if matches!(mode, FaultMode::Reset | FaultMode::Blackhole) {
            self.shared.teardown_conns();
        }
    }

    /// Connections accepted since spawn — the measure of how hard
    /// clients hammered this endpoint. With a working circuit breaker
    /// this stays O(probes) while a server is down, not O(requests).
    #[must_use]
    pub fn connections_accepted(&self) -> u64 {
        self.shared.stats.accepted.load(Ordering::Relaxed)
    }

    /// Connections reset by [`FaultMode::Reset`].
    #[must_use]
    pub fn connections_reset(&self) -> u64 {
        self.shared.stats.resets.load(Ordering::Relaxed)
    }

    /// Connections swallowed by [`FaultMode::Blackhole`].
    #[must_use]
    pub fn connections_blackholed(&self) -> u64 {
        self.shared.stats.blackholed.load(Ordering::Relaxed)
    }

    /// Responses cut short by [`FaultMode::CutResponses`].
    #[must_use]
    pub fn responses_cut(&self) -> u64 {
        self.shared.stats.cut.load(Ordering::Relaxed)
    }

    /// Stops the proxy and tears down every relayed connection.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        self.shared.teardown_conns();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_inner();
        }
    }
}

impl std::fmt::Debug for FaultProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultProxy")
            .field("addr", &self.local)
            .field("upstream", &self.shared.upstream)
            .field("mode", &self.shared.mode())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((downstream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        match shared.mode() {
            FaultMode::Reset => {
                shared.stats.resets.fetch_add(1, Ordering::Relaxed);
                // Immediate close: the client's next read sees EOF (or
                // RST if bytes were in flight) — a dead server either way.
                let _ = downstream.shutdown(Shutdown::Both);
                drop(downstream);
            }
            FaultMode::Blackhole => {
                shared.stats.blackholed.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                spawn_detached(move || blackhole(downstream, &shared));
            }
            FaultMode::Forward | FaultMode::Latency(_) | FaultMode::CutResponses(_) => {
                let shared = Arc::clone(shared);
                spawn_detached(move || relay_connection(downstream, &shared));
            }
        }
    }
}

fn spawn_detached(f: impl FnOnce() + Send + 'static) {
    let _ = std::thread::Builder::new()
        .name("fault-proxy-conn".into())
        .spawn(f);
}

/// Holds the connection open without ever reading or answering, until
/// the mode changes or the proxy stops.
fn blackhole(stream: TcpStream, shared: &Shared) {
    shared.register(&stream);
    let born = shared.generation.load(Ordering::SeqCst);
    while !shared.shutdown.load(Ordering::SeqCst)
        && shared.generation.load(Ordering::SeqCst) == born
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Bidirectional relay with per-direction fault hooks. The
/// client→server direction runs on this thread; server→client on a
/// second one. Short read timeouts keep both loops responsive to mode
/// flips and shutdown.
fn relay_connection(downstream: TcpStream, shared: &Arc<Shared>) {
    let Ok(upstream) = TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(2)) else {
        let _ = downstream.shutdown(Shutdown::Both);
        return;
    };
    shared.register(&downstream);
    shared.register(&upstream);
    let born = shared.generation.load(Ordering::SeqCst);

    let up_read = match upstream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let down_write = match downstream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let response_shared = Arc::clone(shared);
    let response_thread = std::thread::Builder::new()
        .name("fault-proxy-resp".into())
        .spawn(move || relay_responses(up_read, down_write, &response_shared, born));

    relay_requests(downstream, upstream, shared, born);
    if let Ok(handle) = response_thread {
        let _ = handle.join();
    }
}

/// client → server: applies [`FaultMode::Latency`] before each write.
fn relay_requests(downstream: TcpStream, mut upstream: TcpStream, shared: &Shared, born: usize) {
    let mut downstream = downstream;
    let _ = downstream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || shared.generation.load(Ordering::SeqCst) != born
                && matches!(shared.mode(), FaultMode::Reset | FaultMode::Blackhole)
        {
            break;
        }
        match downstream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if let FaultMode::Latency(delay) = shared.mode() {
                    std::thread::sleep(delay);
                }
                if upstream.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = downstream.shutdown(Shutdown::Both);
}

/// server → client: applies [`FaultMode::CutResponses`], killing the
/// connection after relaying at most N bytes of a response burst.
fn relay_responses(
    mut upstream: TcpStream,
    mut downstream: TcpStream,
    shared: &Shared,
    born: usize,
) {
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || shared.generation.load(Ordering::SeqCst) != born
                && matches!(shared.mode(), FaultMode::Reset | FaultMode::Blackhole)
        {
            break;
        }
        match upstream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let allowed = match shared.mode() {
                    FaultMode::CutResponses(limit) => limit.min(n),
                    _ => n,
                };
                if downstream.write_all(&buf[..allowed]).is_err() {
                    break;
                }
                if allowed < n {
                    shared.stats.cut.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = downstream.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{CacheClient, ClientConfig};
    use crate::server::CacheServer;
    use proteus_cache::CacheConfig;

    fn rig() -> (CacheServer, FaultProxy, CacheClient) {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let proxy = FaultProxy::spawn(server.addr()).unwrap();
        let client =
            CacheClient::connect_with(proxy.addr(), ClientConfig::fast_failover()).unwrap();
        (server, proxy, client)
    }

    #[test]
    fn forwards_faithfully() {
        let (server, proxy, client) = rig();
        client.set(b"k", b"v").unwrap();
        assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert!(proxy.connections_accepted() >= 1);
        proxy.stop();
        server.stop();
    }

    #[test]
    fn reset_mode_breaks_requests_then_recovery_works() {
        let (server, proxy, client) = rig();
        client.set(b"k", b"v").unwrap();
        proxy.set_mode(FaultMode::Reset);
        assert!(client.get(b"k").unwrap_err().is_transport());
        assert!(proxy.connections_reset() >= 1);
        proxy.set_mode(FaultMode::Forward);
        // Breaker may be open; wait out the cooldown then confirm the
        // value survived on the real server.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match client.get(b"k") {
                Ok(v) => {
                    assert_eq!(v.as_deref(), Some(&b"v"[..]));
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("never recovered: {e}"),
            }
        }
        proxy.stop();
        server.stop();
    }

    #[test]
    fn blackhole_times_out_instead_of_hanging() {
        let (server, proxy, client) = rig();
        client.set(b"k", b"v").unwrap();
        proxy.set_mode(FaultMode::Blackhole);
        let start = std::time::Instant::now();
        assert!(client.get(b"k").unwrap_err().is_transport());
        // fast_failover: 150 ms op timeout, 1 retry — well under 2 s.
        assert!(start.elapsed() < Duration::from_secs(2));
        assert!(proxy.connections_blackholed() >= 1);
        proxy.stop();
        server.stop();
    }

    #[test]
    fn latency_mode_still_answers() {
        let (server, proxy, client) = rig();
        client.set(b"k", b"v").unwrap();
        proxy.set_mode(FaultMode::Latency(Duration::from_millis(10)));
        let start = std::time::Instant::now();
        assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert!(start.elapsed() >= Duration::from_millis(10));
        proxy.stop();
        server.stop();
    }

    #[test]
    fn cut_responses_forces_a_retry_that_succeeds_off_proxy() {
        let (server, proxy, client) = rig();
        client
            .set(b"key-with-a-value", b"0123456789abcdef")
            .unwrap();
        proxy.set_mode(FaultMode::CutResponses(3));
        // The cut connection surfaces as a transport error; the
        // client retries on a fresh connection, which gets cut again —
        // so the op fails, but cleanly, and counting shows the cut.
        assert!(client.get(b"key-with-a-value").unwrap_err().is_transport());
        assert!(proxy.responses_cut() >= 1);
        proxy.set_mode(FaultMode::Forward);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match client.get(b"key-with-a-value") {
                Ok(v) => {
                    assert_eq!(v.as_deref(), Some(&b"0123456789abcdef"[..]));
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("never recovered: {e}"),
            }
        }
        proxy.stop();
        server.stop();
    }
}
