//! Error type for the TCP tier.

use std::error::Error;
use std::fmt;
use std::io;
use std::net::SocketAddr;

/// Errors from cache-protocol clients and servers.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket error.
    Io(io::Error),
    /// The peer sent something the protocol does not allow.
    Protocol(String),
    /// The server reported an error response.
    ServerError(String),
    /// A digest payload failed to decode.
    BadDigest(proteus_bloom::SnapshotError),
    /// The client's circuit breaker for this server is open: recent
    /// consecutive transport failures crossed the threshold, so the
    /// call failed fast without touching the network. The breaker
    /// re-probes the server once per cooldown window.
    CircuitOpen(SocketAddr),
    /// `begin_transition` was called while a previous transition window
    /// is still open (see `ClusterClient::begin_transition`).
    TransitionInProgress,
}

impl NetError {
    /// Whether this error is a transport-level failure (the server is
    /// unreachable, the connection broke, or the breaker is open) as
    /// opposed to a semantic protocol or server error. The cluster
    /// client degrades transport failures to database fetches; semantic
    /// errors always surface.
    #[must_use]
    pub fn is_transport(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::CircuitOpen(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::ServerError(msg) => write!(f, "server error: {msg}"),
            NetError::BadDigest(e) => write!(f, "bad digest payload: {e}"),
            NetError::CircuitOpen(addr) => {
                write!(f, "circuit breaker open for cache server {addr}")
            }
            NetError::TransitionInProgress => {
                write!(f, "a provisioning transition is already in progress")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::BadDigest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<proteus_bloom::SnapshotError> for NetError {
    fn from(e: proteus_bloom::SnapshotError) -> Self {
        NetError::BadDigest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let io = NetError::from(io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(NetError::Protocol("bad line".into())
            .to_string()
            .contains("bad line"));
        assert!(NetError::ServerError("oops".into())
            .to_string()
            .contains("oops"));
    }

    #[test]
    fn sources_chain() {
        let io = NetError::from(io::Error::other("x"));
        assert!(io.source().is_some());
        assert!(NetError::Protocol("p".into()).source().is_none());
    }

    #[test]
    fn transport_classification() {
        let addr: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        assert!(NetError::from(io::Error::other("x")).is_transport());
        assert!(NetError::CircuitOpen(addr).is_transport());
        assert!(!NetError::ServerError("oops".into()).is_transport());
        assert!(!NetError::Protocol("bad".into()).is_transport());
        assert!(!NetError::TransitionInProgress.is_transport());
        assert!(NetError::CircuitOpen(addr).to_string().contains("9999"));
    }
}
