//! Error type for the TCP tier.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors from cache-protocol clients and servers.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket error.
    Io(io::Error),
    /// The peer sent something the protocol does not allow.
    Protocol(String),
    /// The server reported an error response.
    ServerError(String),
    /// A digest payload failed to decode.
    BadDigest(proteus_bloom::SnapshotError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::ServerError(msg) => write!(f, "server error: {msg}"),
            NetError::BadDigest(e) => write!(f, "bad digest payload: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::BadDigest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<proteus_bloom::SnapshotError> for NetError {
    fn from(e: proteus_bloom::SnapshotError) -> Self {
        NetError::BadDigest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let io = NetError::from(io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(NetError::Protocol("bad line".into())
            .to_string()
            .contains("bad line"));
        assert!(NetError::ServerError("oops".into())
            .to_string()
            .contains("oops"));
    }

    #[test]
    fn sources_chain() {
        let io = NetError::from(io::Error::other("x"));
        assert!(io.source().is_some());
        assert!(NetError::Protocol("p".into()).source().is_none());
    }
}
